"""Setuptools shim.

All project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose pip/setuptools cannot
build PEP 660 editable wheels (e.g. offline boxes without the ``wheel``
package, which fall back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
