"""Mine a recording for the racing writes, then replay the race.

The debugging loop the paper motivates: record once, then interrogate
the recording offline.  This example records the racey kernel (threads
hammer a small shared array), asks the race report which memory lines
were written by multiple processors and where the *tightest*
cross-writer pair sits in commit order, and finishes by interval-
replaying just the window around that pair -- the neighbourhood a
debugger would single-step.

Run:  python examples/find_races.py
"""

from repro import DeLoreanSystem, ExecutionMode
from repro.analysis.races import find_contended_lines, replay_window_for
from repro.workloads.stress import racey_program


def main() -> None:
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            chunk_size=256)
    print("Recording the racey kernel (8 threads, one shared array) "
          "with interval checkpoints...")
    recording = system.record(
        racey_program(threads=8, rounds=200, seed=5),
        checkpoint_every=10)

    report = find_contended_lines(recording)
    print()
    print(report.summary(top=8))

    tight = report.tight
    print(f"\n{len(tight)} lines have adjacent-commit cross-writer "
          f"pairs -- outcomes that flip with timing.")

    line = report.lines[0]
    start, length = replay_window_for(line, margin=3)
    end = start + length - 1
    store = recording.interval_checkpoints
    checkpoint = store.at_or_before(start) \
        if store.checkpoints[0].commit_index <= start else None
    print(f"\nTightest pair: line {line.address:#x}, commits "
          f"#{line.closest_pair[0].commit_index} and "
          f"#{line.closest_pair[1].commit_index}.")
    if checkpoint is None:
        print("No checkpoint precedes the window; a full replay "
              "reaches it from the start.")
        result = system.replay(recording)
    else:
        print(f"Replaying commits {checkpoint.commit_index}..{end} "
              f"from the checkpoint at {checkpoint.commit_index}...")
        result = system.replay_interval(
            recording, checkpoint=checkpoint,
            length=end - checkpoint.commit_index + 1)
    assert result.determinism.matches
    print(f"  {result.determinism.summary()}")
    print("  The race re-executes identically on every run -- attach "
          "a watchpoint to the line and step.")


if __name__ == "__main__":
    main()
