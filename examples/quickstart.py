"""Quickstart: record a multiprocessor execution and replay it exactly.

Records a SPLASH-2-style workload on the 8-processor chunk-based
machine under OrderOnly mode, prints what the recording cost (the
paper's headline metric: bits of memory-ordering log per processor per
kilo-instruction), then deterministically replays it -- twice, with
different timing noise -- and verifies both replays are bit-exact.

Run:  python examples/quickstart.py
"""

from repro import DeLoreanSystem, ExecutionMode, ReplayPerturbation
from repro.workloads import splash2_program


def main() -> None:
    program = splash2_program("fft", scale=0.5, seed=42)
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)

    print("Recording the initial execution (OrderOnly mode)...")
    recording = system.record(program)
    stats = recording.stats
    print(f"  committed {stats.total_committed_chunks} chunks / "
          f"{stats.total_committed_instructions} instructions "
          f"in {stats.cycles:,.0f} cycles (IPC {stats.ipc:.2f})")
    print(f"  squashes: {stats.total_squashes} "
          f"({100 * stats.wasted_instruction_fraction:.1f}% of executed "
          f"instructions wasted)")
    print(f"  PI log: {len(recording.pi_log)} entries; CS log entries: "
          f"{sum(len(log) for log in recording.cs_logs.values())}")
    print(f"  memory-ordering log: "
          f"{recording.log_bits_per_proc_per_kiloinst(False):.2f} bits "
          f"per processor per kilo-instruction "
          f"({recording.log_bits_per_proc_per_kiloinst(True):.2f} "
          f"compressed)")

    print("\nReplaying with the paper's timing perturbation "
          "(random commit stalls, cache hit/miss flips)...")
    for seed in (1, 2):
        result = system.replay(recording,
                               perturbation=ReplayPerturbation(seed=seed))
        speed = recording.stats.cycles / result.cycles
        print(f"  replay #{seed}: {result.determinism.summary()} "
              f"(at {speed:.2f}x the recording speed)")
        assert result.determinism.matches

    print("\nEvery load, store, spin iteration and final memory word "
          "was reproduced exactly. Great Scott!")


if __name__ == "__main__":
    main()
