"""Time-travel debugging a race, end to end.

``examples/debug_race.py`` shows *why* deterministic replay matters:
the interleaving-dependent state of a racy counter is pinned down
bit-exactly.  This example shows *how you chase the bug once it is
pinned*: open the recording in ``repro.debugger``, put a watchpoint
on the contended address, run to the read that observed the racing
value, then step BACKWARD in time to the foreign write that produced
it -- the exact workflow a forward-only debugger cannot do.

Four threads atomically increment one shared counter; each also loads
the counter and stashes what it saw.  Under contention a thread's load
observes increments committed by *other* threads in between its own --
the "divergent read".  The session below:

1. records the program and confirms (``analysis.races``) that the
   counter is the most contended line;
2. sets a read-watchpoint on the counter for one victim thread and
   continues until a chunk of that thread reads the counter *after*
   a different processor wrote it -- the divergent read;
3. reverse-steps, commit by commit, until it lands on that foreign
   write -- the racing write -- and prints both sides of the race;
4. jumps back to the divergent read (``goto``) and verifies the
   observed value is bit-identical, every time.

Reverse steps are not magic: each one restores the nearest periodic
checkpoint and re-executes forward, so the cost per step is bounded by
the checkpoint interval, not by how deep into the run you are.

Run:  python examples/debug_session.py
"""

from repro import DeLoreanSystem, ExecutionMode
from repro.analysis.races import find_contended_lines
from repro.debugger import ReplayController
from repro.workloads.program_builder import ProgramBuilder, shared_address

THREADS = 4
INCREMENTS = 12
COUNTER = shared_address(0)
VICTIM = 1          # the thread whose divergent read we chase
CHECKPOINT_EVERY = 16


def racy_program():
    builder = ProgramBuilder(THREADS, name="racy-counter")
    for thread in range(THREADS):
        writer = builder.writer(thread)
        for _ in range(INCREMENTS):
            writer.rmw(COUNTER, 1)    # atomic increment
            writer.load(COUNTER)      # ...but the value READ here
            writer.compute(20)        #    depends on the interleaving
            writer.store(shared_address(64 + thread * 8))
            writer.compute(60)
    return builder.build()


def racing_write_before(controller, stop):
    """Reverse-step from ``stop`` until a commit by another processor
    that wrote the counter; returns (racing StopInfo, commits walked).
    Returns (None, walked) if the victim's own write is reached first.
    """
    walked = 0
    while controller.gcc > 0:
        stop = controller.rstep()
        walked += 1
        view = stop.commit
        if view is None or COUNTER not in view.writes:
            continue
        if view.proc == VICTIM:
            return None, walked       # no foreign write in between
        return stop, walked
    return None, walked


def main() -> None:
    program = racy_program()
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            chunk_size=40)
    recording = system.record(program)
    print(f"recorded {len(recording.fingerprints)} chunk commits; "
          f"final counter = {recording.final_memory[COUNTER]}")

    report = find_contended_lines(recording, include_dma=False)
    hottest = report.lines[0]
    print(f"most contended line: 0x{hottest.address:x} "
          f"({len(hottest.events)} writes by {len(hottest.writers)} "
          f"processors) -- the counter, as expected\n")

    controller = ReplayController(recording,
                                  checkpoint_every=CHECKPOINT_EVERY)
    controller.breakpoints.add("read", proc=VICTIM, address=COUNTER)
    print(f"(repro-dbg) watch read 0x{COUNTER:x}  [p{VICTIM} only]")

    while True:
        stop = controller.cont()
        if stop.reason != "breakpoint":
            raise SystemExit("no divergent read found -- the run was "
                             "race-free at this timing, try more "
                             "threads or increments")
        read_gcc = stop.gcc
        seen = controller.read_word(COUNTER)
        racing, walked = racing_write_before(controller, stop)
        if racing is None:
            # Only the victim's own increment precedes this read:
            # not the race.  Return to the read and keep searching.
            controller.goto(read_gcc)
            continue
        break

    view = racing.commit
    print(f"[gcc {read_gcc}] p{VICTIM} read the counter: "
          f"0x{COUNTER:x} = {seen}")
    print(f"  rstep x{walked} ...")
    print(f"[gcc {racing.gcc}] RACING WRITE: p{view.proc} chunk "
          f"{view.seq} wrote 0x{COUNTER:x} = "
          f"{view.writes[COUNTER]}")

    before = racing.gcc - 1
    controller.goto(before)
    print(f"[gcc {before}] goto: counter before the racing write = "
          f"{controller.read_word(COUNTER)} "
          f"(re-executed {controller.last_reexecuted} commits, "
          f"interval is {CHECKPOINT_EVERY})")

    back = controller.goto(read_gcc)
    again = controller.read_word(COUNTER)
    assert back.gcc == read_gcc and again == seen, (back.gcc, again)
    print(f"[gcc {read_gcc}] goto: back at the divergent read, "
          f"counter = {again} -- bit-identical, every time")
    print("\nForward-only debuggers replay the failure; a recorded "
          "execution lets you walk it backward to the cause.")


if __name__ == "__main__":
    main()
