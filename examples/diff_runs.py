"""Diff two recordings: localize where a failing run left the rails.

When a bug reproduces on one machine and not another, the question is
*where the executions part ways*.  With recordings of both runs, the
answer is mechanical: walk the commit sequences and report the first
divergent commit.

This example records the racey interleaving-signature kernel on two
machines with slightly different timing, diffs the recordings, then
uses interval replay to jump straight to the neighbourhood of the
divergence in the "failing" run.

Run:  python examples/diff_runs.py
"""

from repro import DeLoreanSystem, ExecutionMode
from repro.analysis.compare import (
    diff_recordings,
    interleaving_prefix_length,
)
from repro.workloads.stress import racey_program


def record_on(machine_seed: int, checkpoint_every: int = 0):
    from dataclasses import replace
    from repro import MachineConfig
    system = DeLoreanSystem(
        mode=ExecutionMode.ORDER_ONLY,
        machine_config=replace(MachineConfig(), seed=machine_seed),
        chunk_size=256,
        # A visible rate of stochastic truncations: the two machines
        # diverge the first time their wrong-path noise differs.
        stochastic_overflow_rate=0.03)
    recording = system.record(
        racey_program(threads=4, rounds=120, seed=21),
        checkpoint_every=checkpoint_every)
    return system, recording


def main() -> None:
    print("Recording the same program on two machines with slightly "
          "different timing...")
    _, passing = record_on(machine_seed=1)
    system, failing = record_on(machine_seed=8, checkpoint_every=5)

    diff = diff_recordings(passing, failing)
    print()
    print(diff.summary())
    prefix = interleaving_prefix_length(passing, failing)
    print(f"\ncommon committing-processor prefix: {prefix} of "
          f"{len(passing.fingerprints)} commits")

    if diff.first_divergence is not None:
        store = failing.interval_checkpoints
        checkpoint = store.at_or_before(diff.first_divergence) \
            if len(store) and store.checkpoints[0].commit_index \
            <= diff.first_divergence else None
        if checkpoint is not None:
            print(f"\nJumping to the divergence: interval replay of "
                  f"the failing run from its checkpoint at GCC="
                  f"{checkpoint.commit_index}...")
            result = system.replay_interval(
                failing, checkpoint=checkpoint,
                length=diff.first_divergence
                - checkpoint.commit_index + 4)
            assert result.determinism.matches
            print(f"  replayed {result.determinism.compared_chunks} "
                  f"commits around the divergence, bit-exactly -- set "
                  f"a breakpoint and step through commit "
                  f"#{diff.first_divergence} as often as needed.")
        else:
            print("\n(no checkpoint precedes the divergence; a full "
                  "replay would be used instead)")


if __name__ == "__main__":
    main()
