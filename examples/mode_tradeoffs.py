"""The Table 2 trade-off: speed versus log size across execution modes.

Runs the same workload under all three DeLorean modes (plus OrderOnly
with PI-log stratification) and prints the trade-off the paper's
Table 1/Table 2 describe: Order&Size and OrderOnly record at ~RC speed
with a small log; stratification halves the PI log; PicoLog gives up a
little speed to make the memory-ordering log practically disappear.

Run:  python examples/mode_tradeoffs.py
"""

from repro import DeLoreanSystem, ExecutionMode
from repro.analysis.report import format_table
from repro.workloads import splash2_program


def run_mode(mode: ExecutionMode, stratify: bool = False):
    system = DeLoreanSystem(mode=mode, stratify=stratify)
    recording = system.record(splash2_program("barnes", scale=0.5,
                                              seed=7))
    result = system.replay(recording, use_strata=stratify)
    assert result.determinism.matches
    return recording


def main() -> None:
    rows = []
    baseline_cycles = None
    for label, mode, stratify in (
            ("Order&Size", ExecutionMode.ORDER_AND_SIZE, False),
            ("OrderOnly", ExecutionMode.ORDER_ONLY, False),
            ("OrderOnly+strata", ExecutionMode.ORDER_ONLY, True),
            ("PicoLog", ExecutionMode.PICOLOG, False)):
        recording = run_mode(mode, stratify)
        ordering = recording.memory_ordering
        instructions = recording.total_committed_instructions
        if stratify:
            pi_bits = ordering.stratified_pi_compressed_bits or 0
        else:
            pi_bits = ordering.pi_size_bits(True)
        total = pi_bits + ordering.cs_size_bits(True)
        bits_per = total * 1000.0 / instructions
        cycles = recording.stats.cycles
        if baseline_cycles is None:
            baseline_cycles = cycles
        rows.append([
            label,
            recording.mode_config.standard_chunk_size,
            f"{baseline_cycles / cycles:.2f}x",
            len(recording.pi_log) if not stratify
            else len(recording.strata),
            sum(len(log) for log in recording.cs_logs.values()),
            f"{bits_per:.2f}",
        ])
    print(format_table(
        ["mode", "chunk size", "rel. speed", "PI entries/strata",
         "CS entries", "bits/proc/kinst"],
        rows,
        title="DeLorean execution-mode trade-offs (barnes, 8 procs; "
              "all modes replay deterministically)"))
    print("\nReading the table: OrderOnly drops the per-chunk sizes "
          "Order&Size logs; stratification packs conflict-free chunk "
          "commits into counter vectors; PicoLog predefines the commit "
          "order and needs almost no ordering log at all.")


if __name__ == "__main__":
    main()
