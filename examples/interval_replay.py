"""Interval replay: jump straight to the buggy neighbourhood.

A production recorder runs for hours; nobody replays from boot.  The
paper pairs its logs with ReVive/SafetyNet-style checkpoints
(Section 3.3) so that any interval I(n, m) replays deterministically
from the checkpoint at GCC = n (Appendix B).

This example records a long-ish run with periodic commit-boundary
checkpoints, pretends the "interesting event" is some late commit, and
replays only from the nearest checkpoint -- verifying the replayed
suffix is bit-exact and showing how much replay work the checkpoint
saved.

Run:  python examples/interval_replay.py
"""

from repro import DeLoreanSystem, ExecutionMode, ReplayPerturbation
from repro.workloads import splash2_program


def main() -> None:
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
    program = splash2_program("barnes", scale=1.0, seed=13)

    print("Recording with a checkpoint every 25 commits...")
    recording = system.record(program, checkpoint_every=25)
    total = len(recording.fingerprints)
    store = recording.interval_checkpoints
    positions = [c.commit_index for c in store]
    print(f"  {total} commits recorded; checkpoints at {positions}")

    # Suppose the bug manifests around the second-to-last commit.
    crash_commit = total - 2
    checkpoint = store.at_or_before(crash_commit)
    print(f"\nTarget: commit #{crash_commit}.  Nearest checkpoint: "
          f"GCC={checkpoint.commit_index} "
          f"(skips {checkpoint.commit_index} of {total} commits).")

    full = system.replay(recording,
                         perturbation=ReplayPerturbation(seed=1))
    assert full.determinism.matches
    interval = system.replay_interval(
        recording, checkpoint=checkpoint,
        perturbation=ReplayPerturbation(seed=1))
    assert interval.determinism.matches

    print(f"\n  full replay:     {full.cycles:,.0f} cycles, "
          f"{full.determinism.compared_chunks} commits reproduced")
    print(f"  interval replay: {interval.cycles:,.0f} cycles, "
          f"{interval.determinism.compared_chunks} commits reproduced "
          f"({full.cycles / interval.cycles:.1f}x less replay work)")
    assert interval.final_memory == recording.final_memory

    print("\nBoth replays end in the recording's exact final state; "
          "the interval replay just starts next door to the bug.")


if __name__ == "__main__":
    main()
