"""Full-system recording: interrupts, DMA and I/O on a server workload.

SPECweb2005-style runs are "full-system": besides the memory-ordering
log, the recorder must capture every input -- interrupt delivery points
(as processor-local chunk IDs), DMA burst data (ordered by the commit
arbiter), and the values returned by uncached I/O loads.  During replay
none of those events exist in the outside world anymore: everything is
re-injected from the logs, at exactly the recorded chunk boundaries.

This example records the sweb2005 stand-in workload, itemizes the
input logs, then replays with the I/O device deliberately reseeded --
proving the replayer never consults the device.

Run:  python examples/server_workload.py
"""

from repro import DeLoreanSystem, ExecutionMode, ReplayPerturbation
from repro.workloads import commercial_program


def main() -> None:
    program = commercial_program("sweb2005", scale=0.5, seed=23)
    print(f"Workload: {program.name} with "
          f"{len(program.interrupts)} interrupts, "
          f"{len(program.dma_transfers)} DMA bursts attached")

    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
    recording = system.record(program)
    stats = recording.stats

    print("\nRecorded input logs:")
    for proc, log in sorted(recording.interrupt_logs.items()):
        if log.entries:
            points = ", ".join(
                f"chunk {e.chunk_id} (vector {e.vector})"
                for e in log.entries)
            print(f"  cpu{proc} interrupts at: {points}")
    io_counts = {proc: len(log) for proc, log
                 in recording.io_logs.items() if len(log)}
    print(f"  I/O load values logged per cpu: {io_counts}")
    print(f"  DMA bursts logged: {len(recording.dma_log)} "
          f"({sum(len(e.writes) for e in recording.dma_log.entries)} "
          f"words of data)")
    print(f"  handler chunks committed: {stats.handler_chunks}; "
          f"DMA commits arbitrated: {stats.dma_commits}")

    # Reseed the device: if replay touched it, values would differ and
    # verification would fail.
    object.__setattr__(recording.program, "io_seed",
                       recording.program.io_seed + 9999)
    print("\nReplaying with the I/O device reseeded (replay must use "
          "the logs, not the device)...")
    result = system.replay(recording,
                           perturbation=ReplayPerturbation(seed=3))
    print(f"  {result.determinism.summary()}")
    assert result.determinism.matches

    print("\nInterrupt handlers fired at the same chunk IDs, DMA data "
          "landed at the same commit slots, and every I/O load saw its "
          "recorded value.")


if __name__ == "__main__":
    main()
