"""Trace a run, corrupt its log, and read the divergence forensics.

The workflow when a replay goes wrong: record with the event tracer
on, export the timeline for Perfetto, then — after deliberately
corrupting one chunk-size log entry — let `diagnose_replay` replay
the damaged recording and pinpoint the first divergence (which
processor, which commit, expected vs. actual, and the recorded
interleaving around it).

Run:  python examples/trace_divergence.py
It writes trace_divergence.json next to your working directory; load
it at https://ui.perfetto.dev to browse the timeline.
"""

import dataclasses

from repro import DeLoreanSystem, ExecutionMode
from repro.telemetry import EventTracer, diagnose_replay, \
    write_chrome_trace
from repro.workloads import splash2_program


def main() -> None:
    # OrderAndSize logs every chunk's size, so corrupting any entry
    # has a guaranteed architectural effect on replay.
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_AND_SIZE)
    tracer = EventTracer()
    print("Recording fft with the event tracer on...")
    recording = system.record(
        splash2_program("fft", scale=0.2, seed=7), tracer=tracer)
    print(f"  {len(tracer.events)} events on "
          f"{len(tracer.tracks())} tracks; metrics: "
          f"{tracer.metrics.as_dict()['chunks_committed']:.0f} chunks "
          f"committed")

    write_chrome_trace(tracer.events, "trace_divergence.json",
                       process_name="repro fft (order-and-size)")
    print("  wrote trace_divergence.json "
          "(load it in ui.perfetto.dev)")

    print("\nSanity check: the intact recording replays cleanly...")
    clean = diagnose_replay(recording)
    print(f"  {clean.summary()}")

    print("\nCorrupting one chunk-size log entry "
          "(processor 0, halved)...")
    log = recording.cs_logs[0]
    index, entry = next(
        (i, e) for i, e in enumerate(log.entries) if e.size > 1)
    log.entries[index] = dataclasses.replace(
        entry, size=max(1, entry.size // 2))

    print("Replaying the damaged recording...\n")
    report = diagnose_replay(recording)
    assert report.diverged
    print(report.render())


if __name__ == "__main__":
    main()
