"""A chaos campaign against sjbb2000, end to end.

DeLorean's pitch is that a tiny log deterministically reconstructs an
entire multiprocessor execution -- which makes the log the single
point of failure.  This example stress-tests that failure mode on the
sjbb2000 commercial workload (SPECjbb2000 stand-in, ``sjbb2k``):

1. record sjbb2000 in OrderOnly mode, taking interval checkpoints so
   salvage has resync points, and serialize it into the
   integrity-checked DLRN v2 container;
2. expand a *seeded* fault plan -- same seed, same faults, forever --
   into bit flips, truncations, dropped sections, and perturbed log
   entries;
3. for each fault: inject, then strict-load / replay / salvage, and
   classify the outcome;
4. demonstrate one salvage in detail: corrupt the PI log's checksum,
   tolerant-load past the damage, and print the coverage report --
   which commits were reproduced bit-exactly and which were lost.

The invariant the campaign asserts is the whole point: every fault is
*detected* (a typed error) or *recovered* (a salvage report with
honest coverage) -- never a silently wrong replay.

Run:  python examples/chaos_campaign.py
"""

from repro.core.modes import ExecutionMode
from repro.core.serialization import container_frames, save_recording
from repro.faults import (
    FaultPlan,
    run_campaign,
    salvage_from_blob,
)
from repro.workloads import commercial_program
from repro import DeLoreanSystem

APP = "sjbb2k"
SCALE = 0.2
PLAN_SEED = 2008  # the year DeLorean appeared at ISCA

print(f"=== chaos campaign: {APP} (OrderOnly, seed {PLAN_SEED}) ===\n")

# -- 1+2+3: the full record → inject → classify campaign --------------
report = run_campaign(APP, ExecutionMode.ORDER_ONLY, scale=SCALE,
                      plan_seed=PLAN_SEED, fault_count=10,
                      checkpoint_every=16)
for result in report.results:
    salvage = result.get("salvage")
    coverage = (f"  [coverage {salvage['coverage']:.0%}]"
                if salvage else "")
    print(f"  {result['fault_label']:<28} -> "
          f"{result['outcome']}{coverage}")
print(f"\n{report.summary()}\n")
assert report.invariant_ok, "a fault produced a silent wrong result!"

# The same seed always draws the same plan -- a failing fault can be
# replayed in isolation, which is what makes chaos testing debuggable.
again = FaultPlan.generate(PLAN_SEED, 10)
assert again == FaultPlan.generate(PLAN_SEED, 10)

# -- 4: one salvage, in detail ----------------------------------------
print("=== salvage detail: corrupted DMA-log section ===\n")
system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
recording = system.record(
    commercial_program(APP, scale=SCALE), checkpoint_every=16)
blob = save_recording(recording)
frames, _ = container_frames(blob)
dma = next(frame for frame in frames if frame.name == "dma")
damaged = bytearray(blob)
damaged[dma.end - 1] ^= 0xFF  # one flipped byte in the DMA payload

loaded, salvage = salvage_from_blob(bytes(damaged))
print(f"recording: {len(recording.fingerprints)} commits, "
      f"{len(blob):,} bytes on the wire")
print(f"damage: {[d.describe() for d in salvage.damage]}")
print(f"verdict: {salvage.summary()}")
for proc, gcc in sorted(salvage.first_bad_gcc.items()):
    status = "fully reproduced" if gcc is None else \
        f"first unverified commit at GCC {gcc}"
    print(f"  proc {proc}: {status}")
