"""Concurrency-bug debugging: the paper's motivating use case.

Four threads hammer a shared counter.  The *count* is kept by atomic
increments, but each thread also derives a value from what it happened
to read -- so the derived state is a fingerprint of the exact memory
interleaving.  Like a real concurrency bug, the fingerprint changes
whenever the machine's timing changes (here: slightly different chunk
sizes stand in for different production-machine timing).

A debugger chasing an interleaving-dependent failure sees a different
execution on every run.  With DeLorean the offending run is recorded
once; every replay then reproduces the exact interleaving -- the same
commit order, the same reads, the same derived state -- regardless of
how the replay machine's timing is perturbed (Section 4.2: "the same
instruction ... must see exactly the same full-system architectural
state").

Run:  python examples/debug_race.py
"""

from repro import DeLoreanSystem, ExecutionMode, ReplayPerturbation
from repro.workloads.program_builder import ProgramBuilder, shared_address

THREADS = 4
INCREMENTS = 30
COUNTER = shared_address(0)


def witness(thread: int) -> int:
    """Per-thread slot for the interleaving-dependent derived value."""
    return shared_address(64 + thread * 8)


def contended_program():
    builder = ProgramBuilder(THREADS, name="contended-counter")
    for thread in range(THREADS):
        writer = builder.writer(thread)
        for _ in range(INCREMENTS):
            writer.rmw(COUNTER, 1)       # atomic: the count stays exact
            writer.load(COUNTER)         # ...but WHAT this thread reads
            writer.compute(25)           #    depends on the interleaving
            writer.store(witness(thread))  # derived state: a fingerprint
            writer.compute(150)          # pacing between accesses
    return builder.build()


def fingerprint(memory: dict) -> str:
    combined = 0
    for thread in range(THREADS):
        combined ^= memory.get(witness(thread), 0)
    return f"{combined & 0xFFFFFFFF:08x}"


def main() -> None:
    expected = THREADS * INCREMENTS
    print(f"{THREADS} threads x {INCREMENTS} atomic increments; the "
          f"counter always ends at {expected}, but the threads' "
          f"derived state depends on the interleaving.\n")

    print("Production runs on machines with slightly different timing:")
    chosen = None
    seen = set()
    for variant in range(4):
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                chunk_size=160 + 17 * variant)
        recording = system.record(contended_program())
        mark = fingerprint(recording.final_memory)
        seen.add(mark)
        print(f"  machine variant {variant}: counter = "
              f"{recording.final_memory.get(COUNTER)}, interleaving "
              f"fingerprint = {mark}")
        if chosen is None:
            chosen = (system, recording, mark)
    print(f"  -> {len(seen)} distinct interleavings in 4 runs: the "
          f"bug-relevant state is timing-dependent.")

    system, recording, mark = chosen
    print(f"\nReplaying run #0 (fingerprint {mark}) five times under "
          f"different replay-timing noise:")
    for seed in range(5):
        result = system.replay(
            recording, perturbation=ReplayPerturbation(seed=seed))
        replayed = fingerprint(result.final_memory)
        assert result.determinism.matches
        assert replayed == mark, (replayed, mark)
        print(f"  replay (noise seed {seed}): fingerprint {replayed}, "
              f"{result.determinism.compared_chunks} chunk commits "
              f"reproduced exactly")

    print("\nThe production interleaving is pinned down: every replay "
          "reproduces it bit-exactly, so the failure can be chased "
          "with a debugger, over and over.")


if __name__ == "__main__":
    main()
