"""Figure 12: PicoLog performance sensitivity (SPLASH-2 only).

Paper sweep: performance relative to RC on the same processor count,
for 4/8/16 processors x standard chunk sizes of 500/1000/2000/3000 x
1..16 simultaneous chunks per processor.  Headline shapes:

* more processors lower PicoLog's relative performance (longer token
  roundtrips, more squashes);
* extra simultaneous chunks help, with fast diminishing returns;
* large chunks are harmless at 4-8 processors but hurt at 16.

To keep the sweep tractable the bench uses a representative SPLASH-2
subset and a reduced workload scale; the shape, not the absolute
numbers, is what the assertions pin down.
"""

from repro.core.modes import ExecutionMode

from harness import (
    emit,
    rc_cycles,
    record_app,
    run_once,
)
from repro.analysis.report import geometric_mean

APPS = ("fft", "lu", "radix", "water-sp")
PROCS = (4, 8, 16)
CHUNK_SIZES = (500, 1000, 2000, 3000)
SIMULTANEOUS = (1, 2, 3, 4, 8)
_SCALE = 0.35   # the full grid is 60 cells x 4 apps


def _relative(procs: int, chunk_size: int, simultaneous: int) -> float:
    speedups = []
    for app in APPS:
        rc = rc_cycles(app, num_threads=procs, scale_key=_SCALE)
        _, recording = record_app(
            app, ExecutionMode.PICOLOG, chunk_size=chunk_size,
            num_threads=procs, simultaneous=simultaneous,
            scale_key=_SCALE)
        speedups.append(rc / recording.stats.cycles)
    return geometric_mean(speedups)


def compute_figure():
    return {
        (procs, chunk_size, simultaneous):
            _relative(procs, chunk_size, simultaneous)
        for procs in PROCS
        for chunk_size in CHUNK_SIZES
        for simultaneous in SIMULTANEOUS
    }


def test_fig12_picolog_sensitivity(benchmark):
    results = run_once(benchmark, compute_figure)
    for procs in PROCS:
        rows = []
        for chunk_size in CHUNK_SIZES:
            rows.append([chunk_size] + [
                results[(procs, chunk_size, s)] for s in SIMULTANEOUS])
        emit(f"Figure 12({chr(96 + PROCS.index(procs) + 1)}) -- "
             f"PicoLog speed vs RC, {procs} processors "
             f"(SPLASH-2 subset GM)",
             ["chunk\\simul"] + [str(s) for s in SIMULTANEOUS], rows)

    def mean_over(procs):
        return geometric_mean([
            results[(procs, c, 2)] for c in CHUNK_SIZES])

    # More processors => lower relative performance.
    assert mean_over(4) > mean_over(16)
    # A second simultaneous chunk helps; returns then diminish.
    for procs in PROCS:
        one = geometric_mean([results[(procs, c, 1)]
                              for c in CHUNK_SIZES])
        two = geometric_mean([results[(procs, c, 2)]
                              for c in CHUNK_SIZES])
        eight = geometric_mean([results[(procs, c, 8)]
                                for c in CHUNK_SIZES])
        assert two > one, procs
        assert eight - two < two - one + 0.02, procs
    # Scaling the machine hurts at every chunk size (paper: 87% at 4
    # processors falls to 77% at 16 for 1000-instruction chunks).
    # NOTE (EXPERIMENTS.md): the paper additionally reports that
    # *large* chunks hurt specifically at 16 processors via extra
    # conflicts; in this model the dominant 16-processor cost is
    # commit-token throughput, which penalizes *small* chunks instead,
    # so that secondary trend is not reproduced.
    for chunk in CHUNK_SIZES:
        assert results[(16, chunk, 2)] < results[(4, chunk, 2)], chunk
