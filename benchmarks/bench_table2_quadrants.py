"""Table 2: the full design-space quadrant, including the one the
paper dismissed.

Table 2 spans two axes -- deterministic chunking (yes/no) and
predefined commit interleaving (yes/no).  The paper develops three
quadrants and writes off the fourth ("a mode where the chunking is not
deterministic but the chunk commit interleaving is predefined ...
is unattractive.  We save log space in the arbiter only to use more in
the processors").  With all four modes implemented, that claim is
measurable: SIZE_ONLY should be *dominated* -- it pays PicoLog's
round-robin performance penalty while logging more bits than OrderOnly.
"""

from repro.core.modes import ExecutionMode

from harness import (
    SPLASH2,
    emit,
    rc_cycles,
    record_app,
    run_once,
    splash2_gm,
)

_SCALE = 0.5
_APPS = SPLASH2

MODES = [
    ("Order&Size", ExecutionMode.ORDER_AND_SIZE,
     "recorded order + sizes"),
    ("OrderOnly", ExecutionMode.ORDER_ONLY, "recorded order"),
    ("PicoLog", ExecutionMode.PICOLOG, "predefined order"),
    ("SizeOnly", ExecutionMode.SIZE_ONLY,
     "predefined order + sizes (the 'unattractive' quadrant)"),
]


def compute_quadrants():
    results = {}
    for label, mode, _ in MODES:
        speeds = {}
        logs = {}
        for app in _APPS:
            _, recording = record_app(app, mode, scale_key=_SCALE)
            speeds[app] = (rc_cycles(app, scale_key=_SCALE)
                           / recording.stats.cycles)
            logs[app] = recording.log_bits_per_proc_per_kiloinst(
                compressed=False)
        results[label] = {
            "speed": splash2_gm(speeds),
            "log": splash2_gm({a: max(1e-6, v)
                               for a, v in logs.items()}),
        }
    return results


def test_table2_design_space(benchmark):
    results = run_once(benchmark, compute_quadrants)
    rows = [[label, note, results[label]["speed"],
             results[label]["log"]]
            for label, _, note in MODES]
    emit("Table 2 -- all four design-space quadrants (SPLASH-2 G.M., "
         "speed vs RC; raw bits/proc/kilo-instruction)",
         ["mode", "quadrant", "speed", "log bits"], rows)

    size_only = results["SizeOnly"]
    order_only = results["OrderOnly"]
    picolog = results["PicoLog"]
    print(f"\nThe paper's claim, measured: SizeOnly logs "
          f"{size_only['log'] / picolog['log']:.0f}x PicoLog's bits "
          f"while running {size_only['speed']:.2f}x RC vs OrderOnly's "
          f"{order_only['speed']:.2f}x -- dominated on both axes.")

    # SizeOnly is dominated: slower than OrderOnly AND a (much) bigger
    # log than PicoLog -- i.e. it improves on neither neighbour.
    assert size_only["speed"] < order_only["speed"]
    assert size_only["log"] > 5 * picolog["log"]
    # It doesn't even beat OrderOnly's log despite giving up the PI
    # log: the per-chunk sizes cost more than the commit order did.
    assert size_only["log"] > 0.5 * order_only["log"]
