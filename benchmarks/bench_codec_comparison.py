"""Log-compression codecs at simulation scale (Section 5 follow-up).

The paper's log buffers compress with LZ77 hardware, effective at the
authors' scale (hours of execution, billions of chunks).  Our
simulated runs are ~10^2-10^3 commits, and EXPERIMENTS.md documents
that LZ77 rarely finds the exact long repeats it needs there -- the
figure-6/7/8 "compressed" series mostly sit at the raw-size bypass
cap.

This bench asks whether that is a property of the *log* or of the
*codec*, and the answer is a structure claim about chunked execution:

* **Move-to-front fails too.**  The PI stream has no recency locality
  to exploit -- fair commit arbitration rotates grants over the ready
  processors, so repeats are *rare* and MTF ranks pile up at the deep
  (expensive) end.
* **The inverse prediction works.**  The same fairness makes the
  least-recently-granted processor the most likely next committer, so
  LRU-rank coding (:class:`repro.compression.entropy.LRURankCodec`)
  compresses every SPLASH-2 PI stream (0.6-1.0x raw) at a scale where
  LZ77 and MTF both sit at the bypass cap.
* **Commercial streams resist.**  Interrupt and DMA service breaks
  the rotation, LRU ranks scatter, and the bypass cap (never worse
  than raw) is what ships -- the cap is load-bearing, not decorative.
"""

from repro.core.modes import ExecutionMode

from harness import ALL_APPS, COMMERCIAL, SPLASH2, emit, record_app, run_once
from repro.analysis.report import geometric_mean


# The structure claim needs streams long enough to amortize the LRU
# warmup escapes, so the scale is pinned (like the other calibrated
# benches) instead of following REPRO_BENCH_SCALE.
_SCALE = 1.0


def _one_app(app: str):
    _, recording = record_app(app, ExecutionMode.ORDER_ONLY,
                              scale_key=_SCALE)
    pi_log = recording.pi_log
    return {
        "raw": pi_log.size_bits,
        "lz77": pi_log.compressed_size_bits(),
        "mtf": pi_log.mtf_compressed_size_bits(),
        "lru": pi_log.lru_compressed_size_bits(),
    }


def compute_comparison():
    return {app: _one_app(app) for app in ALL_APPS}


def test_codec_comparison(benchmark):
    results = run_once(benchmark, compute_comparison)
    rows = []
    for app in ALL_APPS:
        entry = results[app]
        rows.append([
            app, entry["raw"], entry["lz77"], entry["mtf"],
            entry["lru"],
            f"{entry['lru'] / entry['raw']:.2f}",
        ])
    emit("PI-log compression at simulation scale: LZ77 vs MTF vs "
         "LRU-rank (OrderOnly, bits; all codecs capped at raw)",
         ["app", "raw", "LZ77", "MTF", "LRU", "LRU ratio"], rows)

    # The bypass cap holds for every codec on every app.
    for app in ALL_APPS:
        entry = results[app]
        for codec in ("lz77", "mtf", "lru"):
            assert entry[codec] <= entry["raw"], (app, codec)
    # At this scale LZ77 and MTF find nothing: they sit at the cap.
    for app in ALL_APPS:
        assert results[app]["lz77"] >= 0.95 * results[app]["raw"], app
        assert results[app]["mtf"] >= 0.95 * results[app]["raw"], app
    # LRU-rank compresses the fair-rotation (SPLASH-2) streams...
    splash_ratios = [results[app]["lru"] / results[app]["raw"]
                     for app in SPLASH2]
    assert sum(1 for r in splash_ratios if r < 1.0) >= \
        len(SPLASH2) - 2
    assert geometric_mean(splash_ratios) < 0.88
    # ...while the interrupt/DMA-perturbed commercial streams fall
    # back to the bypass.
    for app in COMMERCIAL:
        assert results[app]["lru"] == results[app]["raw"], app
