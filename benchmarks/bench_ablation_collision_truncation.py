"""Ablation: the repeated-collision chunk-reduction threshold.

Section 4.2.3 truncates a chunk that keeps colliding: after
``squash_retry_limit`` squashes of the same chunk the machine halves
its target size until it can commit.  Every collision-reduced chunk is
a non-deterministic truncation OrderOnly must record in the CS log, so
the threshold directly prices the mechanism in log bits.

The sweep runs the racey stress kernel -- every thread pair keeps
colliding, the worst case the mechanism exists for -- and the result
is a finding, not a tuning curve: reduction never pays for itself in
throughput here.  Shrinking chunks multiplies the chunk count (and so
the per-commit arbitration overhead) without lowering the wasted-
instruction *fraction*, because on an all-collide kernel each commit
window wastes the other processors' in-flight work whatever the chunk
size.  With reduction disabled the same program records substantially
faster and logs nothing.  The mechanism is load-bearing for *forward
progress* (a chunk that can never win at full size must eventually
shrink -- fairness the arrival-order arbiter alone provides only
probabilistically), not for performance; the default threshold of 8
keeps it out of the way until it is needed.  Determinism must hold at
every setting -- the CS entries are exactly what makes the reduction
replayable.
"""

from dataclasses import replace

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.machine.timing import MachineConfig
from repro.workloads.stress import racey_program

from harness import SCALE, emit, run_once

LIMITS = (1, 2, 4, 8, 1000)  # 8 = default; 1000 = reduction off
_ROUNDS = max(60, int(900 * SCALE))


def _run(limit: int):
    config = replace(MachineConfig(), squash_retry_limit=limit)
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            machine_config=config, chunk_size=1000)
    program = racey_program(threads=8, rounds=_ROUNDS, seed=11)
    recording = system.record(program)
    result = system.replay(recording)
    assert result.determinism.matches, \
        f"collision reduction at limit {limit} must stay replayable"
    stats = recording.stats
    cs_entries = sum(len(log) for log in recording.cs_logs.values())
    return {
        "cycles": stats.cycles,
        "wasted": stats.wasted_instruction_fraction,
        "squashes": stats.total_squashes,
        "reductions": stats.collision_truncations,
        "overflows": stats.overflow_truncations,
        "cs_entries": cs_entries,
    }


def compute_ablation():
    return {limit: _run(limit) for limit in LIMITS}


def test_ablation_collision_truncation(benchmark):
    results = run_once(benchmark, compute_ablation)
    rows = [[limit,
             f"{results[limit]['cycles']:,.0f}",
             f"{100 * results[limit]['wasted']:.1f}%",
             results[limit]["squashes"],
             results[limit]["reductions"],
             results[limit]["cs_entries"]]
            for limit in LIMITS]
    emit("Ablation -- collision-reduction threshold on the racey "
         "kernel (OrderOnly; default limit 8; 1000 = off)",
         ["squash limit", "record cycles", "wasted instr",
          "squashes", "reductions", "CS entries"], rows)

    default, off = results[8], results[1000]
    active = [results[limit] for limit in LIMITS[:-1]]
    # The mechanism fires on this kernel whenever it is enabled, and
    # every reduced chunk is priced into the CS log (the only other CS
    # source here would be stochastic overflow, which is off during
    # replay-comparable recording).
    assert default["reductions"] > 0
    for limit in LIMITS:
        entry = results[limit]
        assert entry["cs_entries"] == \
            entry["reductions"] + entry["overflows"], limit
    # Disabled: the collision contribution to the CS log vanishes
    # entirely (the residue is speculative-cache overflow).
    assert off["reductions"] == 0
    assert off["cs_entries"] == off["overflows"]
    assert off["cs_entries"] < 0.01 * default["cs_entries"] + 8
    # The finding: on an all-collide kernel, reduction multiplies the
    # chunk count without improving the wasted fraction, so disabling
    # it is strictly faster.  (The knob earns its keep on asymmetric
    # collisions, as a progress guarantee.)
    assert off["cycles"] < min(e["cycles"] for e in active)
    assert all(e["wasted"] > 0.8 for e in active)
    assert off["squashes"] < min(e["squashes"] for e in active)
    # The threshold value barely matters once the mechanism is active:
    # chunk count (and so CS cost) is set by how often reduced chunks
    # commit, not by how long the machine waits before shrinking.
    low, high = (min(e["cs_entries"] for e in active),
                 max(e["cs_entries"] for e in active))
    assert high <= 1.3 * low
