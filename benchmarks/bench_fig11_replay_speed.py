"""Figure 11: execution vs replay performance, normalized to RC.

Paper series: OrderOnly, Stratified OrderOnly and PicoLog, each during
the initial execution and during replay under the Section 6.2.1
methodology (parallel commit disabled, 50-cycle arbitration, random
10-300-cycle stalls before 30% of commits, 1.5% cache-hit/miss flips).
Headline shape: OrderOnly and Stratified OrderOnly replay at ~82% of
RC; PicoLog replays at ~72%; replay is always slower than recording;
every replay is bit-exact deterministic (asserted).
"""

from repro.core.modes import ExecutionMode

from harness import (
    ALL_APPS,
    PAPER,
    SPLASH2,
    emit,
    prefetch,
    rc_cycles,
    record_app,
    replay_app,
    run_once,
    splash2_gm,
)


def compute_figure():
    prefetch("fig11")   # fans the whole sweep out when REPRO_BENCH_JOBS>1
    results = {}
    for app in ALL_APPS:
        rc = rc_cycles(app)
        _, order_only = record_app(app, ExecutionMode.ORDER_ONLY)
        oo_replay = replay_app(app, ExecutionMode.ORDER_ONLY)
        strat_replay = replay_app(app, ExecutionMode.ORDER_ONLY,
                                  use_strata=True)
        _, picolog = record_app(app, ExecutionMode.PICOLOG)
        pico_replay = replay_app(app, ExecutionMode.PICOLOG)
        results[app] = {
            "OO exec": rc / order_only.stats.cycles,
            "OO replay": rc / oo_replay.cycles,
            "StratOO replay": rc / strat_replay.cycles,
            "Pico exec": rc / picolog.stats.cycles,
            "Pico replay": rc / pico_replay.cycles,
        }
    return results


SERIES = ["OO exec", "OO replay", "StratOO replay", "Pico exec",
          "Pico replay"]


def test_fig11_replay_speed(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = [[app] + [results[app][s] for s in SERIES]
            for app in SPLASH2]
    rows.append(["SP2-G.M."] + [
        splash2_gm({a: results[a][s] for a in SPLASH2})
        for s in SERIES])
    for app in ("sjbb2k", "sweb2005"):
        rows.append([app] + [results[app][s] for s in SERIES])
    emit("Figure 11 -- execution and replay speedup normalized to RC",
         ["app"] + SERIES, rows)
    gm = {s: splash2_gm({a: results[a][s] for a in SPLASH2})
          for s in SERIES}
    from repro.analysis.charts import bar_chart
    print()
    print(bar_chart(SERIES, [gm[s] for s in SERIES],
                    title="Figure 11, SP2-G.M. (bars):", unit="x RC"))
    print(f"Paper: OrderOnly replay "
          f"{PAPER['orderonly_replay_vs_rc']}, PicoLog replay "
          f"{PAPER['picolog_replay_vs_rc']} of RC")

    # Shape assertions.
    assert 0.74 < gm["OO replay"] < 0.95       # paper: 0.82
    assert 0.60 < gm["Pico replay"] < 0.85     # paper: 0.72
    assert gm["Pico replay"] < gm["OO replay"]
    # Stratification does not hurt replay speed noticeably.
    assert abs(gm["StratOO replay"] - gm["OO replay"]) < 0.08
    for app in ALL_APPS:                       # replay < execution
        assert results[app]["OO replay"] < results[app]["OO exec"]
        assert results[app]["Pico replay"] <= results[app][
            "Pico exec"] * 1.02
