"""Ablation: signature precision vs. squash rate.

DESIGN.md §5.1 replaces Table 5's literal 2 Kbit flat Bloom filter with
a sparse filter over a larger hash space, calibrated so alias squashes
are rare (as BulkSC's structured signatures achieve in hardware).  This
ablation measures what the deviation buys: squash rate, wasted work and
record speed as the hash space shrinks from the default 2^21 down to a
literal flat 2^11, on a sharing-heavy workload.

Expected shape: squash rate rises monotonically as the space shrinks;
the literal flat 2 Kbit filter is catastrophic (false positives on most
chunk pairs), which is exactly why the deviation exists.
"""

from dataclasses import replace

from repro.chunks.signature import SignatureConfig
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.machine.timing import MachineConfig

from harness import emit, program_for, run_once

SPACES = (1 << 11, 1 << 13, 1 << 15, 1 << 18, 1 << 21)
_APPS = ("fft", "barnes")
_SCALE = 0.4


def compute_ablation():
    results = {}
    for size_bits in SPACES:
        config = replace(
            MachineConfig(),
            signature=SignatureConfig(size_bits=size_bits,
                                      num_hashes=1))
        per_app = {}
        for app in _APPS:
            system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                    machine_config=config)
            recording = system.record(
                program_for(app, scale=_SCALE))
            stats = recording.stats
            per_app[app] = {
                "squash_rate": stats.squash_rate,
                "wasted": stats.wasted_instruction_fraction,
                "cycles": stats.cycles,
            }
        results[size_bits] = per_app
    return results


def test_ablation_signature_space(benchmark):
    results = run_once(benchmark, compute_ablation)
    rows = []
    for size_bits in SPACES:
        for app in _APPS:
            entry = results[size_bits][app]
            rows.append([f"2^{size_bits.bit_length() - 1}", app,
                         entry["squash_rate"],
                         100 * entry["wasted"],
                         entry["cycles"]])
    emit("Ablation -- signature hash space vs squash behaviour "
         "(OrderOnly)",
         ["hash space", "app", "squash/chunk", "wasted %", "cycles"],
         rows)

    for app in _APPS:
        tiny = results[SPACES[0]][app]
        default = results[SPACES[-1]][app]
        # The literal flat 2 Kbit filter squashes wildly more than the
        # calibrated default, and costs real time.
        assert tiny["squash_rate"] > 4 * max(
            0.01, default["squash_rate"]), app
        assert tiny["cycles"] > default["cycles"], app
        # Shrinking the space never *reduces* squashes (monotone up to
        # noise): compare the two extremes only.
        assert tiny["wasted"] >= default["wasted"], app
