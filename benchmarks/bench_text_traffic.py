"""Section 6.3 text claims: network traffic.

Paper claims: Order&Size/OrderOnly traffic is practically the same as
plain BulkSC (which is ~9% more bytes than RC, mostly signatures);
PicoLog's total traffic is on average ~17% higher than OrderOnly's
because of its higher squash frequency.

The directory meters traffic by category (signatures, control,
invalidations, line data, squash refetches).  The RC-equivalent
baseline for a chunk machine is its own demand-data plus invalidation
traffic -- what a conventional coherence protocol would move without
commit signatures or squash refetches.
"""

from repro.core.modes import ExecutionMode

from harness import (
    ALL_APPS,
    SPLASH2,
    emit,
    record_app,
    run_once,
    splash2_gm,
)


def _traffic(app, mode):
    _, recording = record_app(app, mode)
    return recording.stats.traffic


def compute_traffic():
    results = {}
    for app in ALL_APPS:
        order_only = _traffic(app, ExecutionMode.ORDER_ONLY)
        picolog = _traffic(app, ExecutionMode.PICOLOG)
        rc_equivalent = (order_only["data_bytes"]
                         + order_only["invalidation_bytes"])
        results[app] = {
            "oo_total": order_only["total_bytes"],
            "oo_vs_rc": order_only["total_bytes"] / rc_equivalent,
            "pico_vs_oo": (picolog["total_bytes"]
                           / order_only["total_bytes"]),
            "sig_share": (order_only["signature_bytes"]
                          / order_only["total_bytes"]),
            "pico_squash_bytes": picolog["squash_refetch_bytes"],
            "oo_squash_bytes": order_only["squash_refetch_bytes"],
        }
    return results


def test_text_traffic(benchmark):
    results = run_once(benchmark, compute_traffic)
    rows = [[app,
             results[app]["oo_vs_rc"],
             results[app]["pico_vs_oo"],
             100 * results[app]["sig_share"]]
            for app in ALL_APPS]
    gm_vs_rc = splash2_gm({a: results[a]["oo_vs_rc"] for a in SPLASH2})
    gm_pico = splash2_gm({a: results[a]["pico_vs_oo"] for a in SPLASH2})
    rows.append(["SP2-G.M.", gm_vs_rc, gm_pico,
                 100 * splash2_gm({a: results[a]["sig_share"]
                                   for a in SPLASH2})])
    emit("Section 6.3 -- traffic: OrderOnly vs RC-equivalent bytes and "
         "PicoLog vs OrderOnly",
         ["app", "OO/RC bytes", "Pico/OO bytes", "signature %"], rows)
    print(f"Paper: BulkSC/OrderOnly ~= RC + 9%; PicoLog ~= OrderOnly "
          f"+ 17%. Measured: +{100 * (gm_vs_rc - 1):.0f}% and "
          f"+{100 * (gm_pico - 1):.0f}%")

    # Shape assertions.
    assert 1.02 < gm_vs_rc < 1.6    # signatures add measurable traffic
    assert gm_pico > 1.0            # PicoLog squashes add traffic
