"""Processor-count scaling of OrderOnly (Section 4.1's log claim).

The PI log's only per-entry cost is naming the committer, so its entry
is ceil(log2(P+1)) bits (P processors plus the DMA engine) and the
paper's log-size claim scales *logarithmically* with the machine: the
per-processor log rate grows like log2(P+1), not like P.  (Contrast
FDR/RTR, whose dependence entries name processor *pairs* and whose
count grows with the sharing surface.)

This bench pins that scaling law down on our substrate: OrderOnly at
2/4/8/16 processors, same per-thread work.  Checks:

* PI entry width is Table 5's 4-bit field up to 15 processors and
  ceil(log2(P+1)) beyond;
* measured raw PI bits/proc/kiloinstruction track the predicted
  ``entry_bits * 1000 / avg_chunk_size`` within 15%, so the law, not
  a coincidence, explains the sizes;
* record speed relative to an RC machine of the same size stays in a
  narrow band (chunking's cost does not blow up with P);
* replay verifies bit-exactly at every size -- including 16
  processors, where the widened 5-bit PI entries round-trip through
  the serialized container.
"""

import math

import pytest

from repro.core.modes import ExecutionMode
from repro.core.serialization import load_recording, save_recording

from harness import emit, rc_cycles, record_app, run_once
from repro.analysis.report import geometric_mean

APPS = ("fft", "barnes", "water-sp")
PROCS = (2, 4, 8, 16)
_SCALE = 0.35


def _one_size(procs: int):
    speeds = []
    rates = []
    predicted = []
    entry_bits = None
    for app in APPS:
        system, recording = record_app(
            app, ExecutionMode.ORDER_ONLY, num_threads=procs,
            scale_key=_SCALE)
        entry_bits = recording.machine_config.pi_entry_bits
        rc = rc_cycles(app, num_threads=procs, scale_key=_SCALE)
        speeds.append(rc / recording.stats.cycles)
        ordering = recording.memory_ordering
        total = recording.total_committed_instructions
        pi_bits = ordering.pi_size_bits(False)
        rates.append(pi_bits * 1000.0 / total)
        avg_chunk = total / max(1, len(recording.pi_log))
        predicted.append(entry_bits * 1000.0 / avg_chunk)
        # The wide entries survive a container round trip.
        clone = load_recording(save_recording(recording))
        result = system.replay(clone)
        assert result.determinism.matches, (procs, app)
    return {
        "entry_bits": entry_bits,
        "speed": geometric_mean(speeds),
        "rate": geometric_mean(rates),
        "predicted": geometric_mean(predicted),
    }


def compute_scaling():
    return {procs: _one_size(procs) for procs in PROCS}


def test_scaling_processors(benchmark):
    results = run_once(benchmark, compute_scaling)
    rows = [[procs,
             results[procs]["entry_bits"],
             f"{results[procs]['rate']:.2f}",
             f"{results[procs]['predicted']:.2f}",
             f"{results[procs]['speed']:.2f}"]
            for procs in PROCS]
    emit("OrderOnly scaling with processor count (SPLASH-2 subset GM; "
         "replay verified at each size)",
         ["procs", "PI entry bits", "PI bits/proc/kinst",
          "predicted (law)", "record speed vs RC"], rows)

    for procs in PROCS:
        entry = results[procs]["entry_bits"]
        # Table 5 fixes the field at 4 bits (enough for 15 processors
        # + DMA); it widens to ceil(log2(P+1)) only beyond that.
        assert entry == max(4, math.ceil(math.log2(procs + 1))), procs
        # The scaling law explains the measured rate.
        assert results[procs]["rate"] == \
            pytest.approx(results[procs]["predicted"], rel=0.15), procs
    # Logarithmic growth: 8x the processors adds one bit to the entry
    # and under 45% to the per-processor log rate (paper's contrast
    # with schemes whose entries name processor pairs).
    assert results[16]["entry_bits"] == results[2]["entry_bits"] + 1
    assert results[16]["rate"] < 1.45 * results[2]["rate"]
    # Chunked execution keeps its efficiency across sizes.
    speeds = [results[procs]["speed"] for procs in PROCS]
    assert min(speeds) > 0.75
    assert max(speeds) / min(speeds) < 1.35
