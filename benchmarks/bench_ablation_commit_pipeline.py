"""Ablation: the commit pipeline knobs of Table 5.

Table 5 fixes two pipeline parameters the paper does not sweep for
OrderOnly: up to 4 concurrent commits at the arbiter, and 2
simultaneous chunks per processor.  This ablation sweeps both on
OrderOnly recording to show why those defaults are sensible:

* a second simultaneous chunk hides commit latency (big win);
* concurrent commits matter once requests bunch; beyond the default
  the returns vanish.
"""

from dataclasses import replace

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.machine.timing import MachineConfig

from harness import emit, program_for, run_once
from repro.analysis.report import geometric_mean

_APPS = ("fft", "barnes", "water-sp")
_SCALE = 0.4
SIMULTANEOUS = (1, 2, 4)
CONCURRENT = (1, 2, 4, 8)


def _cycles(simultaneous: int, concurrent: int) -> float:
    cycles = []
    for app in _APPS:
        config = replace(MachineConfig(),
                         simultaneous_chunks=simultaneous,
                         max_concurrent_commits=concurrent)
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                machine_config=config)
        recording = system.record(program_for(app, scale=_SCALE))
        cycles.append(recording.stats.cycles)
    return geometric_mean(cycles)


def compute_ablation():
    return {(simultaneous, concurrent): _cycles(simultaneous,
                                                concurrent)
            for simultaneous in SIMULTANEOUS
            for concurrent in CONCURRENT}


def test_ablation_commit_pipeline(benchmark):
    results = run_once(benchmark, compute_ablation)
    baseline = results[(2, 4)]  # the Table 5 defaults
    rows = []
    for simultaneous in SIMULTANEOUS:
        rows.append([simultaneous] + [
            baseline / results[(simultaneous, concurrent)]
            for concurrent in CONCURRENT])
    emit("Ablation -- OrderOnly record speed vs commit-pipeline "
         "configuration (normalized to Table 5 defaults: 2 "
         "simultaneous chunks, 4 concurrent commits)",
         ["simul\\concurrent"] + [str(c) for c in CONCURRENT], rows)

    # A second simultaneous chunk helps for every commit width.
    for concurrent in CONCURRENT:
        assert results[(2, concurrent)] <= results[(1, concurrent)]
    # Widening commits beyond the default gains almost nothing.
    assert abs(results[(2, 8)] - results[(2, 4)]) <= 0.05 * baseline
    # The defaults sit within a whisker of the best configuration.
    best = min(results.values())
    assert baseline <= best * 1.08
