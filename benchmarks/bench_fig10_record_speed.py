"""Figure 10: performance during the initial execution, normalized to RC.

Paper bars per application (plus SP2-G.M., SPECjbb2000, SPECweb2005):
RC, BulkSC, Order&Size, OrderOnly, Stratified OrderOnly, PicoLog, SC.
Headline shape: Order&Size/OrderOnly within 2-3% of RC; PicoLog at 86%
of RC; SC at 79%; every DeLorean mode outruns SC.

Modeling note: DeLorean's logging adds no modeled latency on top of the
BulkSC substrate (the paper measures it as negligible), so the BulkSC
and Stratified-OrderOnly bars share OrderOnly's machine timing here and
are reported as such.
"""

from repro.baselines import ConsistencyModel
from repro.core.modes import ExecutionMode

from harness import (
    ALL_APPS,
    PAPER,
    SPLASH2,
    consistency_run,
    emit,
    prefetch,
    rc_cycles,
    record_app,
    run_once,
    splash2_gm,
)


def compute_figure():
    prefetch("fig10")   # fans the whole sweep out when REPRO_BENCH_JOBS>1
    results = {}
    for app in ALL_APPS:
        rc = rc_cycles(app)
        sc = consistency_run(app, ConsistencyModel.SC).cycles
        _, order_size = record_app(app, ExecutionMode.ORDER_AND_SIZE)
        _, order_only = record_app(app, ExecutionMode.ORDER_ONLY)
        _, picolog = record_app(app, ExecutionMode.PICOLOG)
        results[app] = {
            "RC": 1.0,
            "BulkSC": rc / order_only.stats.cycles,
            "Order&Size": rc / order_size.stats.cycles,
            "OrderOnly": rc / order_only.stats.cycles,
            "StratOO": rc / order_only.stats.cycles,
            "PicoLog": rc / picolog.stats.cycles,
            "SC": rc / sc,
        }
    return results


BARS = ["RC", "BulkSC", "Order&Size", "OrderOnly", "StratOO",
        "PicoLog", "SC"]


def test_fig10_record_speed(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = []
    for app in SPLASH2:
        rows.append([app] + [results[app][bar] for bar in BARS])
    rows.append(["SP2-G.M."] + [
        splash2_gm({a: results[a][bar] for a in SPLASH2})
        for bar in BARS])
    for app in ("sjbb2k", "sweb2005"):
        rows.append([app] + [results[app][bar] for bar in BARS])
    emit("Figure 10 -- initial-execution speedup normalized to RC",
         ["app"] + BARS, rows)
    gm = {bar: splash2_gm({a: results[a][bar] for a in SPLASH2})
          for bar in BARS}
    from repro.analysis.charts import bar_chart
    print()
    print(bar_chart(BARS, [gm[bar] for bar in BARS],
                    title="Figure 10, SP2-G.M. (bars):", unit="x RC"))
    print(f"Paper: OrderOnly ~{PAPER['orderonly_record_vs_rc']}, "
          f"PicoLog {PAPER['picolog_record_vs_rc']}, "
          f"SC {PAPER['sc_speed_vs_rc']} of RC")

    # Shape assertions (the paper's Section 6.2 claims).
    assert gm["OrderOnly"] > 0.93          # records ~at RC speed
    assert gm["Order&Size"] > 0.90
    assert 0.78 < gm["PicoLog"] < 0.97     # paper: 0.86
    assert 0.70 < gm["SC"] < 0.86          # paper: 0.79
    assert gm["PicoLog"] > gm["SC"]        # PicoLog still beats SC
    # Every mode beats SC per SPLASH-2 app.  (The commercial apps'
    # PicoLog bars can dip below SC in this model -- interrupt slot
    # gating and DMA arbitration serialize against the token; see
    # EXPERIMENTS.md.)
    for app in SPLASH2:
        for bar in ("Order&Size", "OrderOnly", "PicoLog"):
            assert results[app][bar] > results[app]["SC"] * 0.98, (
                app, bar)
