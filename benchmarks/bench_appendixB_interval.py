"""Appendix B: the checkpoint-interval trade (storage vs replay latency).

The determinism theorem is stated for intervals I(n, m): pair the logs
with periodic commit-boundary checkpoints and a day-long recording
replays from the checkpoint nearest the crash, not from boot.  The
deployment knob is the checkpoint *interval*: dense checkpoints cost
storage (each carries the committed memory image and thread states),
sparse ones cost replay latency (more of the interval's prefix
re-executes before the window of interest).

This bench sweeps the interval on the commercial server workload
(interrupts + DMA + I/O, so the checkpoints' log cursors all do real
work), picks a "crash point" at ~90% of the run, and measures both
sides: serialized checkpoint bytes (the recording is bit-identical
apart from checkpoints, so the delta against an uncheckpointed
recording is exact) and the cycles to deterministically reach the
crash window.

Expected shape: latency falls monotonically (in expectation) as
checkpoints densify, storage grows linearly with the checkpoint count,
and every replayed window verifies bit-exactly.  The paper does not
quantify this trade (it cites ReVive/SafetyNet for the checkpoint
substrate); the sweep documents what our substrate delivers.
"""

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.serialization import save_recording

from harness import SCALE, emit, program_for, run_once

_APP = "sjbb2k"
_SCALE = 0.6 * SCALE
_CHUNK = 500  # shorter chunks -> enough commits for a dense grid
_WINDOW = 4  # commits of interest around the crash point


def _record(interval: int):
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            chunk_size=_CHUNK)
    recording = system.record(
        program_for(_APP, scale=_SCALE),
        checkpoint_every=interval)
    return system, recording


def compute_sweep():
    # From boot: the full replay is the only way to reach the crash
    # point without a checkpoint.  Its commit count also sizes the
    # checkpoint grids, so the sweep works at any REPRO_BENCH_SCALE.
    system, recording = _record(0)
    baseline_bytes = len(save_recording(recording))
    target = int(0.9 * len(recording.fingerprints))
    result = system.replay(recording)
    assert result.determinism.matches
    intervals = [0] + sorted(
        {max(2, target // denominator) for denominator in (3, 8, 20)},
        reverse=True)
    results = {"intervals": intervals}
    results[0] = {
        "checkpoints": 0,
        "bytes": 0,
        "delta_bytes": 0,
        "reexecuted": target,
        "cycles": result.cycles,
    }
    for interval in intervals[1:]:
        system, recording = _record(interval)
        size = len(save_recording(recording))
        store = recording.interval_checkpoints
        delta_bytes = store.delta_size_bits() // 8
        checkpoint = store.at_or_before(target)
        result = system.replay_interval(
            recording, checkpoint=checkpoint,
            length=target - checkpoint.commit_index + _WINDOW)
        assert result.determinism.matches, interval
        results[interval] = {
            "checkpoints": len(store),
            "bytes": size - baseline_bytes,
            "delta_bytes": delta_bytes,
            "reexecuted": target - checkpoint.commit_index,
            "cycles": result.cycles,
        }
    results["target"] = target
    return results


def test_appendixB_interval_trade(benchmark):
    results = run_once(benchmark, compute_sweep)
    target = results["target"]
    intervals = results["intervals"]
    rows = [[interval if interval else "none",
             results[interval]["checkpoints"],
             f"{results[interval]['bytes']:,}",
             f"{results[interval]['delta_bytes']:,}",
             results[interval]["reexecuted"],
             f"{results[interval]['cycles']:,.0f}"]
            for interval in intervals]
    emit(f"Appendix B -- checkpoint interval vs replay latency to "
         f"commit #{target} ({_APP}, OrderOnly)",
         ["interval", "checkpoints", "checkpoint bytes",
          "delta-encoded bytes", "commits re-executed",
          "replay cycles"], rows)

    none, sparse, dense = \
        results[0], results[intervals[1]], results[intervals[-1]]
    # Storage grows with density, and scales like the checkpoint count
    # (memory images dominate and the image only grows slowly over the
    # run).
    assert dense["checkpoints"] > sparse["checkpoints"] > 0
    assert dense["bytes"] > sparse["bytes"] > 0
    per_cp = [results[i]["bytes"] / results[i]["checkpoints"]
              for i in intervals[1:]]
    assert max(per_cp) < 2.5 * min(per_cp)
    # Delta encoding collapses the density cost: consecutive images
    # overlap almost entirely, so densifying the grid is nearly free
    # in delta form while full-image storage scales with the count.
    for interval in intervals[1:]:
        assert 0 < results[interval]["delta_bytes"] < \
            results[interval]["bytes"]
    full_blowup = dense["bytes"] / sparse["bytes"]
    delta_blowup = dense["delta_bytes"] / sparse["delta_bytes"]
    assert delta_blowup < full_blowup
    # Latency: every checkpointed replay beats replay-from-boot, and
    # each grid bounds its own worst case -- re-execution never exceeds
    # one interval.  (A sparse grid can *luckily* land right next to
    # the crash point, so density is a bound, not a monotone series.)
    for interval in intervals[1:]:
        assert results[interval]["cycles"] < none["cycles"]
        assert results[interval]["reexecuted"] < interval
    assert dense["reexecuted"] < intervals[-1]
