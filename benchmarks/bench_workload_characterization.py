"""Workload characterization: evidence for the substitution argument.

DESIGN.md claims the synthetic workloads reproduce the *sharing
structure* that drives DeLorean's results.  This bench profiles every
stand-in on the quantities that matter and asserts the per-app
qualitative contrasts the presets encode:

* chunk-conflict (squash) rate -- low everywhere, highest for the
  paper's outliers (radix, raytrace);
* cross-thread dependence density (what FDR/RTR must log) -- orders of
  magnitude above the squash rate (temporally-distant sharing);
* spin share -- the lock/barrier apps spin, the data-parallel ones
  don't;
* system-reference profile -- only the commercial apps have
  interrupts/DMA/IO.
"""

from repro.baselines import ConsistencyModel, FDRRecorder
from repro.core.modes import ExecutionMode

from harness import (
    ALL_APPS,
    COMMERCIAL,
    SPLASH2,
    consistency_run,
    emit,
    record_app,
    run_once,
)

_SCALE = 0.5


def profile(app: str):
    _, recording = record_app(app, ExecutionMode.ORDER_ONLY,
                              scale_key=_SCALE)
    stats = recording.stats
    trace_run = consistency_run(app, ConsistencyModel.SC,
                                collect_trace=True, scale_key=_SCALE)
    fdr = FDRRecorder(8)
    fdr.process(trace_run.trace)
    instructions = max(1, trace_run.total_instructions)
    spin = sum(p.spin_instructions
               for p in stats.per_processor.values())
    return {
        "squash_rate": stats.squash_rate,
        "deps_per_kinst": (fdr.raw_dependences * 1000.0
                           / instructions),
        "spin_pct": 100.0 * spin / max(
            1, stats.total_committed_instructions),
        "handlers": stats.handler_chunks,
        "dma": stats.dma_commits,
        "io_truncations": stats.io_truncations,
    }


def compute_profiles():
    return {app: profile(app) for app in ALL_APPS}


def test_workload_characterization(benchmark):
    profiles = run_once(benchmark, compute_profiles)
    rows = [[app,
             profiles[app]["squash_rate"],
             profiles[app]["deps_per_kinst"],
             profiles[app]["spin_pct"],
             profiles[app]["handlers"],
             profiles[app]["dma"],
             profiles[app]["io_truncations"]]
            for app in ALL_APPS]
    emit("Workload characterization (OrderOnly record + SC trace)",
         ["app", "squash/chunk", "deps/kinst", "spin %",
          "handlers", "DMA", "IO truncs"], rows)

    # The paper's conflict outliers stand out against the quiet apps.
    quiet = min(profiles[a]["squash_rate"]
                for a in ("water-sp", "ocean", "barnes"))
    assert profiles["radix"]["squash_rate"] >= quiet
    assert (max(profiles["radix"]["squash_rate"],
                profiles["raytrace"]["squash_rate"])
            > 2 * max(0.005, quiet))
    # Dependences exist even where conflicts are near-zero: sharing is
    # mostly temporally distant, as in real programs.
    for app in ("fft", "lu", "ocean"):
        assert profiles[app]["squash_rate"] < 0.1, app
        assert profiles[app]["deps_per_kinst"] > 0.02, app
    # Only commercial workloads carry system references (Section 5).
    for app in SPLASH2:
        assert profiles[app]["handlers"] == 0, app
        assert profiles[app]["dma"] == 0, app
    for app in COMMERCIAL:
        assert profiles[app]["handlers"] > 0, app
        assert profiles[app]["dma"] > 0, app
        assert profiles[app]["io_truncations"] > 0, app
    # Spinning never dominates: waiting is bounded by the conflict
    # rates above (at this scale most lock acquisitions are
    # uncontended, so spin shares round to zero).
    for app in ALL_APPS:
        assert profiles[app]["spin_pct"] < 40.0, app
