"""Table 6: characterizing PicoLog (8 processors).

Paper columns per application: average ready processors, average
parallel commits, percentage of token acquisitions finding the
processor ready, wait-for-token cycles, wait-for-complete cycles, token
roundtrip cycles, and stall-cycle percentage.  Headline shape: ~2.6-3.0
chunks commit together out of 4.2-5.2 ready processors; processors are
ready at 77-84% of token acquisitions; roundtrips are hundreds to
thousands of cycles; raytrace stalls the most (squash concentration +
imbalance), radix waits on completion rather than stalling.
"""

from repro.core.modes import ExecutionMode

from harness import (
    ALL_APPS,
    SPLASH2,
    emit,
    record_app,
    run_once,
)
from repro.analysis.report import geometric_mean


def compute_table():
    rows = {}
    for app in ALL_APPS:
        _, recording = record_app(app, ExecutionMode.PICOLOG)
        stats = recording.stats
        summary = stats.token_summary
        rows[app] = {
            "ready_procs": summary["ready_procs_avg"],
            "actual_commit": summary["actual_commit_avg"],
            "proc_ready_pct": summary["proc_ready_pct"],
            "wait_token": summary["wait_token_cycles"],
            "wait_complete": summary["wait_complete_cycles"],
            "roundtrip": summary["token_roundtrip_cycles"],
            "stall_pct": 100.0 * stats.stall_fraction,
        }
    return rows


COLUMNS = ["ready_procs", "actual_commit", "proc_ready_pct",
           "wait_token", "wait_complete", "roundtrip", "stall_pct"]


def test_table6_picolog_characterization(benchmark):
    rows = run_once(benchmark, compute_table)
    table = [[app] + [rows[app][c] for c in COLUMNS]
             for app in ALL_APPS]
    gm = ["SP2-G.M."] + [
        geometric_mean([rows[a][c] for a in SPLASH2]) for c in COLUMNS]
    table.insert(len(SPLASH2), gm)
    emit("Table 6 -- characterizing PicoLog (8 processors)",
         ["app", "ReadyProcs", "ActualCommit", "ProcReady%",
          "WaitToken", "WaitCplete", "TokenRndtrip", "Stall%"],
        table)

    # Shape assertions against the paper's ranges (coarse bands).
    for app in ALL_APPS:
        row = rows[app]
        assert 1.0 <= row["actual_commit"] <= 5.0, app
        assert row["ready_procs"] >= row["actual_commit"] * 0.8, app
        assert 40.0 <= row["proc_ready_pct"] <= 100.0, app
        assert 200 <= row["roundtrip"] <= 6000, app
        assert row["wait_token"] < row["roundtrip"], app
        assert 0.0 <= row["stall_pct"] <= 45.0, app
    # The imbalanced/system-heavy workloads stall the most.  (The
    # paper's stall outlier is raytrace; in our substitution raytrace's
    # imbalance instead idles finished processors, which the token
    # legally skips, so the commercial apps take the outlier role --
    # see EXPERIMENTS.md.)
    splash_avg = geometric_mean(
        [max(0.1, rows[a]["stall_pct"]) for a in SPLASH2])
    assert rows["sweb2005"]["stall_pct"] > splash_avg
    assert rows["sjbb2k"]["stall_pct"] > splash_avg
