"""Section 6.1 text claims: DeLorean's log as a fraction of RTR/Strata.

Paper claims regenerated here, on this framework's own measured
baselines (the paper compares against *published* RTR/Strata numbers
from different applications, so it flags the comparison as rough --
ours is apples-to-apples on identical traces):

* OrderOnly needs ~16% of Basic RTR's compressed log;
* Stratified OrderOnly needs ~7.5%;
* PicoLog needs ~0.6%;
* against Strata: OrderOnly ~64% and PicoLog ~2% of the Strata log
  (per million memory operations).
"""

from repro.baselines import (
    ConsistencyModel,
    RTRRecorder,
    StrataRecorder,
)
from repro.core.modes import ExecutionMode

from harness import (
    SPLASH2,
    consistency_run,
    emit,
    record_app,
    run_once,
    splash2_gm,
)


def compute_ratios():
    per_app = {}
    for app in SPLASH2:
        sc = consistency_run(app, ConsistencyModel.SC,
                             collect_trace=True)
        instructions = sc.total_instructions
        memory_ops = len(sc.trace)
        rtr = RTRRecorder(8)
        rtr.process(sc.trace)
        strata = StrataRecorder(8)
        strata.process(sc.trace)
        strata.finish()
        rtr_bits = rtr.bits_per_proc_per_kiloinst(instructions)
        strata_bits = strata.compressed_size_bits()
        _, order_only = record_app(app, ExecutionMode.ORDER_ONLY)
        _, picolog = record_app(app, ExecutionMode.PICOLOG)
        oo_bits = order_only.log_bits_per_proc_per_kiloinst()
        ordering = order_only.memory_ordering
        strat_total_bits = (
            (ordering.stratified_pi_compressed_bits or 0)
            + ordering.cs_size_bits(True))
        strat_bits = (strat_total_bits * 1000.0
                      / order_only.total_committed_instructions)
        pico_bits = picolog.log_bits_per_proc_per_kiloinst()
        oo_total = ordering.total_size_bits(True)
        per_app[app] = {
            "rtr": rtr_bits,
            "oo_vs_rtr": 100 * oo_bits / rtr_bits if rtr_bits else 0.0,
            "strat_vs_rtr": (100 * strat_bits / rtr_bits
                             if rtr_bits else 0.0),
            "pico_vs_rtr": (100 * pico_bits / rtr_bits
                            if rtr_bits else 0.0),
            # Bytes per million memory ops, the Strata paper's metric.
            "oo_vs_strata": (100 * oo_total / strata_bits
                             if strata_bits else 0.0),
        }
    return per_app


def test_text_log_size_ratios(benchmark):
    per_app = run_once(benchmark, compute_ratios)
    rows = [[app,
             per_app[app]["rtr"],
             per_app[app]["oo_vs_rtr"],
             per_app[app]["strat_vs_rtr"],
             per_app[app]["pico_vs_rtr"]]
            for app in SPLASH2]
    gm = {key: splash2_gm({a: max(1e-6, per_app[a][key])
                           for a in SPLASH2})
          for key in ("rtr", "oo_vs_rtr", "strat_vs_rtr",
                      "pico_vs_rtr", "oo_vs_strata")}
    rows.append(["SP2-G.M.", gm["rtr"], gm["oo_vs_rtr"],
                 gm["strat_vs_rtr"], gm["pico_vs_rtr"]])
    emit("Section 6.1 -- DeLorean log as % of measured Basic RTR "
         "(compressed)",
         ["app", "RTR bits/p/ki", "OrderOnly %", "StratifiedOO %",
          "PicoLog %"], rows)
    print(f"Paper: OrderOnly 16%, Stratified 7.5%, PicoLog 0.6% of "
          f"Basic RTR; measured OrderOnly vs Strata: "
          f"{gm['oo_vs_strata']:.0f}% (paper: 64%)")

    # Shape assertions: the ordering and rough magnitudes hold.
    assert gm["oo_vs_rtr"] < 60.0          # paper: 16%
    assert gm["strat_vs_rtr"] < gm["oo_vs_rtr"]
    assert gm["pico_vs_rtr"] < 0.3 * gm["oo_vs_rtr"]  # paper: 0.6%
