"""Figure 6: size of the PI and CS logs in OrderOnly.

Paper series: bits per processor per kilo-instruction for standard
chunk sizes of 1000/2000/3000 instructions, uncompressed and
compressed, for SPLASH-2 (geometric mean), SPECjbb2000 and SPECweb2005,
against the estimated compressed Basic-RTR reference line.

Paper numbers for the preferred 2000-instruction configuration: 2.1
bits raw / 1.3 bits compressed per processor per kilo-instruction, with
a negligible CS-log contribution (Section 6.1).
"""

from repro.core.modes import ExecutionMode

from harness import (
    COMMERCIAL,
    PAPER,
    PAPER_RTR_BITS_PER_PROC_PER_KILOINST,
    SPLASH2,
    emit,
    prefetch,
    record_app,
    run_once,
    splash2_gm,
)

CHUNK_SIZES = (1000, 2000, 3000)


def _log_sizes(app: str, chunk_size: int):
    _, recording = record_app(app, ExecutionMode.ORDER_ONLY,
                              chunk_size=chunk_size)
    instructions = recording.total_committed_instructions
    ordering = recording.memory_ordering
    scale = 1000.0 / max(1, instructions)
    return {
        "pi_raw": ordering.pi_size_bits(False) * scale,
        "pi_comp": ordering.pi_size_bits(True) * scale,
        "cs_raw": ordering.cs_size_bits(False) * scale,
        "cs_comp": ordering.cs_size_bits(True) * scale,
        "total_raw": ordering.total_size_bits(False) * scale,
        "total_comp": ordering.total_size_bits(True) * scale,
    }


def compute_figure():
    prefetch("fig06")   # fans the whole sweep out when REPRO_BENCH_JOBS>1
    results = {}
    for chunk_size in CHUNK_SIZES:
        by_app = {app: _log_sizes(app, chunk_size)
                  for app in SPLASH2 + COMMERCIAL}
        results[chunk_size] = by_app
    return results


def test_fig06_orderonly_log_size(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = []
    for chunk_size in CHUNK_SIZES:
        by_app = results[chunk_size]
        for label, apps in (("SP2-G.M.", SPLASH2),
                            ("sjbb2k", ["sjbb2k"]),
                            ("sweb2005", ["sweb2005"])):
            agg = {key: splash2_gm({a: by_app[a][key] for a in SPLASH2})
                   if label == "SP2-G.M." else by_app[apps[0]][key]
                   for key in by_app[apps[0]]}
            rows.append([label, chunk_size, agg["pi_raw"],
                         agg["cs_raw"], agg["total_raw"],
                         agg["total_comp"]])
    emit("Figure 6 -- OrderOnly PI+CS log size "
         "(bits/proc/kilo-instruction)",
         ["workload", "chunk", "PI raw", "CS raw", "total raw",
          "total comp"],
         rows)
    from repro.analysis.charts import bar_chart
    print()
    print(bar_chart(
        [f"chunk {c}" for c in CHUNK_SIZES],
        [splash2_gm({a: results[c][a]["total_raw"] for a in SPLASH2})
         for c in CHUNK_SIZES],
        title="Figure 6, SP2-G.M. total raw bits (bars):",
        reference=PAPER_RTR_BITS_PER_PROC_PER_KILOINST,
        reference_label="Basic RTR"))
    print(f"Basic RTR reference line (paper estimate): "
          f"{PAPER_RTR_BITS_PER_PROC_PER_KILOINST} bits/proc/kinst")
    print(f"Paper, preferred 2000-inst config: "
          f"{PAPER['orderonly_log_bits_raw']} raw / "
          f"{PAPER['orderonly_log_bits_compressed']} compressed")

    # Shape assertions.
    for label, apps in (("gm", SPLASH2),):
        sizes = [splash2_gm({a: results[c][a]["total_raw"]
                             for a in SPLASH2}) for c in CHUNK_SIZES]
        # Log size shrinks as chunks grow (fewer commits to log).
        assert sizes[0] > sizes[1] > sizes[2]
    gm_2000 = splash2_gm({a: results[2000][a]["total_raw"]
                          for a in SPLASH2})
    assert 1.5 < gm_2000 < 4.5   # paper: 2.1 raw
    cs_gm = splash2_gm({a: results[2000][a]["cs_raw"]
                        for a in SPLASH2})
    assert cs_gm < 0.3 * gm_2000  # CS log is negligible
    comp = splash2_gm({a: results[2000][a]["total_comp"]
                       for a in SPLASH2})
    assert comp <= gm_2000
    assert comp < PAPER_RTR_BITS_PER_PROC_PER_KILOINST
