"""Figure 8: size of the PI and CS logs in Order&Size.

Order&Size logs every chunk's size (variable-length CS entries: one bit
for maximum-size chunks, 12 bits otherwise) on top of the PI log, and
artificially truncates 25% of chunks to model a variable-chunk
environment.  The paper's preferred 2000-instruction configuration
averages 3.7 compressed bits per processor per kilo-instruction --
about 46% of Basic RTR and clearly larger than OrderOnly's 1.3.
"""

from repro.core.modes import ExecutionMode

from harness import (
    COMMERCIAL,
    PAPER_RTR_BITS_PER_PROC_PER_KILOINST,
    SPLASH2,
    emit,
    record_app,
    run_once,
    splash2_gm,
)

CHUNK_SIZES = (1000, 2000, 3000)


def _log_sizes(app: str, chunk_size: int):
    _, recording = record_app(app, ExecutionMode.ORDER_AND_SIZE,
                              chunk_size=chunk_size)
    ordering = recording.memory_ordering
    scale = 1000.0 / max(1, recording.total_committed_instructions)
    return {
        "pi_raw": ordering.pi_size_bits(False) * scale,
        "cs_raw": ordering.cs_size_bits(False) * scale,
        "total_raw": ordering.total_size_bits(False) * scale,
        "total_comp": ordering.total_size_bits(True) * scale,
    }


def compute_figure():
    return {chunk_size: {app: _log_sizes(app, chunk_size)
                         for app in SPLASH2 + COMMERCIAL}
            for chunk_size in CHUNK_SIZES}


def test_fig08_ordersize_log_size(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = []
    for chunk_size in CHUNK_SIZES:
        by_app = results[chunk_size]
        rows.append([
            "SP2-G.M.", chunk_size,
            splash2_gm({a: by_app[a]["pi_raw"] for a in SPLASH2}),
            splash2_gm({a: by_app[a]["cs_raw"] for a in SPLASH2}),
            splash2_gm({a: by_app[a]["total_raw"] for a in SPLASH2}),
            splash2_gm({a: by_app[a]["total_comp"] for a in SPLASH2}),
        ])
        for app in COMMERCIAL:
            rows.append([app, chunk_size, by_app[app]["pi_raw"],
                         by_app[app]["cs_raw"],
                         by_app[app]["total_raw"],
                         by_app[app]["total_comp"]])
    emit("Figure 8 -- Order&Size PI+CS log size "
         "(bits/proc/kilo-instruction)",
         ["workload", "chunk", "PI raw", "CS raw", "total raw",
          "total comp"], rows)
    print(f"Basic RTR reference line (paper estimate): "
          f"{PAPER_RTR_BITS_PER_PROC_PER_KILOINST} bits/proc/kinst; "
          f"paper's preferred 2000-inst Order&Size: 3.7 compressed")

    # Shape assertions: Order&Size > OrderOnly, CS log substantial.
    from repro.core.modes import ExecutionMode as Mode
    for chunk_size in CHUNK_SIZES:
        for app in ("fft", "barnes"):
            _, oo = record_app(app, Mode.ORDER_ONLY,
                               chunk_size=chunk_size)
            oo_bits = oo.memory_ordering.total_size_bits(False) * (
                1000.0 / oo.total_committed_instructions)
            os_bits = results[chunk_size][app]["total_raw"]
            assert os_bits > oo_bits, (app, chunk_size)
    gm = splash2_gm({a: results[2000][a]["total_comp"]
                     for a in SPLASH2})
    assert 2.0 < gm < 6.5  # paper: 3.7
