"""Table 1: comparing hardware-assisted full-system replay schemes.

The paper's Table 1 is the qualitative summary of the whole evaluation:
initial execution speed, memory-ordering log size, and replay speed for
FDR, Basic RTR, Strata, and DeLorean's OrderOnly and PicoLog modes.
This bench regenerates the table from *measured* values of this
reproduction (speeds as fractions of RC on the SPLASH-2 geometric mean;
log sizes in compressed bits per processor per kilo-instruction on the
same traces).
"""

from repro.baselines import (
    ConsistencyModel,
    FDRRecorder,
    RTRRecorder,
    StrataRecorder,
)
from repro.core.modes import ExecutionMode

from harness import (
    SPLASH2,
    consistency_run,
    emit,
    rc_cycles,
    record_app,
    replay_app,
    run_once,
    splash2_gm,
)


def _conventional_logs(app):
    sc = consistency_run(app, ConsistencyModel.SC, collect_trace=True)
    instructions = sc.total_instructions
    fdr = FDRRecorder(8)
    fdr.process(sc.trace)
    rtr = RTRRecorder(8)
    rtr.process(sc.trace)
    strata = StrataRecorder(8)
    strata.process(sc.trace)
    strata.finish()
    return {
        "FDR": fdr.bits_per_proc_per_kiloinst(instructions),
        "RTR": rtr.bits_per_proc_per_kiloinst(instructions),
        "Strata": strata.bits_per_proc_per_kiloinst(instructions),
    }


def compute_table():
    speed = {"SC": {}, "OrderOnly": {}, "PicoLog": {}}
    logs = {"FDR": {}, "RTR": {}, "Strata": {}, "OrderOnly": {},
            "PicoLog": {}}
    replay = {"OrderOnly": {}, "PicoLog": {}}
    for app in SPLASH2:
        rc = rc_cycles(app)
        speed["SC"][app] = rc / consistency_run(
            app, ConsistencyModel.SC).cycles
        conventional = _conventional_logs(app)
        for scheme, bits in conventional.items():
            logs[scheme][app] = bits
        for mode, name in ((ExecutionMode.ORDER_ONLY, "OrderOnly"),
                           (ExecutionMode.PICOLOG, "PicoLog")):
            _, recording = record_app(app, mode)
            speed[name][app] = rc / recording.stats.cycles
            logs[name][app] = recording.log_bits_per_proc_per_kiloinst()
            replay[name][app] = rc / replay_app(app, mode).cycles
    return speed, logs, replay


def test_table1_scheme_comparison(benchmark):
    speed, logs, replay = run_once(benchmark, compute_table)

    def gm(mapping):
        return splash2_gm(mapping)

    rows = [
        ["FDR", f"SC ({gm(speed['SC']):.2f}x RC)",
         gm(logs["FDR"]), "not reported", "cache hier"],
        ["Basic RTR", f"SC ({gm(speed['SC']):.2f}x RC)",
         gm(logs["RTR"]), "not reported", "cache hier"],
        ["Strata", f"SC ({gm(speed['SC']):.2f}x RC)",
         gm(logs["Strata"]), "not reported", "very little"],
        ["DeLorean OrderOnly", f"{gm(speed['OrderOnly']):.2f}x RC",
         gm(logs["OrderOnly"]), f"{gm(replay['OrderOnly']):.2f}x RC",
         "BulkSC-class mem hier"],
        ["DeLorean PicoLog", f"{gm(speed['PicoLog']):.2f}x RC",
         gm(logs["PicoLog"]), f"{gm(replay['PicoLog']):.2f}x RC",
         "BulkSC-class mem hier"],
    ]
    emit("Table 1 -- scheme comparison (measured, SPLASH-2 G.M.; log "
         "sizes in compressed bits/proc/kilo-instruction)",
         ["scheme", "initial exec speed", "log size", "replay speed",
          "hardware"], rows)

    # The table's qualitative ordering must hold.
    assert gm(speed["OrderOnly"]) > gm(speed["SC"])
    assert gm(speed["PicoLog"]) > gm(speed["SC"])
    assert gm(logs["OrderOnly"]) < gm(logs["FDR"])
    assert gm(logs["OrderOnly"]) < gm(logs["RTR"])
    assert gm(logs["PicoLog"]) < 0.25 * gm(logs["OrderOnly"])
    assert gm(replay["OrderOnly"]) > gm(replay["PicoLog"])
