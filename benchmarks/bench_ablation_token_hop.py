"""Ablation: the PicoLog token-hop latency calibration.

DESIGN.md §5.4 introduces a per-hop commit-token latency so PicoLog's
slowdown and Table 6's token roundtrips match the paper.  This ablation
sweeps the hop latency and shows the two quantities it was calibrated
against moving together: record speed relative to RC, and the token
roundtrip.

Expected shape: hop = 0 makes PicoLog almost free (that is why the knob
exists); the default lands the SPLASH-2 GM near the paper's 0.86 with
roundtrips in Table 6's range; larger hops keep degrading throughput.
"""

from dataclasses import replace

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.machine.timing import MachineConfig

from harness import emit, program_for, rc_cycles, run_once
from repro.analysis.report import geometric_mean

_APPS = ("fft", "barnes", "water-sp", "radix")
_SCALE = 0.4
HOPS = (0, 60, 130, 220)


def compute_ablation():
    results = {}
    for hop in HOPS:
        speedups = []
        roundtrips = []
        for app in _APPS:
            config = replace(MachineConfig(), token_hop_cycles=hop)
            system = DeLoreanSystem(mode=ExecutionMode.PICOLOG,
                                    machine_config=config)
            recording = system.record(program_for(app, scale=_SCALE))
            rc = rc_cycles(app, scale_key=_SCALE)
            speedups.append(rc / recording.stats.cycles)
            roundtrips.append(recording.stats.token_summary[
                "token_roundtrip_cycles"])
        results[hop] = {
            "speed": geometric_mean(speedups),
            "roundtrip": geometric_mean(roundtrips),
        }
    return results


def test_ablation_token_hop(benchmark):
    results = run_once(benchmark, compute_ablation)
    rows = [[hop, results[hop]["speed"], results[hop]["roundtrip"]]
            for hop in HOPS]
    emit("Ablation -- PicoLog vs RC and token roundtrip as the "
         "token-hop latency varies (SPLASH-2 subset GM; default 130)",
         ["hop cycles", "speed vs RC", "roundtrip cycles"], rows)

    speeds = [results[hop]["speed"] for hop in HOPS]
    trips = [results[hop]["roundtrip"] for hop in HOPS]
    # Speed falls monotonically with the hop.  Roundtrips are dominated
    # by waiting for processor readiness (the paper's driver too), so
    # they only grow clearly once wire latency becomes comparable.
    assert all(a >= b - 0.02 for a, b in zip(speeds, speeds[1:]))
    assert trips[-1] > trips[0]
    # Hop-free PicoLog barely differs from RC -- the calibration target
    # (paper: 0.86) is unreachable without a physical token cost.
    assert speeds[0] > 0.93
    # The default (130) lands in the paper's neighbourhood.
    assert 0.80 < results[130]["speed"] < 0.95
    assert 500 < results[130]["roundtrip"] < 3300  # Table 6 range
