"""Shared infrastructure for the benchmark/experiment harness.

Every table and figure of the paper's evaluation (Section 6) has one
bench module that regenerates it.  Simulation runs are described as
:class:`~repro.runner.specs.RunSpec` jobs and executed through the
:class:`~repro.runner.pool.Runner`, which backs them with the
content-addressed result cache under ``.repro-cache/``: figures that
share runs (e.g. the Figure 10 RC baselines and the Figure 11 replays)
pay for them once, and a re-run of the whole suite with a warm cache
is near-instant.

Unlike the old ``lru_cache`` scheme, callers never share mutable
result objects across figures: every ``record_app``/``replay_app``/
``consistency_run`` call materializes a *fresh* object from the
immutable cached artifact, and the artifact encoding is deterministic
(same spec hash => byte-identical bytes), so one figure mutating a
recording can no longer contaminate another.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- workload scale factor (default 1.0, the full
  synthetic workload size).  Lower it for quick smoke runs.
* ``REPRO_BENCH_SEED`` -- workload seed (default 11).
* ``REPRO_BENCH_JOBS`` -- worker processes for prefetched sweeps
  (default 1 = inline; same engine as ``python -m repro bench -j N``).
* ``REPRO_BENCH_NO_CACHE`` -- set to 1 to bypass the on-disk cache.
* ``REPRO_CACHE_DIR`` -- cache root (default ``.repro-cache``).
"""

from __future__ import annotations

import os

from repro.analysis.report import format_table, geometric_mean
from repro.baselines import ConsistencyModel
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.runner import ResultCache, Runner, RunSpec
from repro.runner.figures import FIGURES, specs_for
from repro.runner.jobs import (
    recording_from_artifact,
    result_from_artifact,
)
from repro.workloads import (
    SPLASH2_APPS,
    commercial_program,
    splash2_program,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
NO_CACHE = os.environ.get("REPRO_BENCH_NO_CACHE", "0") not in ("", "0")

SPLASH2 = list(SPLASH2_APPS)
COMMERCIAL = ["sjbb2k", "sweb2005"]
ALL_APPS = SPLASH2 + COMMERCIAL

#: The paper's estimated compressed Basic-RTR log size, shown as the
#: reference line of Figures 6-8 (about 1 byte/proc/kiloinstruction).
PAPER_RTR_BITS_PER_PROC_PER_KILOINST = 8.0

#: Paper-reported headline numbers (EXPERIMENTS.md compares against
#: these).
PAPER = {
    "sc_speed_vs_rc": 0.79,
    "orderonly_record_vs_rc": 0.98,
    "picolog_record_vs_rc": 0.86,
    "orderonly_replay_vs_rc": 0.82,
    "picolog_replay_vs_rc": 0.72,
    "orderonly_log_bits_compressed": 1.3,
    "orderonly_log_bits_raw": 2.1,
    "picolog_log_bits_compressed": 0.05,
    "stratified_pi_reduction": 0.54,
}

_RUNNER: Runner | None = None
#: In-process memo of immutable artifacts (hash -> artifact).  Results
#: are *materialized fresh* from these on every call.
_ARTIFACTS: dict[str, dict] = {}


def runner() -> Runner:
    """The session's shared runner (workers/cache from the env)."""
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = Runner(jobs=max(1, JOBS),
                         cache=False if NO_CACHE else ResultCache())
    return _RUNNER


def _artifact(spec: RunSpec) -> dict:
    artifact = _ARTIFACTS.get(spec.content_hash())
    if artifact is None:
        artifact = runner().run_one(spec)
        _ARTIFACTS[spec.content_hash()] = artifact
    return artifact


def prefetch(*figure_names: str) -> None:
    """Fan a figure's whole spec batch through the runner up front.

    With ``REPRO_BENCH_JOBS > 1`` this parallelizes the figure's
    simulations; the per-run helpers below then serve everything from
    the (in-process or on-disk) cache.  Serial runs lose nothing: the
    same jobs would have run one-by-one anyway.
    """
    figures = [FIGURES[name] for name in figure_names]
    specs = specs_for(figures, apps=tuple(ALL_APPS), scale=SCALE,
                      seed=SEED)
    for outcome in runner().run(specs):
        if outcome.ok:
            _ARTIFACTS[outcome.spec.content_hash()] = outcome.artifact


def program_for(app: str, num_threads: int = 8, scale: float | None = None):
    """Fresh Program instance for an app (programs are mutable-ish, so
    callers get their own)."""
    scale = SCALE if scale is None else scale
    if app in COMMERCIAL:
        return commercial_program(app, scale=scale, seed=SEED,
                                  num_threads=num_threads)
    return splash2_program(app, scale=scale, seed=SEED,
                           num_threads=num_threads)


def record_app(app: str, mode: ExecutionMode, chunk_size: int = 0,
               num_threads: int = 8, simultaneous: int = 0,
               scale_key: float = -1.0):
    """Cached recording of one app under one configuration.

    ``chunk_size=0`` means the mode's preferred size; ``simultaneous=0``
    means the Table 5 default (2).  Returns (system, recording) -- a
    fresh pair materialized from the cached artifact.
    """
    scale = SCALE if scale_key < 0 else scale_key
    spec = RunSpec.record(app, mode, chunk_size=chunk_size,
                          num_threads=num_threads,
                          simultaneous=simultaneous, scale=scale,
                          seed=SEED)
    recording = recording_from_artifact(_artifact(spec))
    system = DeLoreanSystem(
        mode=recording.mode_config.mode,
        machine_config=recording.machine_config,
        mode_config=recording.mode_config,
    )
    return system, recording


def replay_app(app: str, mode: ExecutionMode, use_strata: bool = False,
               scale_key: float = -1.0):
    """Cached perturbed replay of one app (Section 6.2.1 methodology)."""
    scale = SCALE if scale_key < 0 else scale_key
    spec = RunSpec.replay(app, mode, use_strata=use_strata,
                          scale=scale, seed=SEED)
    result = result_from_artifact(_artifact(spec))
    assert result.determinism.matches, (
        f"replay diverged for {app}/{mode}: "
        f"{result.determinism.summary()}")
    return result


def consistency_run(app: str, model: ConsistencyModel,
                    num_threads: int = 8, collect_trace: bool = False,
                    scale_key: float = -1.0):
    """Cached interleaved (conventional-machine) run of one app."""
    scale = SCALE if scale_key < 0 else scale_key
    spec = RunSpec.consistency(app, model, num_threads=num_threads,
                               collect_trace=collect_trace,
                               scale=scale, seed=SEED)
    return result_from_artifact(_artifact(spec))


def rc_cycles(app: str, num_threads: int = 8,
              scale_key: float = -1.0) -> float:
    """RC-baseline cycle count (the Figure 10/11/12 normalizer)."""
    scale = SCALE if scale_key < 0 else scale_key
    spec = RunSpec.consistency(app, ConsistencyModel.RC,
                               num_threads=num_threads, scale=scale,
                               seed=SEED)
    return _artifact(spec)["metrics"]["cycles"]


def splash2_gm(values_by_app: dict[str, float]) -> float:
    """Geometric mean over the SPLASH-2 apps (the paper's SP2-G.M.)."""
    return geometric_mean([values_by_app[app] for app in SPLASH2
                           if app in values_by_app])


def emit(title: str, headers, rows) -> None:
    """Print one paper-style table (captured by pytest -s or the
    benchmark log)."""
    print()
    print(format_table(headers, rows, title=title))


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark, executing it exactly
    once (these are experiment reproductions, not microbenchmarks)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
