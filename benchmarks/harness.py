"""Shared infrastructure for the benchmark/experiment harness.

Every table and figure of the paper's evaluation (Section 6) has one
bench module that regenerates it.  This module provides cached program
construction and simulation runs so figures that share runs (e.g. the
Figure 10 RC baselines and the Figure 11 replays) pay for them once per
pytest session.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- workload scale factor (default 1.0, the full
  synthetic workload size).  Lower it for quick smoke runs.
* ``REPRO_BENCH_SEED`` -- workload seed (default 11).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.analysis.report import format_table, geometric_mean
from repro.baselines import ConsistencyModel, InterleavedExecutor
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.machine.timing import MachineConfig
from repro.workloads import (
    SPLASH2_APPS,
    commercial_program,
    splash2_program,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))

SPLASH2 = list(SPLASH2_APPS)
COMMERCIAL = ["sjbb2k", "sweb2005"]
ALL_APPS = SPLASH2 + COMMERCIAL

#: The paper's estimated compressed Basic-RTR log size, shown as the
#: reference line of Figures 6-8 (about 1 byte/proc/kiloinstruction).
PAPER_RTR_BITS_PER_PROC_PER_KILOINST = 8.0

#: Paper-reported headline numbers (EXPERIMENTS.md compares against
#: these).
PAPER = {
    "sc_speed_vs_rc": 0.79,
    "orderonly_record_vs_rc": 0.98,
    "picolog_record_vs_rc": 0.86,
    "orderonly_replay_vs_rc": 0.82,
    "picolog_replay_vs_rc": 0.72,
    "orderonly_log_bits_compressed": 1.3,
    "orderonly_log_bits_raw": 2.1,
    "picolog_log_bits_compressed": 0.05,
    "stratified_pi_reduction": 0.54,
}


def program_for(app: str, num_threads: int = 8, scale: float | None = None):
    """Fresh Program instance for an app (programs are mutable-ish, so
    callers get their own)."""
    scale = SCALE if scale is None else scale
    if app in COMMERCIAL:
        return commercial_program(app, scale=scale, seed=SEED,
                                  num_threads=num_threads)
    return splash2_program(app, scale=scale, seed=SEED,
                           num_threads=num_threads)


@lru_cache(maxsize=None)
def record_app(app: str, mode: ExecutionMode, chunk_size: int = 0,
               num_threads: int = 8, simultaneous: int = 0,
               scale_key: float = -1.0):
    """Cached recording of one app under one configuration.

    ``chunk_size=0`` means the mode's preferred size; ``simultaneous=0``
    means the Table 5 default (2).  Returns (system, recording).
    """
    scale = SCALE if scale_key < 0 else scale_key
    overrides = {"num_processors": num_threads}
    if simultaneous:
        overrides["simultaneous_chunks"] = simultaneous
    machine_config = MachineConfig(**overrides)
    system = DeLoreanSystem(
        mode=mode,
        machine_config=machine_config,
        chunk_size=chunk_size or None,
    )
    recording = system.record(
        program_for(app, num_threads=num_threads, scale=scale))
    return system, recording


@lru_cache(maxsize=None)
def replay_app(app: str, mode: ExecutionMode, use_strata: bool = False,
               scale_key: float = -1.0):
    """Cached perturbed replay of one app (Section 6.2.1 methodology)."""
    system, recording = record_app(app, mode, scale_key=scale_key)
    result = system.replay(
        recording,
        perturbation=ReplayPerturbation(seed=SEED * 13 + 7),
        use_strata=use_strata,
    )
    assert result.determinism.matches, (
        f"replay diverged for {app}/{mode}: "
        f"{result.determinism.summary()}")
    return result


@lru_cache(maxsize=None)
def consistency_run(app: str, model: ConsistencyModel,
                    num_threads: int = 8, collect_trace: bool = False,
                    scale_key: float = -1.0):
    """Cached interleaved (conventional-machine) run of one app."""
    scale = SCALE if scale_key < 0 else scale_key
    executor = InterleavedExecutor(
        program_for(app, num_threads=num_threads, scale=scale),
        MachineConfig(num_processors=num_threads),
        model,
        collect_trace=collect_trace,
    )
    return executor.run()


def rc_cycles(app: str, num_threads: int = 8,
              scale_key: float = -1.0) -> float:
    """RC-baseline cycle count (the Figure 10/11/12 normalizer)."""
    return consistency_run(app, ConsistencyModel.RC,
                           num_threads=num_threads,
                           scale_key=scale_key).cycles


def splash2_gm(values_by_app: dict[str, float]) -> float:
    """Geometric mean over the SPLASH-2 apps (the paper's SP2-G.M.)."""
    return geometric_mean([values_by_app[app] for app in SPLASH2
                           if app in values_by_app])


def emit(title: str, headers, rows) -> None:
    """Print one paper-style table (captured by pytest -s or the
    benchmark log)."""
    print()
    print(format_table(headers, rows, title=title))


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark, executing it exactly
    once (these are experiment reproductions, not microbenchmarks)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
