"""Figure 9: PI-log size in OrderOnly without and with stratification.

Paper series: the 2000-instruction OrderOnly PI log, compressed,
normalized to the unstratified design, for 1/3/7 committed chunks per
processor per stratum.  One chunk per processor per stratum shrinks the
PI log by ~54% on average (yielding ~0.6 bits/proc/kiloinst total);
seven chunks per stratum wastes space on SPECweb2005.
"""

from repro.core.modes import ExecutionMode

from harness import (
    COMMERCIAL,
    PAPER,
    SPLASH2,
    emit,
    record_app,
    run_once,
    splash2_gm,
)

CAPS = (1, 3, 7)


def _stratified(app: str):
    _, recording = record_app(app, ExecutionMode.ORDER_ONLY)
    ordering = recording.memory_ordering
    plain = ordering.pi_size_bits(False)
    out = {"plain": plain}
    for cap, (raw, comp) in ordering.stratified_by_cap.items():
        out[cap] = raw
        out[f"{cap}c"] = comp
    return out


def compute_figure():
    return {app: _stratified(app) for app in SPLASH2 + COMMERCIAL}


def test_fig09_stratified_pi_log(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = []
    for label, apps in (("SP2-G.M.", SPLASH2), ("sjbb2k", ["sjbb2k"]),
                        ("sweb2005", ["sweb2005"])):
        def agg(key):
            if label == "SP2-G.M.":
                return splash2_gm({a: results[a][key] / results[a][
                    "plain"] for a in SPLASH2})
            return results[apps[0]][key] / results[apps[0]]["plain"]
        rows.append([label, 1.0, agg(1), agg(3), agg(7)])
    emit("Figure 9 -- Stratified PI log size, normalized to the "
         "unstratified OrderOnly PI log (raw bits)",
         ["workload", "OrderOnly", "1/stratum", "3/stratum",
          "7/stratum"], rows)
    reduction = 1.0 - splash2_gm(
        {a: results[a][1] / results[a]["plain"] for a in SPLASH2})
    print(f"Average PI-log reduction with 1 chunk/proc/stratum: "
          f"{100 * reduction:.0f}% (paper: "
          f"{100 * PAPER['stratified_pi_reduction']:.0f}%)")

    # Shape assertions.
    for app in SPLASH2 + COMMERCIAL:
        # Stratification with cap 1 always shrinks the PI log.
        assert results[app][1] < results[app]["plain"], app
    assert 0.30 < reduction < 0.75  # paper: 54%
    # Allowing 7 chunks/proc/stratum wastes space relative to 3 (wide
    # counters, sparse strata) -- the paper singles out SPECweb2005.
    assert results["sweb2005"][7] > results["sweb2005"][3]
