"""Figure 7: size of the CS log in PicoLog (there is no PI log).

Paper series: bits per processor per kilo-instruction for standard
chunk sizes of 1000/2000/3000, raw and compressed.  The preferred
1000-instruction configuration needs only about 0.05 compressed bits --
0.6% of the estimated Basic-RTR log, or roughly 20 GB/day for eight
5 GHz processors (Section 6.1).
"""

from repro.core.modes import ExecutionMode

from harness import (
    COMMERCIAL,
    PAPER,
    PAPER_RTR_BITS_PER_PROC_PER_KILOINST,
    SPLASH2,
    emit,
    prefetch,
    record_app,
    run_once,
    splash2_gm,
)

CHUNK_SIZES = (1000, 2000, 3000)


def _cs_sizes(app: str, chunk_size: int):
    _, recording = record_app(app, ExecutionMode.PICOLOG,
                              chunk_size=chunk_size)
    ordering = recording.memory_ordering
    scale = 1000.0 / max(1, recording.total_committed_instructions)
    return {
        "cs_raw": ordering.cs_size_bits(False) * scale,
        "cs_comp": ordering.cs_size_bits(True) * scale,
        "pi": ordering.pi_size_bits(False),
    }


def _mean(values):
    """Arithmetic mean: the CS log is near-zero, where a geometric
    mean over zeros would be degenerate."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def compute_figure():
    prefetch("fig07")   # fans the whole sweep out when REPRO_BENCH_JOBS>1
    return {chunk_size: {app: _cs_sizes(app, chunk_size)
                         for app in SPLASH2 + COMMERCIAL}
            for chunk_size in CHUNK_SIZES}


def _gigabytes_per_day(bits_per_proc_per_kiloinst: float,
                       procs: int = 8, ghz: float = 5.0,
                       ipc: float = 1.0) -> float:
    """The paper's 20 GB/day estimate methodology (Section 6.1)."""
    instructions_per_day = procs * ghz * 1e9 * ipc * 86400
    bits = bits_per_proc_per_kiloinst * instructions_per_day / 1000.0
    return bits / 8 / 1e9


def test_fig07_picolog_log_size(benchmark):
    results = run_once(benchmark, compute_figure)
    rows = []
    for chunk_size in CHUNK_SIZES:
        by_app = results[chunk_size]
        gm_raw = _mean(by_app[a]["cs_raw"] for a in SPLASH2)
        gm_comp = _mean(by_app[a]["cs_comp"] for a in SPLASH2)
        rows.append(["SP2-mean", chunk_size, gm_raw, gm_comp])
        for app in COMMERCIAL:
            rows.append([app, chunk_size, by_app[app]["cs_raw"],
                         by_app[app]["cs_comp"]])
    emit("Figure 7 -- PicoLog CS log size (bits/proc/kilo-instruction; "
         "no PI log)",
         ["workload", "chunk", "CS raw", "CS comp"], rows)
    preferred = _mean(results[1000][a]["cs_comp"] for a in SPLASH2)
    print(f"Preferred 1000-inst config, SP2-G.M. compressed: "
          f"{preferred:.3f} bits (paper: "
          f"{PAPER['picolog_log_bits_compressed']})")
    print(f"Estimated log for 8x5GHz at IPC 1: "
          f"{_gigabytes_per_day(preferred):.1f} GB/day (paper: ~20)")

    # Shape assertions.
    for chunk_size in CHUNK_SIZES:
        for app in SPLASH2 + COMMERCIAL:
            assert results[chunk_size][app]["pi"] == 0  # no PI log
            assert results[chunk_size][app]["cs_raw"] < 1.0
    assert preferred < 0.15 * PAPER_RTR_BITS_PER_PROC_PER_KILOINST
