"""Section 2/6.2 text: the Advanced-RTR (TSO) and BugNet reference
points the paper could not measure.

The paper *estimates* Advanced RTR's recording speed via Processor
Consistency ("TSO's performance is similar to that of PC") and marks
its log size "not reported"; BugNet appears only qualitatively.  This
bench fills in both cells within our framework:

* an actual store-buffer TSO execution, checked against the PC
  estimate and positioned between RC and SC;
* Advanced RTR's log = Basic RTR's dependence log plus one 64-bit
  value per SC-violating load (the loads its TSO algorithm must log);
* BugNet's first-load value log on the same traces, showing the cost
  of value logging relative to every ordering-based scheme.
"""

from repro.baselines import (
    BugNetRecorder,
    ConsistencyModel,
    RTRRecorder,
    TSOExecutor,
)
from repro.core.modes import ExecutionMode
from repro.machine.timing import MachineConfig

from harness import (
    SPLASH2,
    consistency_run,
    emit,
    program_for,
    rc_cycles,
    record_app,
    run_once,
    splash2_gm,
)

_SCALE = 0.5


def compute_rows():
    results = {}
    for app in SPLASH2:
        rc = rc_cycles(app, scale_key=_SCALE)
        pc = consistency_run(app, ConsistencyModel.PC,
                             scale_key=_SCALE).cycles
        sc = consistency_run(app, ConsistencyModel.SC,
                             scale_key=_SCALE).cycles
        tso = TSOExecutor(program_for(app, scale=_SCALE),
                          MachineConfig()).run()
        trace_run = consistency_run(app, ConsistencyModel.SC,
                                    collect_trace=True,
                                    scale_key=_SCALE)
        instructions = trace_run.total_instructions
        rtr = RTRRecorder(8)
        rtr.process(trace_run.trace)
        basic_bits = rtr.bits_per_proc_per_kiloinst(instructions)
        violation_bits = (tso.sc_violations * 64 * 1000.0
                          / max(1, tso.total_instructions))
        bugnet = BugNetRecorder(8)
        bugnet.process(trace_run.trace)
        _, order_only = record_app(app, ExecutionMode.ORDER_ONLY,
                                   scale_key=_SCALE)
        results[app] = {
            "tso_vs_rc": rc / tso.cycles,
            "pc_vs_rc": rc / pc,
            "sc_vs_rc": rc / sc,
            "violations_per_kinst": (tso.sc_violations * 1000.0
                                     / max(1, tso.total_instructions)),
            "advanced_rtr_bits": basic_bits + violation_bits,
            "basic_rtr_bits": basic_bits,
            "bugnet_bits": bugnet.bits_per_proc_per_kiloinst(
                instructions),
            "orderonly_bits":
                order_only.log_bits_per_proc_per_kiloinst(),
        }
    return results


def test_advanced_rtr_and_bugnet_reference(benchmark):
    results = run_once(benchmark, compute_rows)
    rows = [[app,
             results[app]["tso_vs_rc"],
             results[app]["pc_vs_rc"],
             results[app]["violations_per_kinst"],
             results[app]["basic_rtr_bits"],
             results[app]["advanced_rtr_bits"],
             results[app]["bugnet_bits"]]
            for app in SPLASH2]
    gm = {key: splash2_gm({a: results[a][key] for a in SPLASH2})
          for key in next(iter(results.values()))}
    rows.append(["SP2-G.M.", gm["tso_vs_rc"], gm["pc_vs_rc"],
                 gm["violations_per_kinst"], gm["basic_rtr_bits"],
                 gm["advanced_rtr_bits"], gm["bugnet_bits"]])
    emit("Advanced RTR / BugNet reference points (measured; the paper "
         "reports 'not reported')",
         ["app", "TSO/RC", "PC/RC", "viol/kinst", "RTR bits",
          "AdvRTR bits", "BugNet bits"], rows)
    print(f"OrderOnly for comparison: {gm['orderonly_bits']:.2f} "
          f"bits/proc/kinst")
    # Observable SC violations are rare at the default drain latency
    # (that rarity is what makes Advanced RTR viable).  A sharing-tight
    # kernel with a slow drain shows the mechanism firing:
    from repro.workloads.stress import racey_program
    stressed = TSOExecutor(racey_program(threads=4, rounds=150, seed=2),
                           MachineConfig(), drain_cycles=600.0).run()
    print(f"racey kernel, 600-cycle drain: {stressed.sc_violations} "
          f"observable SC violations "
          f"({stressed.sc_violations * 1000.0 / stressed.total_instructions:.2f}/kinst)")
    assert stressed.sc_violations > 0

    # The paper's estimate holds: TSO ~ PC, between RC and SC.
    assert abs(gm["tso_vs_rc"] - gm["pc_vs_rc"]) < 0.08
    assert gm["sc_vs_rc"] < gm["tso_vs_rc"] < 1.0
    # Advanced RTR can only be larger than Basic RTR.
    for app in SPLASH2:
        assert (results[app]["advanced_rtr_bits"]
                >= results[app]["basic_rtr_bits"])
    # Value logging dwarfs every ordering log.
    assert gm["bugnet_bits"] > 5 * gm["advanced_rtr_bits"]
    assert gm["orderonly_bits"] < gm["advanced_rtr_bits"]
