"""Tests for the bench performance baseline (BENCH_1.json)."""

import copy
import json

import pytest

from repro.runner.baseline import (
    BASELINE_MODES,
    collect_baseline,
    compare_baselines,
    load_baseline,
    render_baseline,
    write_baseline,
)


@pytest.fixture(scope="module")
def snapshot():
    # Tiny scale: the snapshot's *shape* is under test, not its speed.
    return collect_baseline("fft", scale=0.05, seed=11)


class TestCollect:
    def test_schema_and_coverage(self, snapshot):
        assert snapshot["kind"] == "bench-baseline"
        assert set(snapshot["modes"]) \
            == {mode.value for mode in BASELINE_MODES}
        assert set(snapshot["figures"]) == {"fig10", "fig11"}

    def test_per_mode_metrics(self, snapshot):
        for metrics in snapshot["modes"].values():
            assert metrics["record_events_per_sec"] > 0
            assert metrics["replay_events_per_sec"] > 0
            assert metrics["instructions"] > 0
            assert metrics["replay_verified"]

    def test_figures_ran_clean(self, snapshot):
        for metrics in snapshot["figures"].values():
            assert metrics["failed"] == 0
            assert metrics["specs"] > 0
            assert metrics["wall_seconds"] > 0

    def test_render_is_json_free(self, snapshot):
        text = render_baseline(snapshot)
        assert "fft" in text
        assert "fig10" in text


class TestRoundTrip:
    def test_write_then_load(self, snapshot, tmp_path):
        path = write_baseline(tmp_path / "BENCH.json", snapshot)
        assert load_baseline(path) == snapshot
        # and the file is plain JSON
        assert json.loads(path.read_text())["kind"] == "bench-baseline"

    def test_load_rejects_other_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "explore-summary"}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCompare:
    def test_self_comparison_is_clean(self, snapshot):
        assert compare_baselines(snapshot, snapshot) == []

    def test_throughput_collapse_regresses(self, snapshot):
        slow = copy.deepcopy(snapshot)
        for metrics in slow["modes"].values():
            metrics["record_events_per_sec"] /= 100.0
        regressions = compare_baselines(slow, snapshot, threshold=0.1)
        assert len(regressions) == len(snapshot["modes"])
        assert all("record_events_per_sec" in line
                   for line in regressions)

    def test_faster_is_never_a_regression(self, snapshot):
        fast = copy.deepcopy(snapshot)
        for metrics in fast["modes"].values():
            metrics["record_events_per_sec"] *= 100.0
            metrics["replay_events_per_sec"] *= 100.0
        for metrics in fast["figures"].values():
            metrics["wall_seconds"] /= 100.0
        assert compare_baselines(fast, snapshot) == []

    def test_simulated_cycle_drift_regresses(self, snapshot):
        drifted = copy.deepcopy(snapshot)
        mode = next(iter(drifted["modes"]))
        drifted["modes"][mode]["record_cycles"] += 1
        regressions = compare_baselines(drifted, snapshot)
        assert any("simulated timing changed" in line
                   for line in regressions)

    def test_lost_determinism_regresses(self, snapshot):
        broken = copy.deepcopy(snapshot)
        mode = next(iter(broken["modes"]))
        broken["modes"][mode]["replay_verified"] = False
        regressions = compare_baselines(broken, snapshot)
        assert any("no longer verifies" in line for line in regressions)

    def test_figure_blowup_regresses(self, snapshot):
        slow = copy.deepcopy(snapshot)
        slow["figures"]["fig10"]["wall_seconds"] *= 100.0
        regressions = compare_baselines(slow, snapshot, threshold=0.1)
        assert any("fig10.wall_seconds" in line for line in regressions)


class TestCommittedBaseline:
    def test_repo_baseline_parses(self):
        # The committed reference CI diffs against must stay loadable.
        data = load_baseline("BENCH_1.json")
        assert data["schema"] == 1
        assert set(data["modes"]) \
            == {mode.value for mode in BASELINE_MODES}
