"""Move-to-front entropy codec (compression.entropy)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.entropy import (
    LRURankCodec,
    MTFCodec,
    lru_compressed_size_bits,
    mtf_compressed_size_bits,
    read_elias_gamma,
    write_elias_gamma,
)
from repro.errors import LogFormatError


class TestEliasGamma:
    def test_known_codes(self):
        # 1 -> "1", 2 -> "010", 3 -> "011", 5 -> "00101".
        expected = {1: "1", 2: "010", 3: "011", 5: "00101"}
        for value, bits in expected.items():
            writer = BitWriter()
            write_elias_gamma(writer, value)
            assert writer.bit_length == len(bits)
            payload = writer.to_bytes()
            rendered = "".join(
                str((payload[i // 8] >> (7 - i % 8)) & 1)
                for i in range(writer.bit_length))
            assert rendered == bits, value

    def test_rejects_non_positive(self):
        writer = BitWriter()
        for value in (0, -1):
            with pytest.raises(LogFormatError):
                write_elias_gamma(writer, value)

    def test_truncated_stream_detected(self):
        writer = BitWriter()
        writer.write(0, 3)  # looks like the prefix of a long code
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        with pytest.raises(LogFormatError):
            read_elias_gamma(reader)

    @given(st.lists(st.integers(min_value=1, max_value=10**9),
                    max_size=50))
    def test_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            write_elias_gamma(writer, value)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        decoded = [read_elias_gamma(reader) for _ in values]
        assert decoded == values

    def test_small_values_are_cheap(self):
        writer = BitWriter()
        write_elias_gamma(writer, 1)
        assert writer.bit_length == 1
        writer = BitWriter()
        write_elias_gamma(writer, 1000)
        assert writer.bit_length == 19  # 2*floor(log2) + 1


class TestMTFCodec:
    def test_empty_stream(self):
        payload, bits = MTFCodec(8).compress([])
        assert bits == 0
        assert MTFCodec(8).decompress(payload, bits) == []

    def test_roundtrip_simple(self):
        codec = MTFCodec(9)
        stream = [0, 0, 0, 3, 3, 1, 8, 8, 8, 0]
        payload, bits = codec.compress(stream)
        assert codec.decompress(payload, bits) == stream

    def test_repeats_compress_well(self):
        codec = MTFCodec(9)
        stream = [5] * 1000
        _, bits = codec.compress(stream)
        # One rank token + one run token.
        assert bits < 32

    def test_alternating_pair_stays_cheap(self):
        # Two processors trading commits: ranks are all 1 after the
        # first two symbols -- 3 bits each, under the 4-bit raw entry.
        codec = MTFCodec(9)
        stream = [0, 1] * 500
        _, bits = codec.compress(stream)
        assert bits < 4 * len(stream)

    def test_symbol_out_of_alphabet_rejected(self):
        with pytest.raises(LogFormatError):
            MTFCodec(4).compress([4])
        with pytest.raises(LogFormatError):
            MTFCodec(4).compress([-1])

    def test_corrupt_rank_detected(self):
        # A rank >= alphabet size cannot decode.
        writer = BitWriter()
        writer.write_flag(True)
        write_elias_gamma(writer, 9)
        with pytest.raises(LogFormatError):
            MTFCodec(4).decompress(writer.to_bytes(),
                                   writer.bit_length)

    def test_alphabet_must_be_positive(self):
        with pytest.raises(LogFormatError):
            MTFCodec(0)

    @given(st.integers(min_value=1, max_value=17).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     max_size=200))))
    def test_roundtrip_property(self, case):
        num_symbols, stream = case
        codec = MTFCodec(num_symbols)
        payload, bits = codec.compress(stream)
        assert codec.decompress(payload, bits) == stream

    def test_size_helper_caps_at_raw(self):
        # A worst-case stream (always the deepest rank) would exceed
        # the packed size; the helper mirrors the hardware bypass.
        num = 16
        stream = list(range(num)) * 40
        raw = len(stream) * 4
        size = mtf_compressed_size_bits(stream, num, raw_bits=raw)
        assert size <= raw

    def test_size_helper_empty(self):
        assert mtf_compressed_size_bits([], 8) == 0


class TestLRURankCodec:
    def test_empty_stream(self):
        payload, bits = LRURankCodec(8).compress([])
        assert bits == 0
        assert LRURankCodec(8).decompress(payload, bits) == []

    def test_roundtrip_simple(self):
        codec = LRURankCodec(16)
        stream = [3, 6, 0, 2, 4, 7, 5, 1, 6, 3, 0, 5, 2, 7, 4, 1]
        payload, bits = codec.compress(stream)
        assert codec.decompress(payload, bits) == stream

    def test_fair_rotation_costs_one_bit_per_entry(self):
        # A perfect round-robin is the LRU predictor's best case:
        # after the first round, every entry is rank 0.
        codec = LRURankCodec(16)
        stream = list(range(8)) * 100
        _, bits = codec.compress(stream)
        assert bits < len(stream) + 8 * 12  # ~1 bit/entry + warmup

    def test_constant_stream_is_rank_zero(self):
        codec = LRURankCodec(16)
        _, bits = codec.compress([5] * 1000)
        assert bits < 1000 + 8

    def test_sparse_alphabet_costs_nothing_extra(self):
        # 4-bit field, only 2 agents: ranks never reach the unused
        # symbols, unlike a preset 16-entry recency list.
        codec = LRURankCodec(16)
        stream = [0, 9] * 200
        _, bits = codec.compress(stream)
        # Alternating pair under LRU: every post-warmup entry rank 0.
        assert bits < len(stream) + 16

    def test_symbol_out_of_alphabet_rejected(self):
        with pytest.raises(LogFormatError):
            LRURankCodec(4).compress([4])
        with pytest.raises(LogFormatError):
            LRURankCodec(4).compress([-1])

    def test_corrupt_rank_detected(self):
        writer = BitWriter()
        write_elias_gamma(writer, 5)  # 5 > len(seen) + 1 == 1
        with pytest.raises(LogFormatError):
            LRURankCodec(8).decompress(writer.to_bytes(),
                                       writer.bit_length)

    def test_corrupt_escape_detected(self):
        # Escape that names an already-seen symbol cannot decode.
        writer = BitWriter()
        write_elias_gamma(writer, 1)  # escape (seen is empty)
        writer.write(3, 3)            # symbol 3
        write_elias_gamma(writer, 2)  # escape again (len(seen)=1)
        writer.write(3, 3)            # ...naming 3 again
        with pytest.raises(LogFormatError):
            LRURankCodec(8).decompress(writer.to_bytes(),
                                       writer.bit_length)

    @given(st.integers(min_value=1, max_value=17).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     max_size=200))))
    def test_roundtrip_property(self, case):
        num_symbols, stream = case
        codec = LRURankCodec(num_symbols)
        payload, bits = codec.compress(stream)
        assert codec.decompress(payload, bits) == stream

    def test_size_helper_caps_at_raw(self):
        # Near-uniform symbols over a 9-agent alphabet (the commercial
        # PI pattern) genuinely expand under LRU -- the helper must
        # return exactly the raw size, proving the cap engaged.
        import random
        rng = random.Random(3)
        stream = [rng.randrange(9) for _ in range(400)]
        raw = len(stream) * 4
        _, uncapped = LRURankCodec(16).compress(stream)
        assert uncapped > raw  # the stream really expands
        assert lru_compressed_size_bits(stream, 16,
                                        raw_bits=raw) == raw

    def test_size_helper_empty(self):
        assert lru_compressed_size_bits([], 8) == 0


class TestPILogIntegration:
    def test_pi_log_mtf_size(self):
        from repro.core.logs import PILog
        log = PILog(entry_bits=4)
        # A bursty grant pattern: MTF beats the raw packing.
        for proc in [0] * 40 + [1] * 40 + [2, 0] * 20:
            log.append(proc)
        assert 0 < log.mtf_compressed_size_bits() < log.size_bits

    def test_pi_log_empty(self):
        from repro.core.logs import PILog
        assert PILog().mtf_compressed_size_bits() == 0
        assert PILog().lru_compressed_size_bits() == 0

    def test_pi_log_lru_beats_raw_on_rotation(self):
        from repro.core.logs import PILog
        log = PILog(entry_bits=4)
        for _ in range(50):
            for proc in (3, 6, 0, 2, 4, 7, 5, 1):
                log.append(proc)
        assert log.lru_compressed_size_bits() < 0.5 * log.size_bits
