"""Tests for repro.faults: injection, DLRN v2 integrity, salvage.

The headline property is the resilience invariant: every injected
fault is *detected* (a typed ReproError) or *recovered* (a salvage
report whose coverage counts only fingerprint-verified commits) --
never a silent wrong result.  ``TestCorruptionSweep`` pins it down
exhaustively, one corrupted byte at a time.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from conftest import counter_program, small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.serialization import (
    container_frames,
    load_recording,
    load_recording_tolerant,
    save_recording,
)
from repro.errors import (
    ChecksumError,
    IntegrityError,
    LogFormatError,
    ReproError,
    SalvageError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyJobFn,
    execute_chaos_spec,
    run_campaign,
    salvage_from_blob,
    salvage_replay,
)
from repro.faults.campaign import build_specs
from repro.machine.system import replay_execution
from repro.runner import Runner
from repro.runner.retry import FailureRecord, RetryPolicy
from repro.telemetry import EventTracer


def make_recording(mode=ExecutionMode.ORDER_ONLY, threads=3,
                   increments=12, checkpoint_every=0,
                   num_processors=4):
    config = small_config(num_processors=num_processors)
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(counter_program(threads, increments),
                              checkpoint_every=checkpoint_every)
    return system, recording


def memory_sha(final_memory):
    return hashlib.sha256(
        json.dumps(sorted(final_memory.items())).encode()).hexdigest()


# -- fault plans -------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        one = FaultPlan.generate(42, 20, num_processors=4)
        two = FaultPlan.generate(42, 20, num_processors=4)
        assert one == two

    def test_different_seed_different_plan(self):
        assert (FaultPlan.generate(1, 20)
                != FaultPlan.generate(2, 20))

    def test_same_seed_byte_identical_injected_blob(self):
        _, recording = make_recording()
        blob = save_recording(recording)
        injector = FaultInjector()
        for fault in FaultPlan.generate(9, 16,
                                        layers=("blob",)):
            assert (injector.inject_blob(blob, fault)
                    == FaultInjector().inject_blob(blob, fault))

    def test_log_faults_are_deterministic_too(self):
        _, recording = make_recording()
        injector = FaultInjector()
        for fault in FaultPlan.generate(9, 12, layers=("log",)):
            one = injector.inject_recording(recording, fault)
            two = injector.inject_recording(recording, fault)
            assert one.pi_log.entries == two.pi_log.entries
            assert one.dma_log.entries == two.dma_log.entries
            for proc in one.cs_logs:
                assert (one.cs_logs[proc].entries
                        == two.cs_logs[proc].entries)

    def test_injection_does_not_mutate_the_original(self):
        _, recording = make_recording()
        before = list(recording.pi_log.entries)
        FaultInjector().inject_recording(
            recording, FaultSpec(layer="log", kind="drop_pi",
                                 position=0.5))
        assert recording.pi_log.entries == before

    def test_spec_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            FaultSpec(layer="nope", kind="bit_flip", position=0.1)
        with pytest.raises(ConfigurationError):
            FaultSpec(layer="blob", kind="drop_pi", position=0.1)
        with pytest.raises(ConfigurationError):
            FaultSpec(layer="blob", kind="bit_flip", position=1.5)


# -- DLRN v2 container -------------------------------------------------


class TestDlrnV2:
    def test_v2_is_the_default_and_round_trips(self):
        system, recording = make_recording()
        blob = save_recording(recording)
        assert blob[:4] == b"DLRN" and blob[4] == 2
        loaded = load_recording(blob)
        result = system.replay(loaded)
        assert result.determinism.matches

    def test_v1_still_writable_and_loadable(self):
        system, recording = make_recording()
        blob = save_recording(recording, version=1)
        assert blob[4] == 1
        loaded = load_recording(blob)
        assert loaded.pi_log.entries == recording.pi_log.entries
        result = system.replay(loaded)
        assert result.determinism.matches

    def test_v1_and_v2_load_identically(self):
        _, recording = make_recording()
        v1 = load_recording(save_recording(recording, version=1))
        v2 = load_recording(save_recording(recording, version=2))
        assert v1.pi_log.entries == v2.pi_log.entries
        assert v1.final_memory == v2.final_memory
        for proc in v1.cs_logs:
            assert (v1.cs_logs[proc].entries
                    == v2.cs_logs[proc].entries)

    def test_payload_corruption_raises_checksum_error(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording))
        frames, damage = container_frames(bytes(blob))
        assert not damage
        target = frames[0]  # the PI section
        blob[target.end - 1] ^= 0xFF
        with pytest.raises(ChecksumError) as excinfo:
            load_recording(bytes(blob))
        assert excinfo.value.section_tag == target.tag

    def test_header_corruption_detected(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording))
        blob[14] ^= 0xFF  # inside the JSON header
        with pytest.raises(IntegrityError):
            load_recording(bytes(blob))

    def test_tolerant_load_resyncs_past_damage(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording))
        frames, _ = container_frames(bytes(blob))
        target = frames[0]
        blob[target.end - 1] ^= 0xFF
        loaded, damage = load_recording_tolerant(bytes(blob))
        assert any(d.reason == "CRC32 mismatch" for d in damage)
        # Everything after the damaged section survived intact.
        for proc in recording.cs_logs:
            assert (loaded.cs_logs[proc].entries
                    == recording.cs_logs[proc].entries)

    def test_tolerant_load_of_clean_blob_reports_no_damage(self):
        _, recording = make_recording()
        loaded, damage = load_recording_tolerant(
            save_recording(recording))
        assert damage == []
        assert loaded.pi_log.entries == recording.pi_log.entries

    def test_destroyed_trailer_is_unsalvageable(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording))
        frames, _ = container_frames(bytes(blob))
        trailer = next(f for f in frames if f.name == "trailer")
        for offset in range(trailer.start, trailer.end):
            blob[offset] = 0
        with pytest.raises(SalvageError):
            load_recording_tolerant(bytes(blob))

    def test_dropped_section_detected_strictly(self):
        _, recording = make_recording()
        blob = save_recording(recording)
        frames, _ = container_frames(blob)
        target = frames[1]
        damaged = blob[:target.start] + blob[target.end:]
        with pytest.raises(LogFormatError):
            load_recording(damaged)
        _, damage = load_recording_tolerant(damaged)
        assert any("missing" in d.reason for d in damage)

    def test_duplicate_section_detected_strictly(self):
        _, recording = make_recording()
        blob = save_recording(recording)
        frames, _ = container_frames(blob)
        target = frames[1]
        section = blob[target.start:target.end]
        damaged = (blob[:target.end] + section + blob[target.end:])
        with pytest.raises(LogFormatError):
            load_recording(damaged)
        loaded, damage = load_recording_tolerant(damaged)
        assert any(d.reason == "duplicate section ignored"
                   for d in damage)
        assert loaded.pi_log.entries == recording.pi_log.entries


class TestV1Hardening:
    """Satellite bugfix: a damaged v1 blob must raise LogFormatError,
    never a raw struct/pickle/EOF error."""

    def test_truncation_sweep_raises_only_typed_errors(self):
        _, recording = make_recording()
        blob = save_recording(recording, version=1)
        for cut in range(1, len(blob), max(1, len(blob) // 97)):
            with pytest.raises(IntegrityError):
                load_recording(blob[:cut])

    def test_garbage_tail_raises_log_format_error(self):
        _, recording = make_recording()
        blob = save_recording(recording, version=1)
        with pytest.raises(IntegrityError):
            load_recording(blob[: len(blob) // 2]
                           + b"\x97" * (len(blob) // 2))

    def test_garbage_after_magic_raises_log_format_error(self):
        with pytest.raises(LogFormatError):
            load_recording(b"DLRN\x01" + b"\xff" * 64)

    def test_corrupt_trailer_pickle_is_typed(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording, version=1))
        # Smash bytes near the end: inside the pickled trailer.
        for offset in range(len(blob) - 40, len(blob) - 20):
            blob[offset] = 0xFE
        with pytest.raises(IntegrityError):
            load_recording(bytes(blob))


# -- corruption sweep --------------------------------------------------


class TestCorruptionSweep:
    def test_every_single_byte_corruption_detected_or_harmless(self):
        """Exhaustive sweep: corrupt each byte of a small v2 blob in
        turn; every outcome must be a typed IntegrityError (detected)
        or a verified replay equal to the baseline (harmless).  A
        verified replay with *different* results would be a silent
        divergence -- the failure mode the container exists to rule
        out."""
        system, recording = make_recording(threads=2, increments=4,
                                           num_processors=2)
        blob = save_recording(recording)
        baseline_sha = memory_sha(recording.final_memory)
        baseline_commits = len(recording.fingerprints)
        outcomes = {"detected": 0, "harmless": 0}
        for offset in range(len(blob)):
            damaged = (blob[:offset]
                       + bytes([blob[offset] ^ 0xFF])
                       + blob[offset + 1:])
            try:
                loaded = load_recording(damaged)
            except IntegrityError:
                outcomes["detected"] += 1
                continue
            # The corruption slipped past the integrity layer; replay
            # must still verify AND reproduce the baseline exactly.
            result = replay_execution(loaded)
            assert result.determinism.matches, (
                f"offset {offset}: loaded cleanly but replay "
                f"diverged: {result.determinism.summary()}")
            assert memory_sha(result.final_memory) == baseline_sha, (
                f"offset {offset}: SILENT DIVERGENCE")
            assert len(loaded.fingerprints) == baseline_commits, (
                f"offset {offset}: SILENT DIVERGENCE (commit count)")
            outcomes["harmless"] += 1
        # The integrity layer must be doing essentially all the work.
        assert outcomes["detected"] > 0.95 * len(blob), outcomes

    def test_sampled_corruptions_salvage_or_detect(self):
        """The recovery half of the invariant: for a sample of
        corrupted blobs, the tolerant path either salvages (honest
        coverage) or raises a typed error -- never anything rawer."""
        _, recording = make_recording(threads=2, increments=4,
                                      num_processors=2,
                                      checkpoint_every=8)
        blob = save_recording(recording)
        for offset in range(0, len(blob), max(1, len(blob) // 60)):
            damaged = (blob[:offset]
                       + bytes([blob[offset] ^ 0xFF])
                       + blob[offset + 1:])
            try:
                loaded = load_recording(damaged)
            except IntegrityError:
                try:
                    _, report = salvage_from_blob(damaged)
                except ReproError:
                    continue  # detected, unsalvageable: acceptable
                assert 0.0 <= report.coverage <= 1.0
                assert (report.verified_commits
                        <= report.total_commits)


# -- salvage replay ----------------------------------------------------


class TestSalvage:
    def test_clean_recording_full_coverage(self):
        _, recording = make_recording(checkpoint_every=8)
        report = salvage_replay(recording)
        assert report.clean
        assert report.coverage == 1.0
        assert not report.recovered  # nothing to recover *from*
        assert all(gcc is None
                   for gcc in report.first_bad_gcc.values())

    def test_damaged_pi_section_salvages_with_checkpoints(self):
        _, recording = make_recording(threads=3, increments=16,
                                      checkpoint_every=8)
        blob = save_recording(recording)
        frames, _ = container_frames(blob)
        pi = next(f for f in frames if f.name == "pi")
        damaged = bytearray(blob)
        damaged[pi.end - 1] ^= 0xFF
        loaded, report = salvage_from_blob(bytes(damaged))
        assert report.faults_detected or report.damage
        assert report.verified_commits <= report.total_commits

    def test_log_fault_reports_partial_coverage(self):
        _, recording = make_recording(threads=3, increments=16,
                                      checkpoint_every=8)
        fault = FaultSpec(layer="log", kind="drop_pi", position=0.6)
        damaged = FaultInjector().inject_recording(recording, fault)
        report = salvage_replay(damaged)
        assert report.faults_detected
        assert report.total_commits == len(recording.fingerprints)
        # Coverage counts only fingerprint-verified commits.
        assert report.verified_commits < report.total_commits
        if report.verified_commits:
            assert report.recovered
            assert report.segments

    def test_first_bad_gcc_is_per_processor(self):
        _, recording = make_recording(threads=3, increments=16,
                                      checkpoint_every=8)
        fault = FaultSpec(layer="log", kind="drop_pi", position=0.9)
        damaged = FaultInjector().inject_recording(recording, fault)
        report = salvage_replay(damaged)
        for proc, gcc in report.first_bad_gcc.items():
            if gcc is None:
                continue
            owner = recording.fingerprints[gcc][0]
            expected = (recording.machine_config.dma_proc_id
                        if owner == "dma" else owner)
            assert expected == proc

    def test_salvage_wires_telemetry_counters(self):
        _, recording = make_recording(threads=3, increments=12,
                                      checkpoint_every=8)
        fault = FaultSpec(layer="log", kind="drop_pi", position=0.5)
        damaged = FaultInjector().inject_recording(recording, fault)
        tracer = EventTracer()
        salvage_replay(damaged, tracer=tracer)
        metrics = tracer.metrics.as_dict()
        assert metrics.get("salvage_faults_detected", 0) >= 1

    def test_report_as_dict_is_json_serializable(self):
        _, recording = make_recording(checkpoint_every=8)
        report = salvage_replay(recording)
        assert json.loads(json.dumps(report.as_dict()))


# -- campaigns ---------------------------------------------------------


class TestCampaign:
    def test_small_campaign_invariant_holds(self):
        report = run_campaign(
            "sjbb2k", ExecutionMode.ORDER_ONLY, scale=0.1,
            plan_seed=7, fault_count=6)
        assert len(report.results) == 6
        assert report.invariant_ok, report.summary()
        assert report.count("silent-divergence") == 0

    def test_campaign_jsonl_report(self, tmp_path):
        report = run_campaign(
            "sjbb2k", ExecutionMode.ORDER_ONLY, scale=0.1,
            plan_seed=3, fault_count=3)
        out = tmp_path / "chaos.jsonl"
        report.write_jsonl(str(out))
        lines = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert len(lines) == 4  # 3 faults + summary
        assert lines[-1]["kind"] == "campaign-summary"
        assert lines[-1]["invariant_ok"]

    def test_chaos_specs_run_through_the_pool(self, tmp_path):
        system, recording = make_recording(checkpoint_every=8)
        blob = save_recording(recording)
        plan = FaultPlan.generate(5, 4, num_processors=4)
        specs = build_specs(blob, recording, plan)
        runner = Runner(jobs=2, cache=False,
                        job_fn=execute_chaos_spec)
        outcomes = runner.run(specs)
        assert all(outcome.ok for outcome in outcomes)
        for outcome in outcomes:
            assert outcome.artifact["outcome"] in (
                "harmless", "detected", "recovered")

    def test_chaos_cli_smoke(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.jsonl"
        code = main(["chaos", "sjbb2k", "--scale", "0.1",
                     "--faults", "4", "--plan-seed", "5",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "invariant holds" in capsys.readouterr().out


# -- runner-layer faults and retry hardening ---------------------------


class TestFaultyJobFn:
    def test_crash_once_then_retry_succeeds(self, tmp_path):
        system, recording = make_recording()
        blob = save_recording(recording)
        plan = FaultPlan.generate(2, 2, layers=("blob",))
        specs = build_specs(blob, recording, plan)
        job_fn = FaultyJobFn(
            job_fn=execute_chaos_spec, seed=1,
            state_dir=str(tmp_path / "state"), crash_rate=1.0)
        runner = Runner(
            jobs=1, cache=False, job_fn=job_fn,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01,
                              backoff_max=0.02))
        outcomes = runner.run(specs)
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.attempts == 2 for outcome in outcomes)

    def test_slowdown_does_not_fail_the_job(self, tmp_path):
        system, recording = make_recording()
        blob = save_recording(recording)
        specs = build_specs(blob, recording,
                            FaultPlan.generate(3, 1,
                                               layers=("blob",)))
        job_fn = FaultyJobFn(
            job_fn=execute_chaos_spec, seed=1,
            state_dir=str(tmp_path / "state"), slow_rate=1.0,
            slow_seconds=0.01)
        runner = Runner(jobs=1, cache=False, job_fn=job_fn)
        assert runner.run(specs)[0].ok


class TestRetryHardening:
    def test_jitter_stays_within_bounds(self):
        import random
        policy = RetryPolicy(backoff_base=0.1, backoff_max=2.0)
        rng = random.Random(1)
        previous = None
        for attempt in range(1, 20):
            delay = policy.delay(attempt, previous_delay=previous,
                                 rng=rng)
            assert 0.1 <= delay <= 2.0
            previous = delay

    def test_no_jitter_reproduces_the_ladder(self):
        policy = RetryPolicy(jitter=False, backoff_base=0.25,
                             backoff_factor=2.0, backoff_max=5.0)
        assert policy.delay(1) == 0.25
        assert policy.delay(2) == 0.5
        assert policy.delay(5) == 4.0
        assert policy.delay(8) == 5.0  # capped

    def test_jitter_is_deterministic_per_attempt(self):
        policy = RetryPolicy()
        one = policy.delay(1, rng=policy.attempt_rng("abc", 1))
        two = policy.delay(1, rng=policy.attempt_rng("abc", 1))
        other = policy.delay(1, rng=policy.attempt_rng("abc", 2))
        assert one == two
        assert one != other

    def test_elapsed_cap_stops_retrying(self):
        policy = RetryPolicy(max_attempts=10, max_elapsed=1.0)
        assert policy.should_retry(1, elapsed=0.5)
        assert not policy.should_retry(1, elapsed=1.5)
        assert not policy.should_retry(10, elapsed=0.0)

    def test_failure_record_surfaces_attempts_and_elapsed(
            self, tmp_path):
        system, recording = make_recording()
        blob = save_recording(recording)
        specs = build_specs(blob, recording,
                            FaultPlan.generate(4, 1,
                                               layers=("blob",)))

        runner = Runner(
            jobs=1, cache=False, job_fn=_always_failing_chaos_job,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              backoff_max=0.02))
        outcome = runner.run(specs)[0]
        assert not outcome.ok
        record: FailureRecord = outcome.failure
        assert len(record.attempts) == 2
        assert record.total_elapsed > 0.0
        assert "in " in record.summary()


def _always_failing_chaos_job(spec, cache=None):
    raise RuntimeError("synthetic chaos job failure")
