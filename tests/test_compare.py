"""Tests for recording comparison (diff) tooling."""

import pytest

from conftest import small_config

from repro.analysis.compare import (
    diff_recordings,
    interleaving_prefix_length,
)
from repro.core.delorean import DeLoreanSystem
from repro.errors import ConfigurationError
from repro.machine.timing import MachineConfig
from repro.workloads.stress import racey_program


def record(chunk_size, seed=3, threads=4, rounds=40):
    config = small_config()
    system = DeLoreanSystem(machine_config=config,
                            chunk_size=chunk_size)
    return system.record(racey_program(threads=threads, rounds=rounds,
                                       seed=seed))


class TestDiff:
    def test_identical_recordings(self):
        a, b = record(64), record(64)
        diff = diff_recordings(a, b)
        assert diff.identical
        assert "identical" in diff.summary()

    def test_different_interleavings_detected(self):
        a, b = record(64), record(80)
        diff = diff_recordings(a, b)
        assert not diff.identical
        assert diff.first_divergence is not None
        assert diff.divergence_kind in ("interleaving", "chunk-size",
                                        "chunk-contents", "length")
        assert "diverge" in diff.summary()

    def test_memory_differences_reported(self):
        a, b = record(64), record(80)
        diff = diff_recordings(a, b)
        # racey's signature array depends on the interleaving.
        assert diff.memory_differences

    def test_prefix_length(self):
        a, b = record(64), record(64)
        assert interleaving_prefix_length(a, b) == len(a.fingerprints)
        c = record(80)
        assert interleaving_prefix_length(a, c) < len(a.fingerprints)

    def test_mismatched_machines_rejected(self):
        a = record(64)
        system = DeLoreanSystem(
            machine_config=MachineConfig(num_processors=6),
            chunk_size=64)
        b = system.record(racey_program(threads=4, rounds=40, seed=3))
        with pytest.raises(ConfigurationError):
            diff_recordings(a, b)

    def test_length_divergence(self):
        a = record(64, rounds=40)
        b = record(64, rounds=44)
        diff = diff_recordings(a, b)
        assert not diff.identical


class TestCliDiff:
    def test_diff_command(self, tmp_path, capsys):
        from repro.cli import main
        left = tmp_path / "a.dlrn"
        right = tmp_path / "b.dlrn"
        assert main(["record", "water-sp", "--scale", "0.1",
                     "--seed", "5", "-o", str(left)]) == 0
        assert main(["record", "water-sp", "--scale", "0.1",
                     "--seed", "5", "-o", str(right)]) == 0
        capsys.readouterr()
        assert main(["diff", str(left), str(right)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_command_divergent(self, tmp_path, capsys):
        from repro.cli import main
        left = tmp_path / "a.dlrn"
        right = tmp_path / "b.dlrn"
        main(["record", "water-sp", "--scale", "0.1", "--seed", "5",
              "-o", str(left)])
        main(["record", "water-sp", "--scale", "0.1", "--seed", "6",
              "-o", str(right)])
        capsys.readouterr()
        assert main(["diff", str(left), str(right)]) == 1
