"""Tests for repro.telemetry: tracer, metrics registry, exporters."""

import json
import time

import pytest

from conftest import counter_program, small_config
from repro.analysis.stats import RunStats
from repro.chunks.processor import ProcessorStats
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.telemetry import (
    NULL_METRICS,
    NULL_TRACER,
    EventTracer,
    MetricsRegistry,
    chrome_trace,
    commit_spans_per_track,
    load_events_jsonl,
    write_events_jsonl,
)


def _system() -> DeLoreanSystem:
    return DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                          machine_config=small_config())


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        counter = registry.counter("commits")
        counter.inc()
        counter.inc(2)
        gauge = registry.gauge("cycles")
        gauge.set(10.0)
        gauge.set(5.0)
        histogram = registry.histogram("sizes")
        for value in (1.0, 3.0, 5.0):
            histogram.observe(value)
        flat = registry.as_dict()
        assert flat["commits"] == 3
        assert flat["cycles"] == 5.0
        assert flat["sizes.count"] == 3
        assert flat["sizes.sum"] == 9.0
        assert flat["sizes.min"] == 1.0
        assert flat["sizes.max"] == 5.0
        assert flat["sizes.mean"] == 3.0

    def test_create_or_get_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_null_registry_accumulates_nothing(self):
        counter = NULL_METRICS.counter("anything")
        counter.inc(100)
        NULL_METRICS.gauge("g").set(7.0)
        NULL_METRICS.histogram("h").observe(3.0)
        assert NULL_METRICS.as_dict() == {}


class TestNullTracer:
    def test_records_nothing(self):
        NULL_TRACER.span("p0", "x", 0.0, 1.0, category="execute")
        NULL_TRACER.instant("p0", "x", 0.0)
        NULL_TRACER.counter("p0", "x", 0.0, v=1)
        assert NULL_TRACER.events == ()
        assert not NULL_TRACER.enabled

    def test_untraced_run_emits_zero_events(self):
        before = len(NULL_TRACER.events)
        _system().record(counter_program(threads=4, increments=10))
        assert len(NULL_TRACER.events) == before == 0

    def test_tracing_does_not_change_the_run(self):
        program = counter_program(threads=4, increments=12)
        tracer = EventTracer()
        plain = _system().record(program)
        traced = _system().record(program, tracer=tracer)
        assert traced.fingerprints == plain.fingerprints
        assert traced.stats.as_dict() == plain.stats.as_dict()
        assert len(tracer.events) > 0

    def test_null_emission_overhead_is_negligible(self):
        # The per-chunk cost of telemetry when tracing is off is one
        # no-op method call per emission point; bound it generously so
        # a regression to real work (dict building, appends) fails.
        start = time.perf_counter()
        for _ in range(10_000):
            NULL_TRACER.instant("p0", "x", 0.0)
            NULL_TRACER.span("p0", "x", 0.0, 1.0)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5


class TestEventTracer:
    def test_captures_spans_instants_counters(self):
        tracer = EventTracer()
        tracer.span("p0", "exec", 10.0, 5.0, category="execute", seq=1)
        tracer.instant("arbiter", "grant p0", 15.0, category="grant")
        tracer.counter("log", "pi_bits", 15.0, bits=32)
        assert len(tracer) == 3
        assert [e.kind for e in tracer.events] == \
            ["span", "instant", "counter"]
        assert tracer.tracks() == ["p0", "arbiter", "log"]
        assert [e.name for e in tracer.events_on("p0")] == ["exec"]
        span = tracer.events[0]
        assert span.end_cycle == 15.0
        assert span.args == {"seq": 1}

    def test_machine_emits_chunk_lifecycle(self):
        tracer = EventTracer()
        recording = _system().record(
            counter_program(threads=4, increments=15), tracer=tracer)
        categories = {event.category for event in tracer.events}
        assert {"execute", "commit", "grant"} <= categories
        tracks = tracer.tracks()
        assert tracks[:4] == ["p0", "p1", "p2", "p3"]
        assert "arbiter" in tracks
        flat = tracer.metrics.as_dict()
        assert flat["chunks_committed"] == \
            recording.stats.total_committed_chunks
        assert flat["arbiter_grants"] >= flat["chunks_committed"]
        assert flat["cycles"] == recording.stats.cycles

    def test_one_tracer_per_run(self):
        tracer = EventTracer()
        recording = _system().record(counter_program(threads=2),
                                     tracer=tracer)
        replay_tracer = EventTracer()
        _system().replay(recording, tracer=replay_tracer)
        assert len(replay_tracer.events) > 0
        assert any(event.track == "replay"
                   for event in replay_tracer.events)


class TestPerfettoExport:
    def test_document_shape(self):
        tracer = EventTracer()
        tracer.span("p0", "exec c0", 0.0, 4.0, category="execute")
        tracer.instant("arbiter", "grant p0", 4.0, category="grant")
        tracer.counter("log", "pi_bits", 4.0, bits=8)
        document = chrome_trace(tracer.events, metadata={"app": "t"})
        entries = document["traceEvents"]
        phases = [entry["ph"] for entry in entries]
        # process_name + (thread_name + thread_sort_index) per track.
        assert phases.count("M") == 1 + 2 * 3
        assert "X" in phases and "i" in phases and "C" in phases
        names = {entry["args"]["name"] for entry in entries
                 if entry["ph"] == "M"
                 and entry["name"] == "thread_name"}
        assert names == {"p0", "arbiter", "log"}
        assert document["metadata"] == {"app": "t"}
        span = next(e for e in entries if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 4.0
        json.dumps(document)  # must be JSON-serializable as-is

    def test_commit_spans_match_run_stats(self):
        # The acceptance invariant: the timeline's per-processor commit
        # spans equal the run's RunStats committed-chunk counts.
        tracer = EventTracer()
        recording = _system().record(
            counter_program(threads=4, increments=15), tracer=tracer)
        counts = commit_spans_per_track(chrome_trace(tracer.events))
        for proc, stats in recording.stats.per_processor.items():
            assert counts.get(f"p{proc}", 0) == stats.chunks_committed


class TestJsonlRoundTrip:
    def test_event_stream_round_trips(self, tmp_path):
        tracer = EventTracer()
        _system().record(counter_program(threads=2, increments=10),
                         tracer=tracer)
        path = tmp_path / "events.jsonl"
        write_events_jsonl(tracer.events, path)
        assert load_events_jsonl(path) == tracer.events


class TestRunStatsRoundTrip:
    def test_processor_stats_round_trip(self):
        recording = _system().record(counter_program(threads=4))
        for stats in recording.stats.per_processor.values():
            assert ProcessorStats.from_dict(stats.as_dict()) == stats

    def test_run_stats_round_trip_through_json(self):
        recording = _system().record(
            counter_program(threads=4, increments=12))
        stats = recording.stats
        blob = json.dumps(stats.as_dict(), sort_keys=True)
        clone = RunStats.from_dict(json.loads(blob))
        assert clone == stats
        assert clone.as_dict() == stats.as_dict()
        assert clone.ipc == stats.ipc
