"""Tests for chunk lifecycle, conflict tests and fingerprints."""

from repro.chunks.chunk import Chunk, ChunkState, TruncationReason
from repro.chunks.signature import SignatureConfig
from repro.machine.program import ThreadState


def make_chunk(proc=0, seq=1, piece=0) -> Chunk:
    return Chunk(
        processor=proc,
        logical_seq=seq,
        start_state=ThreadState(thread_id=proc),
        signature_config=SignatureConfig(),
        piece_index=piece,
    )


class TestChunkLifecycle:
    def test_initial_state(self):
        chunk = make_chunk()
        assert chunk.state is ChunkState.BUILDING
        assert chunk.is_speculative

    def test_committed_not_speculative(self):
        chunk = make_chunk()
        chunk.state = ChunkState.COMMITTED
        assert not chunk.is_speculative

    def test_squashed_not_speculative(self):
        chunk = make_chunk()
        chunk.state = ChunkState.SQUASHED
        assert not chunk.is_speculative

    def test_key_identity(self):
        assert make_chunk(2, 5, 1).key == (2, 5, 1)

    def test_repr_readable(self):
        text = repr(make_chunk(3, 7))
        assert "p3" in text and "seq=7" in text


class TestFootprintTracking:
    def test_record_read_updates_set_and_signature(self):
        chunk = make_chunk()
        chunk.record_read(42)
        assert 42 in chunk.read_lines
        assert chunk.read_signature.may_contain(42)

    def test_record_write_updates_set_and_signature(self):
        chunk = make_chunk()
        chunk.record_write(10)
        assert 10 in chunk.write_lines
        assert chunk.write_signature.may_contain(10)

    def test_duplicate_recording_idempotent(self):
        chunk = make_chunk()
        chunk.record_read(1)
        population = chunk.read_signature.population
        chunk.record_read(1)
        assert chunk.read_signature.population == population


class TestConflictDetection:
    def test_write_write_conflict(self):
        a, b = make_chunk(0), make_chunk(1)
        a.record_write(5)
        b.record_write(5)
        assert b.conflicts_with_commit(a)
        assert b.truly_conflicts_with(a)

    def test_write_read_conflict(self):
        committing, inflight = make_chunk(0), make_chunk(1)
        committing.record_write(9)
        inflight.record_read(9)
        assert inflight.conflicts_with_commit(committing)

    def test_read_read_no_conflict(self):
        a, b = make_chunk(0), make_chunk(1)
        a.record_read(5)
        b.record_read(5)
        # a commits: its WRITE set is empty, so b survives.
        assert not b.conflicts_with_commit(a)
        assert not b.truly_conflicts_with(a)

    def test_disjoint_no_true_conflict(self):
        a, b = make_chunk(0), make_chunk(1)
        a.record_write(1)
        b.record_write(2)
        b.record_read(3)
        assert not b.truly_conflicts_with(a)

    def test_signature_conflict_superset_of_true_conflict(self):
        """Whenever sets truly conflict, signatures must agree."""
        a, b = make_chunk(0), make_chunk(1)
        for line in range(20):
            a.record_write(line)
        b.record_read(7)
        assert b.truly_conflicts_with(a)
        assert b.conflicts_with_commit(a)


class TestTruncationReasons:
    def test_nondeterministic_classification(self):
        assert TruncationReason.CACHE_OVERFLOW.is_nondeterministic
        assert TruncationReason.COLLISION_REDUCED.is_nondeterministic

    def test_deterministic_classification(self):
        for reason in (TruncationReason.SIZE_LIMIT,
                       TruncationReason.PROGRAM_END,
                       TruncationReason.IO_BOUNDARY,
                       TruncationReason.SPECIAL,
                       TruncationReason.CS_FORCED):
            assert not reason.is_nondeterministic


class TestFingerprint:
    def test_covers_writes(self):
        a, b = make_chunk(), make_chunk()
        a.write_buffer = {1: 2}
        b.write_buffer = {1: 3}
        a.end_state = ThreadState(thread_id=0)
        b.end_state = ThreadState(thread_id=0)
        assert a.commit_fingerprint() != b.commit_fingerprint()

    def test_ignores_timing(self):
        a, b = make_chunk(), make_chunk()
        for chunk in (a, b):
            chunk.end_state = ThreadState(thread_id=0)
        a.exec_cycles = 100.0
        b.exec_cycles = 999.0
        a.grant_time = 5
        b.grant_time = 50
        assert a.commit_fingerprint() == b.commit_fingerprint()

    def test_write_order_canonical(self):
        a, b = make_chunk(), make_chunk()
        a.write_buffer = {1: 10, 2: 20}
        b.write_buffer = {2: 20, 1: 10}
        a.end_state = ThreadState(thread_id=0)
        b.end_state = ThreadState(thread_id=0)
        assert a.commit_fingerprint() == b.commit_fingerprint()
