"""Tests for run statistics and report helpers."""

import pytest

from repro.analysis.report import format_table, geometric_mean
from repro.analysis.stats import RunStats
from repro.chunks.processor import ProcessorStats


class TestRunStats:
    def test_merge_processor_totals(self):
        stats = RunStats()
        stats.merge_processor(0, ProcessorStats(
            chunks_committed=3, instructions_committed=100,
            boundary_ops_committed=2, squashes=1,
            squashed_instructions=50))
        stats.merge_processor(1, ProcessorStats(
            chunks_committed=2, instructions_committed=80))
        assert stats.total_committed_chunks == 5
        assert stats.total_committed_instructions == 182
        assert stats.total_squashes == 1

    def test_ipc(self):
        stats = RunStats(cycles=100.0)
        stats.merge_processor(0, ProcessorStats(
            instructions_committed=250))
        assert stats.ipc == pytest.approx(2.5)

    def test_zero_cycles_safe(self):
        assert RunStats().ipc == 0.0
        assert RunStats().stall_fraction == 0.0

    def test_squash_rate(self):
        stats = RunStats()
        stats.merge_processor(0, ProcessorStats(
            chunks_committed=10, squashes=5))
        assert stats.squash_rate == pytest.approx(0.5)

    def test_wasted_fraction(self):
        stats = RunStats()
        stats.merge_processor(0, ProcessorStats(
            instructions_committed=75, squashed_instructions=25))
        assert stats.wasted_instruction_fraction == pytest.approx(0.25)

    def test_speedup_over(self):
        fast, slow = RunStats(cycles=50.0), RunStats(cycles=100.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_stall_fraction_normalized_per_processor(self):
        stats = RunStats(cycles=100.0)
        stats.merge_processor(0, ProcessorStats(stall_cycles=30.0))
        stats.merge_processor(1, ProcessorStats(stall_cycles=10.0))
        assert stats.stall_fraction == pytest.approx(0.2)

    def test_commit_parallelism_average(self):
        stats = RunStats(commit_parallelism_samples=[1, 2, 3])
        assert stats.avg_commit_parallelism == pytest.approx(2.0)

    def test_ready_procs_average(self):
        stats = RunStats(ready_procs_samples=[4, 6])
        assert stats.avg_ready_procs == pytest.approx(5.0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 123.456]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "----" in lines[2]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12.3], [1234.5]])
        assert "0.123" in text
        assert "12.30" in text
        assert "1234" in text

    def test_zero_renders_bare(self):
        assert "0" in format_table(["v"], [[0.0]])
