"""Tests for ResultCache lifecycle management: last-access stamping,
pinning, LRU garbage collection, and concurrent-writer safety."""

from __future__ import annotations

import concurrent.futures
import os
import time

from repro.core.modes import ExecutionMode
from repro.runner import ResultCache, RunSpec
from repro.runner.cache import encode_artifact

SALT = "gc-test"


def spec_for(seed: int) -> RunSpec:
    return RunSpec.record("fft", ExecutionMode.ORDER_ONLY,
                          scale=0.05, seed=seed)


def artifact_for(spec: RunSpec, pad: int = 0) -> dict:
    return {"schema": 1, "spec_hash": spec.content_hash(),
            "payload": "x" * pad}


def store_n(cache: ResultCache, count: int, pad: int = 0):
    """Store ``count`` artifacts with strictly increasing mtimes."""
    specs = []
    base = time.time() - 1000
    for index in range(count):
        spec = spec_for(index)
        path = cache.store(spec, artifact_for(spec, pad))
        os.utime(path, (base + index, base + index))
        specs.append(spec)
    return specs


class TestLastAccessStamping:
    def test_load_restamps_mtime(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        spec = spec_for(1)
        path = cache.store(spec, artifact_for(spec))
        stale = time.time() - 5000
        os.utime(path, (stale, stale))
        cache.load(spec)
        assert path.stat().st_mtime > stale + 4000

    def test_recently_used_survives_lru_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        specs = store_n(cache, 3, pad=100)
        cache.load(specs[0])  # oldest on disk, freshest by access
        size = cache.path_for(specs[0]).stat().st_size
        report = cache.gc(max_bytes=size)
        assert report.evicted == 2
        assert cache.load(specs[0]) is not None
        assert cache.load(specs[1]) is None
        assert cache.load(specs[2]) is None


class TestGC:
    def test_lru_eviction_order(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        specs = store_n(cache, 4, pad=100)
        size = cache.path_for(specs[0]).stat().st_size
        report = cache.gc(max_bytes=2 * size)
        assert report.evicted == 2
        assert report.evicted_hashes == [
            specs[0].content_hash(), specs[1].content_hash()]
        assert report.remaining_bytes <= 2 * size

    def test_max_age_evicts_idle_artifacts(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        spec_old, spec_new = spec_for(1), spec_for(2)
        old_path = cache.store(spec_old, artifact_for(spec_old))
        cache.store(spec_new, artifact_for(spec_new))
        stale = time.time() - 7 * 86400
        os.utime(old_path, (stale, stale))
        report = cache.gc(max_age_seconds=86400)
        assert report.evicted == 1
        assert report.evicted_hashes == [spec_old.content_hash()]
        assert cache.load(spec_new) is not None

    def test_dry_run_changes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        specs = store_n(cache, 3)
        report = cache.gc(max_bytes=0, dry_run=True)
        assert report.dry_run and report.evicted == 3
        assert all(cache.load(spec) is not None for spec in specs)

    def test_gc_counts_into_counters(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        store_n(cache, 2)
        cache.gc(max_bytes=0)
        assert cache.counters()["evictions"] == 2

    def test_empty_cache_gc_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        report = cache.gc(max_bytes=0)
        assert report.scanned == 0 and report.evicted == 0


class TestPins:
    def test_pinned_artifact_survives_everything(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        spec = spec_for(1)
        path = cache.store(spec, artifact_for(spec))
        stale = time.time() - 7 * 86400
        os.utime(path, (stale, stale))
        cache.pin(spec.content_hash())
        report = cache.gc(max_bytes=0, max_age_seconds=1)
        assert report.evicted == 0 and report.pinned_kept == 1
        assert cache.load(spec) is not None

    def test_unpin_restores_evictability(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        spec = spec_for(1)
        cache.store(spec, artifact_for(spec))
        cache.pin(spec.content_hash())
        assert cache.is_pinned(spec.content_hash())
        cache.unpin(spec.content_hash())
        assert not cache.is_pinned(spec.content_hash())
        assert cache.gc(max_bytes=0).evicted == 1

    def test_unpin_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        cache.unpin("0" * 64)  # nothing pinned: no error

    def test_stats_reports_pins(self, tmp_path):
        cache = ResultCache(tmp_path, salt=SALT)
        specs = store_n(cache, 3, pad=10)
        cache.pin(specs[0].content_hash())
        stats = cache.stats()
        assert stats["artifacts"] == 3
        assert stats["pinned"] == 1
        assert stats["salts"][SALT]["artifacts"] == 3


def _hammer_store(args):
    """Worker: repeatedly store the same spec into a shared cache."""
    root, salt, rounds = args
    cache = ResultCache(root, salt=salt)
    spec = spec_for(7)
    artifact = artifact_for(spec, pad=5000)
    for _ in range(rounds):
        cache.store(spec, artifact)
    return spec.content_hash()


class TestConcurrentWriters:
    def test_racing_stores_leave_one_clean_artifact(self, tmp_path):
        """Multi-process writers racing on one spec: the artifact is
        never torn and no temp files leak."""
        workers = 4
        with concurrent.futures.ProcessPoolExecutor(workers) as pool:
            hashes = list(pool.map(
                _hammer_store,
                [(str(tmp_path), SALT, 25)] * workers))
        assert len(set(hashes)) == 1
        cache = ResultCache(tmp_path, salt=SALT)
        spec = spec_for(7)
        artifact = cache.load(spec)
        assert artifact == artifact_for(spec, pad=5000)
        path = cache.path_for(spec)
        assert path.read_bytes() == encode_artifact(artifact)
        leftovers = [p for p in path.parent.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []
        assert cache.stats()["artifacts"] == 1
