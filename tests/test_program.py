"""Tests for the program model: ops, thread state, compute algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.program import (
    Op,
    OpKind,
    Program,
    ThreadState,
    compute_mix,
)


class TestOpValidation:
    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            Op(OpKind.LOAD, address=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Op(OpKind.COMPUTE, count=0)

    def test_default_fields(self):
        op = Op(OpKind.LOAD, address=5)
        assert op.value is None
        assert op.count == 1

    def test_ops_are_hashable_and_frozen(self):
        op = Op(OpKind.STORE, address=1, value=2)
        assert hash(op) == hash(Op(OpKind.STORE, address=1, value=2))
        with pytest.raises(AttributeError):
            op.address = 9


class TestProgramValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ConfigurationError):
            Program(threads=[])

    def test_non_op_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            Program(threads=[["not an op"]])

    def test_counts(self):
        program = Program(threads=[
            [Op(OpKind.COMPUTE, count=5)],
            [Op(OpKind.LOAD, address=1), Op(OpKind.STORE, address=2)],
        ])
        assert program.num_threads == 2
        assert program.static_lengths() == [1, 2]
        assert program.total_static_ops() == 3


class TestThreadState:
    def test_snapshot_is_deep_enough(self):
        state = ThreadState(thread_id=0, op_index=3, accumulator=42,
                            retired=100)
        saved = state.snapshot()
        state.op_index = 9
        state.accumulator = 0
        assert saved.op_index == 3
        assert saved.accumulator == 42

    def test_restore_roundtrip(self):
        state = ThreadState(thread_id=1, op_index=2, retired=7,
                            compute_remaining=3, stage=1,
                            barrier_target=16)
        saved = state.snapshot()
        state.op_index = 99
        state.stage = 0
        state.restore(saved)
        assert state.architectural_key() == saved.architectural_key()

    def test_handler_fields_in_key(self):
        plain = ThreadState(thread_id=0)
        handler = ThreadState(thread_id=0,
                              handler_ops=(Op(OpKind.COMPUTE, count=1),),
                              handler_index=0)
        assert plain.architectural_key() != handler.architectural_key()
        assert handler.in_handler
        assert not plain.in_handler

    def test_exhausted_semantics(self):
        state = ThreadState(thread_id=0, finished=True)
        assert state.exhausted
        state.handler_ops = (Op(OpKind.COMPUTE, count=1),)
        assert not state.exhausted  # handler still pending


class TestComputeMix:
    def test_zero_steps_is_identity(self):
        assert compute_mix(12345, 0) == 12345

    def test_one_step_matches_affine_definition(self):
        from repro.machine.program import _AFFINE_A, _AFFINE_C
        x = 999
        assert compute_mix(x, 1) == (x * _AFFINE_A + _AFFINE_C) % (1 << 64)

    def test_matches_naive_iteration(self):
        from repro.machine.program import _AFFINE_A, _AFFINE_C
        value = 7
        for _ in range(123):
            value = (value * _AFFINE_A + _AFFINE_C) % (1 << 64)
        assert compute_mix(7, 123) == value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=5000),
           st.integers(min_value=0, max_value=5000))
    def test_segmentation_invariance(self, start, first, second):
        """Splitting a compute block anywhere yields the same result.

        This is what lets replay legally split a chunk into
        back-to-back pieces (Section 4.2.3) without perturbing values.
        """
        whole = compute_mix(start, first + second)
        split = compute_mix(compute_mix(start, first), second)
        assert whole == split

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=10000))
    def test_result_stays_in_word_range(self, start, count):
        assert 0 <= compute_mix(start, count) < (1 << 64)
