"""Tests for PI-log stratification (Section 4.3)."""

import pytest

from repro.chunks.signature import Signature, SignatureConfig
from repro.core.stratifier import Stratifier
from repro.errors import ConfigurationError, LogFormatError


def sig(*lines) -> Signature:
    signature = Signature(SignatureConfig())
    for line in lines:
        signature.insert(line)
    return signature


class TestStratumEmission:
    def test_no_conflicts_one_stratum(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=7)
        for _ in range(3):
            stratifier.observe(0, sig(1), sig(2))
            stratifier.observe(1, sig(3), sig(4))
        stratifier.finish()
        assert len(stratifier.strata) == 1
        assert stratifier.strata[0].counts == (3, 3)

    def test_conflict_breaks_stratum(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=7)
        stratifier.observe(0, sig(1), sig(10))
        stratifier.observe(1, sig(10), sig(20))  # reads 0's write
        stratifier.finish()
        assert len(stratifier.strata) == 2
        assert stratifier.strata[0].counts == (1, 0)
        assert stratifier.strata[1].counts == (0, 1)

    def test_same_processor_conflict_ignored(self):
        """Within-processor cross-chunk conflicts do not break strata
        (same-processor commits serialize by construction)."""
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=7)
        stratifier.observe(0, sig(1), sig(10))
        stratifier.observe(0, sig(10), sig(10))
        stratifier.finish()
        assert len(stratifier.strata) == 1

    def test_counter_saturation_breaks_stratum(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=1)
        stratifier.observe(0, sig(1), sig(2))
        stratifier.observe(0, sig(3), sig(4))
        stratifier.finish()
        assert len(stratifier.strata) == 2

    def test_war_breaks_stratum(self):
        """A write after another processor's read must be separated."""
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=7)
        stratifier.observe(0, sig(50), sig(1))   # proc 0 reads line 50
        stratifier.observe(1, sig(2), sig(50))   # proc 1 writes line 50
        stratifier.finish()
        assert len(stratifier.strata) == 2

    def test_finish_flushes_partial(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=7)
        stratifier.observe(0, sig(1), sig(2))
        assert len(stratifier.strata) == 0
        stratifier.finish()
        assert len(stratifier.strata) == 1

    def test_total_chunks(self):
        stratifier = Stratifier(num_slots=3, chunks_per_stratum=3)
        for index in range(10):
            stratifier.observe(index % 3, sig(index * 100),
                               sig(index * 100 + 1))
        assert stratifier.total_chunks == 10


class TestBitAccounting:
    def test_counter_bits_by_saturation(self):
        assert Stratifier(8, 1).counter_bits == 1
        assert Stratifier(8, 3).counter_bits == 2
        assert Stratifier(8, 7).counter_bits == 3

    def test_stratum_bits(self):
        assert Stratifier(9, 1).stratum_bits == 9
        assert Stratifier(9, 7).stratum_bits == 27

    def test_encode_decode_roundtrip(self):
        stratifier = Stratifier(num_slots=4, chunks_per_stratum=3)
        for index in range(20):
            stratifier.observe(index % 4, sig(index), sig(index + 1000))
        stratifier.finish()
        payload, bits = stratifier.encode()
        decoded = stratifier.decode_strata(payload, bits)
        assert decoded == stratifier.strata


class TestValidation:
    def test_validate_against_commits_accepts_truth(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=2)
        commits = []
        for index in range(8):
            proc = index % 2
            stratifier.observe(proc, sig(index * 10),
                               sig(index * 10 + 1))
            commits.append(proc)
        stratifier.finish()
        stratifier.validate_against_commits(commits)  # must not raise

    def test_validate_rejects_wrong_sequence(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=2)
        stratifier.observe(0, sig(1), sig(2))
        stratifier.observe(1, sig(3), sig(4))
        stratifier.finish()
        with pytest.raises(LogFormatError):
            stratifier.validate_against_commits([0, 0])

    def test_bad_proc_rejected(self):
        stratifier = Stratifier(num_slots=2, chunks_per_stratum=1)
        with pytest.raises(ConfigurationError):
            stratifier.observe(5, sig(1), sig(2))

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            Stratifier(0, 1)
        with pytest.raises(ConfigurationError):
            Stratifier(2, 0)


class TestSizeBehaviour:
    def test_one_chunk_per_stratum_packs_one_round(self):
        """Cap 1 means one chunk per *processor* per stratum: a full
        conflict-free round of 8 processors shares a stratum, which is
        where Figure 9's halving of the PI log comes from."""
        stratifier = Stratifier(num_slots=8, chunks_per_stratum=1)
        for index in range(40):
            stratifier.observe(index % 8, sig(index), sig(index + 500))
        stratifier.finish()
        assert len(stratifier.strata) == 5

    def test_larger_cap_fewer_strata_without_conflicts(self):
        small_cap = Stratifier(num_slots=4, chunks_per_stratum=1)
        big_cap = Stratifier(num_slots=4, chunks_per_stratum=7)
        for index in range(28):
            proc = index % 4
            small_cap.observe(proc, sig(index * 7), sig(index * 7 + 3))
            big_cap.observe(proc, sig(index * 7), sig(index * 7 + 3))
        small_cap.finish()
        big_cap.finish()
        assert len(big_cap.strata) < len(small_cap.strata)
