"""Tests for the Strata baseline recorder."""

from hypothesis import given, settings, strategies as st

from repro.baselines.strata import StrataRecorder
from test_fdr import trace_from


class TestStratumCreation:
    def test_figure_1c_case(self):
        """The paper's Figure 1(c): strata are logged right before the
        second reference of each unseparated dependence."""
        trace = trace_from([
            (1, 2, True),    # 2:Wc
            (0, 0, True),    # 1:Wa
            (1, 0, False),   # 2:Ra  -> S0 logged before this
            (2, 0, True),    # 3:Wa ... (already separated from 1:Wa? no)
        ])
        recorder = StrataRecorder(3)
        recorder.process(trace)
        recorder.finish()
        assert len(recorder.strata) >= 2

    def test_no_sharing_single_stratum(self):
        trace = trace_from([(p, p, True) for p in range(4)] * 5)
        recorder = StrataRecorder(4)
        recorder.process(trace)
        recorder.finish()
        assert len(recorder.strata) == 1

    def test_separated_dependence_needs_no_new_stratum(self):
        trace = trace_from([
            (0, 1, True),
            (1, 1, False),   # stratum break here
            (1, 1, False),   # source already separated: no new stratum
        ])
        recorder = StrataRecorder(2)
        recorder.process(trace)
        recorder.finish()
        assert len(recorder.strata) == 2

    def test_war_ignorable(self):
        trace = trace_from([(0, 1, False), (1, 1, True)])
        with_wars = StrataRecorder(2, log_wars=True)
        with_wars.process(trace)
        with_wars.finish()
        without = StrataRecorder(2, log_wars=False)
        without.process(trace)
        without.finish()
        assert len(with_wars.strata) > len(without.strata)

    def test_counters_sum_to_operations(self):
        tuples = [(i % 3, (i * 5) % 4, i % 2 == 0) for i in range(60)]
        recorder = StrataRecorder(3)
        recorder.process(trace_from(tuples))
        recorder.finish()
        assert sum(sum(s) for s in recorder.strata) == 60


class TestSizeAccounting:
    def test_stratum_width_is_vector(self):
        recorder = StrataRecorder(4)
        recorder.process(trace_from([(0, 1, True), (1, 1, False)]))
        recorder.finish()
        assert recorder.size_bits == len(recorder.strata) * 4 * 16

    def test_compressed_not_larger(self):
        tuples = [(i % 4, i % 3, True) for i in range(80)]
        recorder = StrataRecorder(4)
        recorder.process(trace_from(tuples))
        recorder.finish()
        assert recorder.compressed_size_bits() <= recorder.size_bits


_access = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=5),
    st.booleans(),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(_access, max_size=120))
def test_separation_invariant_property(tuples):
    """Every cross-processor dependence ends up with its two references
    in different stratum regions -- Strata's correctness condition."""
    trace = trace_from(tuples)
    recorder = StrataRecorder(4)
    recorder.process(trace)
    recorder.finish()
    assert recorder.verify_separation(trace)


@settings(max_examples=40, deadline=None)
@given(st.lists(_access, max_size=100))
def test_separation_invariant_without_wars(tuples):
    trace = trace_from(tuples)
    recorder = StrataRecorder(4, log_wars=False)
    recorder.process(trace)
    recorder.finish()
    assert recorder.verify_separation(trace)
