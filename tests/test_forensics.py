"""Tests for replay-divergence forensics (repro.telemetry.forensics)."""

import dataclasses

from conftest import counter_program, small_config
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.errors import ReplayDivergenceError
from repro.telemetry import DivergenceForensics, diagnose_replay


def _record(mode=ExecutionMode.ORDER_ONLY):
    system = DeLoreanSystem(mode=mode, machine_config=small_config())
    return system.record(counter_program(threads=4, increments=15))


class TestStructuredError:
    def test_fields_default_to_none(self):
        error = ReplayDivergenceError("boom")
        assert str(error) == "boom"
        assert error.proc_id is None
        assert error.chunk_index is None
        assert error.expected is None
        assert error.actual is None
        assert error.context is None

    def test_fields_attach_without_changing_the_message(self):
        error = ReplayDivergenceError("boom", proc_id=2, chunk_index=7,
                                      expected=1, actual=2)
        assert str(error) == "boom"
        assert (error.proc_id, error.chunk_index) == (2, 7)
        assert (error.expected, error.actual) == (1, 2)


class TestCleanReplay:
    def test_no_divergence(self):
        report = diagnose_replay(_record())
        assert isinstance(report, DivergenceForensics)
        assert not report.diverged
        assert "no divergence" in report.summary()
        assert report.render() == report.summary()


class TestCorruptedLogs:
    def test_pi_swap_is_localized(self):
        # Swap the first adjacent pair of differing PI entries: the
        # replay commits in the wrong order and the report must name
        # the first wrong commit.
        recording = _record()
        entries = recording.pi_log.entries
        swap = next(i for i in range(len(entries) - 1)
                    if entries[i] != entries[i + 1])
        entries[swap], entries[swap + 1] = \
            entries[swap + 1], entries[swap]
        report = diagnose_replay(recording)
        assert report.diverged
        assert report.proc_id is not None
        assert report.chunk_index is not None
        assert report.chunk_index <= swap + 1
        rendered = report.render()
        assert "DIVERGED" in rendered
        assert "expected:" in rendered and "actual:" in rendered
        assert any(marker for _, _, marker
                   in report.interleaving_window)

    def test_cs_corruption_names_proc_and_chunk(self):
        # In OrderAndSize every chunk size is logged, so halving one
        # entry reliably truncates the replayed chunk early.
        recording = _record(mode=ExecutionMode.ORDER_AND_SIZE)
        log = recording.cs_logs[0]
        index, entry = next(
            (i, e) for i, e in enumerate(log.entries) if e.size > 1)
        log.entries[index] = dataclasses.replace(
            entry, size=max(1, entry.size // 2))
        report = diagnose_replay(recording)
        assert report.diverged
        assert report.proc_id == 0
        assert report.chunk_index is not None
        assert report.expected is not None
        rendered = report.render()
        assert "processor 0" in report.summary()
        assert "DIVERGED" in rendered

    def test_render_mentions_last_commits(self):
        recording = _record()
        entries = recording.pi_log.entries
        swap = next(i for i in range(len(entries) - 1)
                    if entries[i] != entries[i + 1])
        entries[swap], entries[swap + 1] = \
            entries[swap + 1], entries[swap]
        rendered = diagnose_replay(recording).render(last_n=4)
        assert "replayed commits per" in rendered


class TestScalarExpectations:
    def test_render_handles_non_fingerprint_expected(self):
        # Arbiter raise sites attach scalar expectations (a proc id);
        # the report must render them rather than crash.
        report = DivergenceForensics(
            diverged=True, reason="grant mismatch", proc_id=3,
            chunk_index=5, expected=1, actual=3)
        rendered = report.render()
        assert "expected: 1" in rendered
        assert "actual:   3" in rendered
        assert "processor 3" in report.summary()
