"""Tests for system checkpointing."""

import pytest

from conftest import counter_program, small_config

from repro.core.modes import ExecutionMode, preferred_config
from repro.errors import ConfigurationError
from repro.machine.checkpoint import CheckpointStore, SystemCheckpoint
from repro.machine.system import ChunkMachine


def fresh_machine(program):
    config = small_config()
    mode = preferred_config(ExecutionMode.ORDER_ONLY).with_chunk_size(
        config.standard_chunk_size)
    return ChunkMachine(program, config, mode)


class TestInitialCheckpoint:
    def test_initial_matches_program(self):
        program = counter_program(2, 5)
        checkpoint = SystemCheckpoint.initial(program)
        assert checkpoint.global_commit_count == 0
        assert checkpoint.memory_image == program.initial_memory
        assert set(checkpoint.thread_states) == {0, 1}

    def test_empty_thread_marked_finished(self):
        from repro.machine.program import Program, Op, OpKind
        program = Program(threads=[[Op(OpKind.COMPUTE, count=1)], []])
        checkpoint = SystemCheckpoint.initial(program)
        assert not checkpoint.thread_states[0].finished
        assert checkpoint.thread_states[1].finished


class TestCaptureRestore:
    def test_capture_after_run(self):
        program = counter_program(2, 8)
        machine = fresh_machine(program)
        machine.run()
        checkpoint = SystemCheckpoint.capture(machine, label="end")
        assert checkpoint.global_commit_count > 0
        assert checkpoint.matches_state(
            machine.memory.snapshot(),
            {p.proc_id: p.spec_state for p in machine.processors})

    def test_capture_rejects_speculative_state(self):
        program = counter_program(2, 8)
        machine = fresh_machine(program)
        machine.processors[0].build_chunk(
            0.0, 16, memory=machine.memory)
        with pytest.raises(ConfigurationError):
            SystemCheckpoint.capture(machine)

    def test_restore_into_fresh_machine(self):
        program = counter_program(2, 8)
        first = fresh_machine(program)
        first.run()
        checkpoint = SystemCheckpoint.capture(first)
        second = fresh_machine(program)
        checkpoint.restore_into(second)
        assert second.memory.snapshot() == checkpoint.memory_image
        for proc_id, state in checkpoint.thread_states.items():
            assert (second.processors[proc_id].spec_state
                    .architectural_key() == state.architectural_key())
            assert (second.processors[proc_id].next_seq
                    == checkpoint.committed_counts[proc_id] + 1)

    def test_restore_rejects_used_machine(self):
        program = counter_program(2, 8)
        first = fresh_machine(program)
        first.run()
        checkpoint = SystemCheckpoint.capture(first)
        with pytest.raises(ConfigurationError):
            checkpoint.restore_into(first)

    def test_matches_state_detects_differences(self):
        program = counter_program(2, 5)
        checkpoint = SystemCheckpoint.initial(program)
        wrong = dict(program.initial_memory)
        wrong[999999] = 1
        assert not checkpoint.matches_state(
            wrong, checkpoint.thread_states)


class TestMidExecutionCaptureDeterminism:
    """The paper's interval theorem, exercised through the debugger's
    capture path: a committed-state checkpoint taken at GCC = n > 0
    mid-execution seeds a fresh replay whose fingerprints equal the
    from-zero replay's suffix, in every mode."""

    MODES = [ExecutionMode.ORDER_AND_SIZE, ExecutionMode.ORDER_ONLY,
             ExecutionMode.PICOLOG]

    def _record(self, mode):
        from repro.core.delorean import DeLoreanSystem
        from repro.workloads import commercial_program
        system = DeLoreanSystem(mode=mode)
        # sweb2005 carries DMA bursts and interrupts, so the captured
        # io/dma cursors actually matter.
        return system.record(
            commercial_program("sweb2005", scale=0.4, seed=3))

    @pytest.mark.parametrize("mode", MODES)
    def test_capture_mid_replay_restores_deterministically(self, mode):
        from repro.debugger import ReplayController
        from repro.machine.system import build_replay_machine

        recording = self._record(mode)
        total = len(recording.fingerprints)
        target = total // 2
        assert target > 0
        controller = ReplayController(recording, checkpoint_every=0)
        controller.step(target)
        snapshot = SystemCheckpoint.capture_committed(
            controller.machine, label="mid")
        assert snapshot.global_commit_count == target

        machine = build_replay_machine(
            recording, use_strata=False,
            start_checkpoint=snapshot.to_interval())
        result = machine.run()
        assert result.fingerprints == recording.fingerprints[target:]

    @pytest.mark.parametrize("mode", MODES)
    def test_quiescent_capture_at_end_round_trips(self, mode):
        """capture() (the strict quiescent form) still works and now
        carries the log cursors."""
        from repro.core.delorean import DeLoreanSystem
        from repro.machine.system import build_replay_machine

        recording = self._record(mode)
        machine = build_replay_machine(recording, use_strata=False)
        machine.run()
        checkpoint = SystemCheckpoint.capture(machine, label="end")
        assert checkpoint.global_commit_count \
            == len(recording.fingerprints)
        assert checkpoint.dma_consumed \
            == len(recording.dma_log.entries)
        interval = checkpoint.to_interval()
        back = SystemCheckpoint.from_interval(interval)
        assert back.global_commit_count \
            == checkpoint.global_commit_count
        assert back.memory_image == checkpoint.memory_image
        assert back.io_consumed == checkpoint.io_consumed

    def test_capture_committed_tolerates_speculation(self):
        program = counter_program(2, 8)
        machine = fresh_machine(program)
        machine.processors[0].build_chunk(
            0.0, 16, memory=machine.memory)
        with pytest.raises(ConfigurationError):
            SystemCheckpoint.capture(machine)
        snapshot = SystemCheckpoint.capture_committed(machine)
        assert snapshot.global_commit_count == 0
        # The speculative chunk's state is not in the snapshot.
        assert snapshot.thread_states[0].op_index == 0


class TestCheckpointStore:
    def _checkpoint(self, gcc):
        return SystemCheckpoint(
            memory_image={}, thread_states={}, committed_counts={},
            global_commit_count=gcc, label=f"gcc{gcc}")

    def test_capacity_ring(self):
        store = CheckpointStore(capacity=2)
        for gcc in (1, 2, 3):
            store.add(self._checkpoint(gcc))
        assert len(store.checkpoints) == 2
        assert store.latest().global_commit_count == 3

    def test_before_commit_selects_newest_eligible(self):
        store = CheckpointStore()
        for gcc in (0, 10, 20):
            store.add(self._checkpoint(gcc))
        assert store.before_commit(15).global_commit_count == 10
        assert store.before_commit(99).global_commit_count == 20

    def test_before_commit_rejects_too_early(self):
        store = CheckpointStore()
        store.add(self._checkpoint(10))
        with pytest.raises(ConfigurationError):
            store.before_commit(5)

    def test_latest_on_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore().latest()
