"""End-to-end tests for the HTTP front end.

Most tests run a real :class:`ServeServer` on an ephemeral port inside
a background thread, with an injected instant ``job_fn`` so they stay
fast.  The crash test at the bottom is the full acceptance scenario:
a real ``python -m repro serve`` subprocess, SIGKILLed mid-campaign,
restarted on the same data directory -- every accepted job must reach
a terminal state exactly once with its artifact retrievable.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.runner import ResultCache
from repro.serve.client import ServeClient
from repro.serve.http import ServeServer
from repro.serve.service import ReproService
from repro.telemetry.metrics import MetricsRegistry

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def fake_job(spec, cache=None):
    return {"schema": 1, "spec_hash": spec.content_hash(),
            "kind": getattr(spec, "kind", "?"), "payload": "ok"}


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("cache",
                      ResultCache(tmp_path / "cache", salt="http-t"))
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("job_fn", fake_job)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ReproService(tmp_path / "data", **kwargs)


@contextmanager
def running_server(service):
    """A live server on an ephemeral port, torn down on exit."""
    box: dict = {}
    ready = threading.Event()

    def run():
        async def main():
            stop = asyncio.Event()
            server = ServeServer(service, "127.0.0.1", 0)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = stop
            ready.set()
            await stop.wait()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    try:
        yield box["server"]
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(15)


class TestEndpoints:
    def test_submit_stream_fetch_roundtrip(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            assert client.health()["ok"]

            job = client.submit("record", {"seed": 1, "scale": 0.05})
            assert job["state"] in ("queued", "running", "done")
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == "done"

            # SSE: full per-job history, strictly ordered.
            events = list(client.stream(job["id"]))
            states = [data["job"]["state"] for _, data in events]
            assert states == ["queued", "running", "done"]
            ids = [event_id for event_id, _ in events]
            assert ids == sorted(ids) and len(set(ids)) == len(ids)

            # SSE resume: ?after=N replays only what follows N.
            resumed = list(client.stream(job["id"], after=ids[0]))
            assert [event_id for event_id, _ in resumed] == ids[1:]

            # SSE resume via the Last-Event-ID header.
            conn = http.client.HTTPConnection("127.0.0.1",
                                              server.port, timeout=10)
            conn.request("GET", f"/v1/jobs/{job['id']}/events",
                         headers={"Last-Event-ID": str(ids[1])})
            response = conn.getresponse()
            assert response.getheader("Content-Type") == \
                "text/event-stream"
            header_ids = [int(line[3:])
                          for line in response.read().decode()
                          .splitlines() if line.startswith("id:")]
            conn.close()
            assert header_ids == ids[2:]

            # Artifact fetch by content hash.
            artifact = client.artifact(final["artifact_hash"])
            assert artifact["spec_hash"] == final["artifact_hash"]

            # Identical resubmission: answered from cache.
            dup = client.submit("record", {"seed": 1, "scale": 0.05})
            assert dup["state"] == "done" and dup["from_cache"]
            assert dup["artifact_hash"] == final["artifact_hash"]
            stats = client.stats()
            assert stats["metrics"]["serve_cache_hits"] == 1
            assert stats["queue"]["done"] == 2

            # Listing filters.
            assert len(client.jobs(state="done")) == 2
            assert client.jobs(tenant="nobody") == []

    def test_bad_submissions_get_400(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError) as err:
                client.submit("record", {"warp": 9})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.submit("dance", {})
            assert err.value.status == 400

    def test_unknown_resources_get_404(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            for call in (lambda: client.job("j999999-nope"),
                         lambda: client.artifact("f" * 64)):
                with pytest.raises(ServeError) as err:
                    call()
                assert err.value.status == 404

    def test_flood_sheds_with_429_and_retry_after(self, tmp_path):
        gate = threading.Event()

        def gated_job(spec, cache=None):
            gate.wait(15)
            return fake_job(spec)

        service = make_service(tmp_path, capacity=2,
                               job_fn=gated_job)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            first = client.submit("record", {"seed": 1})
            second = client.submit("record", {"seed": 2})
            with pytest.raises(ServeError) as err:
                client.submit("record", {"seed": 3})
            assert err.value.status == 429
            assert err.value.retry_after >= 1.0
            assert "queue full" in str(err.value)
            gate.set()
            assert client.wait(first["id"], timeout=30)["state"] == \
                "done"
            assert client.wait(second["id"], timeout=30)["state"] == \
                "done"
            stats = client.stats()
            assert stats["metrics"]["serve_rejected"] == 1


# -- the acceptance scenario: SIGKILL a real server mid-campaign ------


def _serve_env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_CACHE_SALT"] = "kill-test"
    return env


def _start_serve(tmp_path, env):
    ready = tmp_path / "ready"
    if ready.exists():
        ready.unlink()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--jobs", "1",
         "--data-dir", str(tmp_path / "data"),
         "--ready-file", str(ready)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, port = ready.read_text().split()
            return proc, int(port)
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError("serve subprocess never became ready")


class TestCrashRecoveryOverHTTP:
    def test_sigkill_mid_campaign_loses_nothing(self, tmp_path):
        env = _serve_env(tmp_path)
        proc, port = _start_serve(tmp_path, env)
        try:
            client = ServeClient(port=port, timeout=30)
            submitted = [
                client.submit("record", {"seed": seed, "scale": 0.08,
                                         "app": "fft"})["id"]
                for seed in (201, 202, 203)]

            # Wait until the campaign is genuinely mid-flight.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                states = {j["id"]: j["state"] for j in client.jobs()}
                if any(s in ("running", "done")
                       for s in states.values()):
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Restart on the same data directory: recovery requeues the
        # killed job and the workers drain the survivors.
        proc, port = _start_serve(tmp_path, env)
        try:
            client = ServeClient(port=port, timeout=30)
            deadline = time.monotonic() + 240
            jobs = []
            while time.monotonic() < deadline:
                jobs = client.jobs()
                if len(jobs) == 3 and \
                        all(j["state"] in ("done", "failed")
                            for j in jobs):
                    break
                time.sleep(0.5)

            # Every accepted job reached a terminal state exactly
            # once, none was lost, none was duplicated.
            assert sorted(j["id"] for j in jobs) == sorted(submitted)
            assert all(j["state"] == "done" for j in jobs), jobs
            for job in jobs:
                artifact = client.artifact(job["artifact_hash"])
                assert artifact["spec_hash"] == job["artifact_hash"]

            # The SSE log spans the restart: a fresh stream replays
            # pre-crash transitions seeded from the journal.
            events = list(client.stream(submitted[0]))
            states = [data["job"]["state"] for _, data in events]
            assert states[0] == "queued"
            assert states[-1] == "done"
            ids = [event_id for event_id, _ in events]
            assert ids == sorted(ids) and len(set(ids)) == len(ids)

            stats = client.stats()
            assert stats["journal"]["recovered_jobs"] == 3
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
