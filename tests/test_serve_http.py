"""End-to-end tests for the HTTP front end.

Most tests run a real :class:`ServeServer` on an ephemeral port inside
a background thread, with an injected instant ``job_fn`` so they stay
fast.  The crash test at the bottom is the full acceptance scenario:
a real ``python -m repro serve`` subprocess, SIGKILLed mid-campaign,
restarted on the same data directory -- every accepted job must reach
a terminal state exactly once with its artifact retrievable.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.runner import ResultCache
from repro.serve.client import ServeClient
from repro.serve.http import ServeServer
from repro.serve.service import ReproService
from repro.telemetry.metrics import MetricsRegistry

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def fake_job(spec, cache=None):
    return {"schema": 1, "spec_hash": spec.content_hash(),
            "kind": getattr(spec, "kind", "?"), "payload": "ok"}


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("cache",
                      ResultCache(tmp_path / "cache", salt="http-t"))
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("job_fn", fake_job)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ReproService(tmp_path / "data", **kwargs)


@contextmanager
def running_server(service):
    """A live server on an ephemeral port, torn down on exit."""
    box: dict = {}
    ready = threading.Event()

    def run():
        async def main():
            stop = asyncio.Event()
            server = ServeServer(service, "127.0.0.1", 0)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = stop
            ready.set()
            await stop.wait()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    try:
        yield box["server"]
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(15)


class TestEndpoints:
    def test_submit_stream_fetch_roundtrip(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            assert client.health()["ok"]

            job = client.submit("record", {"seed": 1, "scale": 0.05})
            assert job["state"] in ("queued", "running", "done")
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == "done"

            # SSE: full per-job history, strictly ordered.
            events = list(client.stream(job["id"]))
            states = [data["job"]["state"] for _, data in events]
            assert states == ["queued", "running", "done"]
            ids = [event_id for event_id, _ in events]
            assert ids == sorted(ids) and len(set(ids)) == len(ids)

            # SSE resume: ?after=N replays only what follows N.
            resumed = list(client.stream(job["id"], after=ids[0]))
            assert [event_id for event_id, _ in resumed] == ids[1:]

            # SSE resume via the Last-Event-ID header.
            conn = http.client.HTTPConnection("127.0.0.1",
                                              server.port, timeout=10)
            conn.request("GET", f"/v1/jobs/{job['id']}/events",
                         headers={"Last-Event-ID": str(ids[1])})
            response = conn.getresponse()
            assert response.getheader("Content-Type") == \
                "text/event-stream"
            header_ids = [int(line[3:])
                          for line in response.read().decode()
                          .splitlines() if line.startswith("id:")]
            conn.close()
            assert header_ids == ids[2:]

            # Artifact fetch by content hash.
            artifact = client.artifact(final["artifact_hash"])
            assert artifact["spec_hash"] == final["artifact_hash"]

            # Identical resubmission: answered from cache.
            dup = client.submit("record", {"seed": 1, "scale": 0.05})
            assert dup["state"] == "done" and dup["from_cache"]
            assert dup["artifact_hash"] == final["artifact_hash"]
            stats = client.stats()
            assert stats["metrics"]["serve_cache_hits"] == 1
            assert stats["queue"]["done"] == 2

            # Listing filters.
            assert len(client.jobs(state="done")) == 2
            assert client.jobs(tenant="nobody") == []

    def test_bad_submissions_get_400(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError) as err:
                client.submit("record", {"warp": 9})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.submit("dance", {})
            assert err.value.status == 400

    def test_unknown_resources_get_404(self, tmp_path):
        service = make_service(tmp_path)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            for call in (lambda: client.job("j999999-nope"),
                         lambda: client.artifact("f" * 64)):
                with pytest.raises(ServeError) as err:
                    call()
                assert err.value.status == 404

    def test_flood_sheds_with_429_and_retry_after(self, tmp_path):
        gate = threading.Event()

        def gated_job(spec, cache=None):
            gate.wait(15)
            return fake_job(spec)

        service = make_service(tmp_path, capacity=2,
                               job_fn=gated_job)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            first = client.submit("record", {"seed": 1})
            second = client.submit("record", {"seed": 2})
            with pytest.raises(ServeError) as err:
                client.submit("record", {"seed": 3})
            assert err.value.status == 429
            assert err.value.retry_after >= 1.0
            assert "queue full" in str(err.value)
            gate.set()
            assert client.wait(first["id"], timeout=30)["state"] == \
                "done"
            assert client.wait(second["id"], timeout=30)["state"] == \
                "done"
            stats = client.stats()
            assert stats["metrics"]["serve_rejected"] == 1


class TestAuthOverHTTP:
    def test_writes_need_the_token_reads_stay_open(self, tmp_path):
        service = make_service(tmp_path, executor="remote",
                               auth_token="sekrit")
        with running_server(service) as server:
            anon = ServeClient(port=server.port)
            assert anon.health()["ok"]  # reads are open
            assert anon.jobs() == []

            for call in (lambda: anon.submit("record", {"seed": 1}),
                         lambda: anon.claim("w1"),
                         lambda: anon.heartbeat("w1", "j", "l"),
                         lambda: anon.complete("w1", "j", "l", {})):
                with pytest.raises(ServeError) as err:
                    call()
                assert err.value.status == 401
                # No detail leaks: not why, not what would match.
                assert str(err.value) == "unauthorized"

            wrong = ServeClient(port=server.port, token="skerit")
            with pytest.raises(ServeError) as err:
                wrong.submit("record", {"seed": 1})
            assert err.value.status == 401

            good = ServeClient(port=server.port, token="sekrit")
            job = good.submit("record", {"seed": 1, "scale": 0.05})
            assert good.wait(job["id"], timeout=30)["state"] == "done"


class TestFleetWireProtocol:
    def test_claim_heartbeat_complete_over_http(self, tmp_path):
        import hashlib

        from repro.runner.cache import encode_artifact
        from repro.serve.kinds import build_job_spec

        service = make_service(tmp_path, executor="remote")
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            # First contact marks the fleet live (and gates the local
            # fallback) before anything is queued.
            assert client.claim("w1")["job"] is None
            census = client.workers()
            assert census["remote"] and not census["degraded"]
            assert census["workers"] == ["w1"]

            submitted = client.submit(
                "record", {"seed": 7, "scale": 0.05})
            reply = client.claim("w1", lease_ttl=30.0)
            job, lease = reply["job"], reply["lease"]
            assert job["id"] == submitted["id"]
            assert reply["heartbeat_interval"] == \
                pytest.approx(10.0)

            renewed = client.heartbeat("w1", job["id"],
                                       lease["lease_id"])
            assert renewed["ok"]
            with pytest.raises(ServeError) as err:
                client.heartbeat("w1", job["id"], "forged")
            assert err.value.status == 409
            assert "lease lost" in str(err.value)

            spec = build_job_spec(job["kind"], job["params"])
            artifact = fake_job(spec)
            digest = hashlib.sha256(
                encode_artifact(artifact)).hexdigest()
            result = client.complete(
                "w1", job["id"], lease["lease_id"],
                {"ok": True, "artifact": artifact,
                 "wall_time": 0.01}, digest)
            assert result["status"] == "ok"
            final = client.job(job["id"])
            assert final["state"] == "done"
            assert client.artifact(final["artifact_hash"]) == artifact

    def test_worker_routes_409_outside_fleet_mode(self, tmp_path):
        service = make_service(tmp_path)  # inline: no fleet
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError) as err:
                client.claim("w1")
            assert err.value.status == 409
            assert "not running a remote worker fleet" in \
                str(err.value)


class TestCompactionResumeOverHTTP:
    def test_sse_and_listing_survive_compaction(self, tmp_path):
        """A cursor older than the compaction horizon gets the full
        retained snapshot (no silent gap); listings are complete."""
        submitted = []
        service = make_service(tmp_path, segment_bytes=4096,
                               compact_after=1)
        with running_server(service) as server:
            client = ServeClient(port=server.port)
            for seed in range(20):
                job = client.submit("record",
                                    {"seed": seed, "scale": 0.05})
                submitted.append(job["id"])
            for job_id in submitted:
                client.wait(job_id, timeout=60)
        service.close()
        assert service.queue.compactions >= 1

        again = make_service(tmp_path, segment_bytes=4096,
                             compact_after=1)
        with running_server(again) as server:
            client = ServeClient(port=server.port)
            stats = client.stats()
            horizon = stats["journal"]["compacted_through"]
            assert horizon > 0

            # The listing shows every job despite the dissolved
            # per-transition history.
            jobs = client.jobs()
            assert sorted(j["id"] for j in jobs) == sorted(submitted)
            assert all(j["state"] == "done" for j in jobs)

            # Resume from inside the dissolved range: the feed falls
            # back to the full snapshot -- events at or below the
            # requested cursor ARE re-delivered.
            full = _drain_events(server.port, after=0)
            stale_cursor = _drain_events(server.port,
                                         after=horizon - 1)
            assert stale_cursor == full
            assert any(event_id <= horizon - 1
                       for event_id, _ in stale_cursor)

            # A cursor at the tip resumes normally: nothing new.
            tip = max(event_id for event_id, _ in full)
            assert _drain_events(server.port, after=tip) == []
        again.close()


def _drain_events(port, after):
    """Read the global SSE feed until it goes quiet; return events."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=1.0)
    events = []
    try:
        conn.request("GET", f"/v1/events?after={after}")
        response = conn.getresponse()
        event_id = 0
        for raw in response:
            line = raw.decode().rstrip("\r\n")
            if line.startswith("id:"):
                event_id = int(line[3:].strip())
            elif line.startswith("data:"):
                events.append((event_id,
                               json.loads(line[5:].strip())))
    except (TimeoutError, OSError):
        pass  # the feed never ends; quiet = drained
    finally:
        conn.close()
    return events


# -- the acceptance scenario: SIGKILL a real server mid-campaign ------


def _serve_env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_CACHE_SALT"] = "kill-test"
    return env


def _start_serve(tmp_path, env):
    ready = tmp_path / "ready"
    if ready.exists():
        ready.unlink()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--jobs", "1",
         "--data-dir", str(tmp_path / "data"),
         "--ready-file", str(ready)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, port = ready.read_text().split()
            return proc, int(port)
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError("serve subprocess never became ready")


class TestCrashRecoveryOverHTTP:
    def test_sigkill_mid_campaign_loses_nothing(self, tmp_path):
        env = _serve_env(tmp_path)
        proc, port = _start_serve(tmp_path, env)
        try:
            client = ServeClient(port=port, timeout=30)
            submitted = [
                client.submit("record", {"seed": seed, "scale": 0.08,
                                         "app": "fft"})["id"]
                for seed in (201, 202, 203)]

            # Wait until the campaign is genuinely mid-flight.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                states = {j["id"]: j["state"] for j in client.jobs()}
                if any(s in ("running", "done")
                       for s in states.values()):
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Restart on the same data directory: recovery requeues the
        # killed job and the workers drain the survivors.
        proc, port = _start_serve(tmp_path, env)
        try:
            client = ServeClient(port=port, timeout=30)
            deadline = time.monotonic() + 240
            jobs = []
            while time.monotonic() < deadline:
                jobs = client.jobs()
                if len(jobs) == 3 and \
                        all(j["state"] in ("done", "failed")
                            for j in jobs):
                    break
                time.sleep(0.5)

            # Every accepted job reached a terminal state exactly
            # once, none was lost, none was duplicated.
            assert sorted(j["id"] for j in jobs) == sorted(submitted)
            assert all(j["state"] == "done" for j in jobs), jobs
            for job in jobs:
                artifact = client.artifact(job["artifact_hash"])
                assert artifact["spec_hash"] == job["artifact_hash"]

            # The SSE log spans the restart: a fresh stream replays
            # pre-crash transitions seeded from the journal.
            events = list(client.stream(submitted[0]))
            states = [data["job"]["state"] for _, data in events]
            assert states[0] == "queued"
            assert states[-1] == "done"
            ids = [event_id for event_id, _ in events]
            assert ids == sorted(ids) and len(set(ids)) == len(ids)

            stats = client.stats()
            assert stats["journal"]["recovered_jobs"] == 3
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
