"""Tests for the recording inspection helpers."""

import pytest

from conftest import counter_program, small_config

from repro.analysis.inspect import (
    commit_timeline,
    describe_recording,
    interleaving_strip,
    per_processor_summary,
)
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.workloads.program_builder import shared_address


@pytest.fixture(scope="module")
def recording():
    config = small_config()
    system = DeLoreanSystem(machine_config=config,
                            chunk_size=config.standard_chunk_size)
    program = counter_program(3, 20)
    program.interrupts.append(InterruptEvent(
        time=400.0, processor=1, vector=4, handler_ops=20))
    program.dma_transfers.append(DmaTransfer(
        time=250.0, writes={shared_address(900): 1}))
    return system.record(program, checkpoint_every=10)


class TestDescribe:
    def test_headline_fields(self, recording):
        text = describe_recording(recording)
        assert "order_only" in text
        assert "committed:" in text
        assert "memory-ordering log" in text
        assert "bits/proc/kilo-instruction" in text

    def test_input_logs_reported(self, recording):
        text = describe_recording(recording)
        assert "1 interrupts" in text
        assert "1 DMA bursts" in text

    def test_checkpoints_reported(self, recording):
        assert "interval checkpoints at commits" in \
            describe_recording(recording)

    def test_stratified_size_reported(self, recording):
        assert "stratified PI log" in describe_recording(recording)


class TestTimeline:
    def test_rows_match_commits(self, recording):
        text = commit_timeline(recording, limit=10)
        # Header + separator + up to 10 rows (+ 'more' line).
        body = [line for line in text.splitlines()
                if line and line[0].isdigit()]
        assert len(body) == 10

    def test_truncation_note(self, recording):
        total = len(recording.fingerprints)
        text = commit_timeline(recording, limit=5)
        assert f"{total - 5} more commits" in text

    def test_dma_row_rendered(self, recording):
        text = commit_timeline(recording, limit=len(
            recording.fingerprints))
        assert "DMA" in text

    def test_handler_row_rendered(self, recording):
        text = commit_timeline(recording, limit=len(
            recording.fingerprints))
        assert "handler" in text


class TestStripAndSummary:
    def test_strip_symbol_count(self, recording):
        text = interleaving_strip(recording, width=16)
        symbols = "".join(
            line.split()[-1] for line in text.splitlines()[1:])
        assert len(symbols) == len(recording.fingerprints)

    def test_strip_marks_dma(self, recording):
        assert "*" in interleaving_strip(recording)

    def test_summary_covers_active_processors(self, recording):
        text = per_processor_summary(recording)
        for proc in (0, 1, 2):
            assert f"cpu{proc}" in text
        assert "DMA" in text

    def test_summary_handler_column(self, recording):
        text = per_processor_summary(recording)
        lines = [l for l in text.splitlines() if l.startswith("cpu1")]
        assert lines and int(lines[0].split()[-1]) >= 1


class TestOtherModes:
    def test_picolog_recording_describes(self):
        config = small_config()
        system = DeLoreanSystem(mode=ExecutionMode.PICOLOG,
                                machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(counter_program(2, 10))
        text = describe_recording(recording)
        assert "picolog" in text
        assert "PI 0 bits (0 entries)" in text
