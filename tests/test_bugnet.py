"""Tests for the BugNet-style load-value recorder."""

from conftest import counter_program, small_config

from repro.baselines import (
    BugNetRecorder,
    ConsistencyModel,
    InterleavedExecutor,
    ValueAccess,
)


def trace_of(tuples):
    """(proc, address, value, is_write) tuples -> ValueAccess list."""
    return [ValueAccess(*t) for t in tuples]


class TestInference:
    def test_first_load_logged(self):
        recorder = BugNetRecorder(2)
        recorder.process(trace_of([(0, 10, 7, False)]))
        assert recorder.logged_values[0] == [7]

    def test_reload_after_own_access_inferred(self):
        recorder = BugNetRecorder(2)
        recorder.process(trace_of([
            (0, 10, 7, False),
            (0, 10, 7, False),
        ]))
        assert recorder.logged_count == 1
        assert recorder.inferred_loads == 1

    def test_load_after_own_store_inferred(self):
        recorder = BugNetRecorder(2)
        recorder.process(trace_of([
            (0, 10, 9, True),
            (0, 10, 9, False),
        ]))
        assert recorder.logged_count == 0

    def test_remote_write_forces_relog(self):
        recorder = BugNetRecorder(2)
        recorder.process(trace_of([
            (0, 10, 1, True),
            (0, 10, 1, False),   # inferred
            (1, 10, 2, True),    # remote write invalidates inference
            (0, 10, 2, False),   # must be logged
        ]))
        assert recorder.logged_values[0] == [2]

    def test_checkpoint_resets_inference(self):
        recorder = BugNetRecorder(1)
        recorder.process(trace_of([(0, 10, 5, False)]))
        recorder.checkpoint()
        recorder.process(trace_of([(0, 10, 5, False)]))
        assert recorder.logged_count == 2


class TestSizeAccounting:
    def test_size_is_64_bits_per_logged_load(self):
        recorder = BugNetRecorder(1)
        recorder.process(trace_of([(0, a, a, False)
                                   for a in range(5)]))
        assert recorder.size_bits == 5 * 64
        _, bits = recorder.encode()
        assert bits == 5 * 64

    def test_compressed_not_larger(self):
        recorder = BugNetRecorder(1)
        recorder.process(trace_of([(0, a % 3, 1, False)
                                   for a in range(60)]))
        assert recorder.compressed_size_bits() <= recorder.size_bits

    def test_metric_zero_on_empty(self):
        assert BugNetRecorder(2).bits_per_proc_per_kiloinst(0) == 0.0


class TestAgainstRealTraces:
    def test_consumes_interleaved_trace(self):
        result = InterleavedExecutor(
            counter_program(3, 15), small_config(),
            ConsistencyModel.SC).run()
        recorder = BugNetRecorder(3)
        recorder.process(result.trace)
        assert recorder.total_loads > 0
        assert recorder.logged_count <= recorder.total_loads

    def test_value_log_dwarfs_ordering_logs(self):
        """The structural point: BugNet's per-value logging costs far
        more than DeLorean's per-commit ordering log."""
        from repro.core.delorean import DeLoreanSystem
        from repro.workloads import splash2_program
        program = splash2_program("fft", scale=0.2, seed=2)
        sc = InterleavedExecutor(program).run()
        recorder = BugNetRecorder(8)
        recorder.process(sc.trace)
        bugnet_bits = recorder.bits_per_proc_per_kiloinst(
            sc.total_instructions, compressed=False)
        recording = DeLoreanSystem().record(
            splash2_program("fft", scale=0.2, seed=2))
        delorean_bits = recording.log_bits_per_proc_per_kiloinst(False)
        assert bugnet_bits > 10 * delorean_bits
