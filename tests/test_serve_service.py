"""Tests for the transport-independent service core.

Jobs here run through an injected ``job_fn`` on the inline backend,
so the tests exercise the queue/cache/admission/telemetry plumbing
without paying for real simulations.  The HTTP layer has its own
test module; real end-to-end jobs run there.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.guard.limits import Budgets
from repro.runner import ResultCache
from repro.serve.kinds import build_job_spec
from repro.serve.service import ReproService
from repro.telemetry.metrics import MetricsRegistry


def fake_job(spec, cache=None):
    """Instant deterministic 'simulation': artifact from the spec."""
    return {"schema": 1, "spec_hash": spec.content_hash(),
            "kind": getattr(spec, "kind", "?"), "payload": "ok"}


def failing_job(spec, cache=None):
    raise RuntimeError("synthetic job failure")


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("cache",
                      ResultCache(tmp_path / "cache", salt="serve-t"))
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("job_fn", fake_job)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ReproService(tmp_path / "data", **kwargs)


class TestSubmitAndRun:
    def test_submit_runs_to_done_with_artifact(self, tmp_path):
        service = make_service(tmp_path)
        job, decision = service.submit("record", {"seed": 1})
        assert decision.admitted and job.state == "queued"
        assert service.run_until_idle() == 1
        final = service.queue.get(job.id)
        assert final.state == "done"
        artifact = service.artifact(final.artifact_hash)
        assert artifact["spec_hash"] == final.artifact_hash
        service.close()

    def test_malformed_spec_raises_before_admission(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ConfigurationError, match="no parameter"):
            service.submit("record", {"warp": 9})
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            service.submit("dance", {})
        assert service.queue.counts().depth == 0
        service.close()

    def test_failure_reaches_failed_with_error(self, tmp_path):
        service = make_service(tmp_path, job_fn=failing_job)
        job, _ = service.submit("record", {"seed": 1})
        service.run_until_idle()
        final = service.queue.get(job.id)
        assert final.state == "failed"
        assert "RuntimeError" in final.error
        assert service.metrics.as_dict()["serve_failed"] == 1
        service.close()

    def test_identical_resubmission_served_from_cache(self, tmp_path):
        service = make_service(tmp_path)
        params = {"seed": 4, "scale": 0.05}
        first, _ = service.submit("record", params)
        service.run_until_idle()
        again, decision = service.submit("record", params)
        assert decision.admitted
        assert decision.reason == "served from cache"
        assert again.state == "done" and again.from_cache
        assert again.artifact_hash == \
            service.queue.get(first.id).artifact_hash
        metrics = service.metrics.as_dict()
        assert metrics["serve_cache_hits"] == 1
        assert metrics["serve_served"] == 2
        service.close()

    def test_budget_deadline_becomes_job_timeout(self, tmp_path):
        service = make_service(
            tmp_path, budgets=Budgets(deadline_seconds=7.5))
        assert service.admission.job_timeout == 7.5
        assert service.stats()["admission"]["job_timeout"] == 7.5
        service.close()


class TestSchedulingParams:
    """priority/deadline steer the queue without touching the spec."""

    def test_priority_and_deadline_reach_the_job(self, tmp_path):
        service = make_service(tmp_path)
        job, decision = service.submit(
            "record", {"seed": 1, "priority": 3, "deadline": 5.0})
        assert decision.admitted
        assert job.priority == 3
        assert job.deadline_at == pytest.approx(
            service._now() + 5.0, abs=1.0)
        plain, _ = service.submit("record", {"seed": 2})
        assert plain.priority == 0 and plain.deadline_at is None
        service.close()

    def test_bad_scheduling_values_rejected_before_admission(
            self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ConfigurationError, match="priority"):
            service.submit("record", {"seed": 1, "priority": "high"})
        with pytest.raises(ConfigurationError, match="deadline"):
            service.submit("record", {"seed": 1, "deadline": -1})
        assert service.queue.counts().depth == 0
        service.close()

    def test_scheduling_params_do_not_perturb_the_spec_hash(
            self, tmp_path):
        """Same work at two priorities is still one cached artifact."""
        service = make_service(tmp_path)
        first, _ = service.submit(
            "record", {"seed": 9, "priority": 7})
        service.run_until_idle()
        again, decision = service.submit(
            "record", {"seed": 9, "priority": -2, "deadline": 60.0})
        assert decision.reason == "served from cache"
        assert again.from_cache
        assert again.artifact_hash == \
            service.queue.get(first.id).artifact_hash
        service.close()


class TestBackpressure:
    def test_flood_sheds_and_bounds_depth(self, tmp_path):
        """1000-submission flood: every request either admitted or
        shed with a retry hint; depth never exceeds capacity; every
        admitted job reaches a terminal state exactly once."""
        capacity = 16
        service = make_service(tmp_path, capacity=capacity,
                               tenant_quota=capacity)
        admitted, shed = [], 0
        for index in range(1000):
            job, decision = service.submit("record", {"seed": index})
            if decision.admitted:
                admitted.append(job.id)
            else:
                shed += 1
                assert job is None
                assert decision.retry_after >= 1.0
                assert "queue full" in decision.reason
            assert service.queue.counts().depth <= capacity
            if index % 100 == 99:  # the flood outruns the drain
                for _ in range(4):
                    service.process_one()
        service.run_until_idle()
        assert len(admitted) + shed == 1000
        assert shed > 0 and len(admitted) >= capacity
        jobs = service.queue.jobs()
        assert len(jobs) == len(admitted)
        assert sorted(j.id for j in jobs) == sorted(admitted)
        assert all(j.state == "done" and j.attempts <= 1
                   for j in jobs)
        metrics = service.metrics.as_dict()
        assert metrics["serve_admitted"] == len(admitted)
        assert metrics["serve_rejected"] == shed
        service.close()

    def test_tenant_quota_isolates_a_flooder(self, tmp_path):
        service = make_service(tmp_path, capacity=100, tenant_quota=2)
        outcomes = [service.submit("record", {"seed": i},
                                   tenant="greedy")[1].admitted
                    for i in range(5)]
        assert outcomes == [True, True, False, False, False]
        job, decision = service.submit("record", {"seed": 99},
                                       tenant="polite")
        assert decision.admitted and job is not None
        service.close()

    def test_cached_resubmission_is_never_shed(self, tmp_path):
        service = make_service(tmp_path, capacity=1)
        params = {"seed": 1}
        service.submit("record", params)
        service.run_until_idle()
        # The queue is at capacity again with fresh work...
        service.submit("record", {"seed": 2})
        _, shed = service.submit("record", {"seed": 3})
        assert not shed.admitted
        # ...but the cache-answered duplicate still gets through.
        job, decision = service.submit("record", params)
        assert decision.admitted and job.from_cache
        service.close()


class TestCrashRecovery:
    def test_requeued_job_completes_exactly_once(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", salt="serve-t")
        service = make_service(tmp_path, cache=cache)
        job, _ = service.submit("record", {"seed": 1})
        claimed = service.queue.claim(time.time())
        assert claimed.id == job.id and claimed.state == "running"
        # Abandon the service mid-job: the SIGKILL stand-in.  No
        # finish is journaled, no artifact is stored.
        del service

        revived = make_service(tmp_path, cache=cache)
        assert revived.queue.requeued_jobs == 1
        assert revived.metrics.as_dict()["serve_requeued"] == 1
        recovered = revived.queue.get(job.id)
        assert recovered.state == "queued"
        assert recovered.requeues == 1
        assert revived.run_until_idle() == 1
        final = revived.queue.get(job.id)
        assert final.state == "done" and final.attempts == 2
        assert len(revived.queue.jobs()) == 1  # no duplicates
        assert revived.artifact(final.artifact_hash) is not None
        revived.close()

    def test_requeued_job_reuses_dead_servers_artifact(self, tmp_path):
        """If the artifact landed before the crash, the rerun is a
        cache hit, not a recomputation."""
        cache = ResultCache(tmp_path / "cache", salt="serve-t")
        service = make_service(tmp_path, cache=cache)
        job, _ = service.submit("record", {"seed": 1})
        service.queue.claim(time.time())
        spec = build_job_spec("record", {"seed": 1})
        cache.store(spec, fake_job(spec))  # crash after store
        del service

        calls = []

        def counting_job(spec, cache=None):
            calls.append(spec.content_hash())
            return fake_job(spec)

        revived = make_service(tmp_path, cache=cache,
                               job_fn=counting_job)
        revived.run_until_idle()
        final = revived.queue.get(job.id)
        assert final.state == "done" and final.from_cache
        assert calls == []  # never recomputed
        revived.close()


class TestConcurrency:
    def test_parallel_claims_never_double_run(self, tmp_path):
        """Racing workers each claim distinct jobs."""
        service = make_service(tmp_path, capacity=64)
        ran: list[str] = []
        run_lock = threading.Lock()
        original = service._run_job

        def tracking_run(job):
            with run_lock:
                ran.append(job.id)
            return original(job)

        service._run_job = tracking_run
        for index in range(24):
            service.submit("record", {"seed": index})
        threads = [threading.Thread(target=service.run_until_idle)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert sorted(ran) == sorted(set(ran))
        assert len(ran) == 24
        assert all(j.state == "done" for j in service.queue.jobs())
        service.close()


class TestStats:
    def test_stats_shape(self, tmp_path):
        service = make_service(tmp_path)
        service.submit("record", {"seed": 1})
        service.run_until_idle()
        stats = service.stats()
        assert stats["queue"]["done"] == 1
        assert stats["journal"]["lsn"] == 3  # submit, claim, finish
        assert stats["backend"]["name"] == "inline"
        assert stats["admission"]["capacity"] == 64
        assert stats["cache"]["stores"] == 1
        assert stats["metrics"]["serve_served"] == 1
        assert stats["metrics"]["serve_latency_seconds.count"] == 1
        service.close()
