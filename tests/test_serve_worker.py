"""Tests for the worker fleet: the ``repro worker`` loop, the
service's claim/heartbeat/complete protocol, and graceful
degradation.

The acceptance scenario at the bottom is the full fault drill, with
real subprocesses: a worker is SIGKILLed mid-job, its lease expires,
the job requeues, and a second worker completes it -- exactly once,
with an artifact byte-identical to a local run of the same spec.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ServeError
from repro.runner import ResultCache
from repro.runner.cache import encode_artifact
from repro.runner.executors import (
    InlineBackend,
    RemoteWorkerBackend,
)
from repro.runner.retry import RetryPolicy
from repro.serve.client import ServeClient
from repro.serve.kinds import build_job_spec
from repro.serve.service import ReproService
from repro.serve.worker import ServeWorker, default_worker_id
from repro.telemetry.metrics import MetricsRegistry

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def fake_job(spec, cache=None):
    return {"schema": 1, "spec_hash": spec.content_hash(),
            "kind": getattr(spec, "kind", "?"), "payload": "ok"}


def make_fleet_service(tmp_path, **kwargs):
    kwargs.setdefault("cache",
                      ResultCache(tmp_path / "cache", salt="fleet-t"))
    kwargs.setdefault("executor", "remote")
    kwargs.setdefault("job_fn", fake_job)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ReproService(tmp_path / "data", **kwargs)


RECORD_PARAMS = {"app": "fft", "scale": 0.05, "seed": 3}


class TestRemoteWorkerBackend:
    def test_degraded_until_first_contact(self):
        backend = RemoteWorkerBackend(fallback=InlineBackend(),
                                      window=10.0)
        assert backend.degraded(100.0)
        backend.touch_worker("w1", 100.0)
        assert not backend.degraded(105.0)
        assert backend.degraded(120.0)
        assert backend.workers(105.0) == ["w1"]
        assert backend.workers(120.0) == []

    def test_submit_delegates_to_fallback(self):
        backend = RemoteWorkerBackend(fallback=InlineBackend())
        assert backend.name == "remote"
        assert backend.submit(int, "42").result() == 42


class TestServiceFleetProtocol:
    def test_claim_heartbeat_complete_roundtrip(self, tmp_path):
        service = make_fleet_service(tmp_path)
        service.submit("record", dict(RECORD_PARAMS))
        job, lease = service.claim_remote("w1")
        assert job is not None and lease.worker == "w1"
        assert lease.job_id == job.id

        renewed = service.heartbeat_remote("w1", job.id,
                                           lease.lease_id)
        assert renewed is not None
        assert service.heartbeat_remote("w1", job.id,
                                        "forged") is None

        spec = build_job_spec(job.kind, job.params)
        artifact = fake_job(spec)
        digest = hashlib.sha256(
            encode_artifact(artifact)).hexdigest()
        result = service.complete_remote(
            "w1", job.id, lease.lease_id,
            {"ok": True, "artifact": artifact, "wall_time": 0.01},
            artifact_digest=digest)
        assert result["status"] == "ok"
        assert result["job"]["state"] == "done"
        assert service.artifact(spec.content_hash()) == artifact
        metrics = service.metrics.as_dict(prefix="serve_")
        assert metrics["serve_remote_completed"] == 1
        service.close()

    def test_duplicate_completion_is_acknowledged_once(
            self, tmp_path):
        service = make_fleet_service(tmp_path)
        service.submit("record", dict(RECORD_PARAMS))
        job, lease = service.claim_remote("w1")
        spec = build_job_spec(job.kind, job.params)
        artifact = fake_job(spec)
        digest = hashlib.sha256(
            encode_artifact(artifact)).hexdigest()
        envelope = {"ok": True, "artifact": artifact,
                    "wall_time": 0.01}
        first = service.complete_remote("w1", job.id, lease.lease_id,
                                        envelope, digest)
        second = service.complete_remote("w1", job.id, lease.lease_id,
                                         envelope, digest)
        assert first["status"] == "ok"
        assert second["status"] == "duplicate"
        # Exactly one terminal journal entry: the jobs list holds a
        # single done job with one artifact.
        done = service.queue.jobs(state="done")
        assert len(done) == 1
        service.close()

    def test_parity_failure_rejects_and_requeues(self, tmp_path):
        service = make_fleet_service(tmp_path)
        service.submit("record", dict(RECORD_PARAMS))
        job, lease = service.claim_remote("w1")
        spec = build_job_spec(job.kind, job.params)
        artifact = fake_job(spec)
        result = service.complete_remote(
            "w1", job.id, lease.lease_id,
            {"ok": True, "artifact": artifact, "wall_time": 0.01},
            artifact_digest="0" * 64)  # transport corruption
        assert result["status"] == "rejected"
        assert "digest mismatch" in result["reason"]
        taken_back = service.queue.get(job.id)
        assert taken_back.state == "queued"
        assert taken_back.lease_expiries == 1
        metrics = service.metrics.as_dict(prefix="serve_")
        assert metrics["serve_parity_failures"] == 1
        service.close()

    def test_wrong_spec_artifact_is_rejected(self, tmp_path):
        service = make_fleet_service(tmp_path)
        service.submit("record", dict(RECORD_PARAMS))
        job, lease = service.claim_remote("w1")
        alien = {"schema": 1, "spec_hash": "f" * 64, "payload": "?"}
        digest = hashlib.sha256(encode_artifact(alien)).hexdigest()
        result = service.complete_remote(
            "w1", job.id, lease.lease_id,
            {"ok": True, "artifact": alien, "wall_time": 0.01},
            artifact_digest=digest)
        assert result["status"] == "rejected"
        assert "names spec" in result["reason"]
        service.close()

    def test_failure_only_accepted_from_lease_holder(self, tmp_path):
        service = make_fleet_service(tmp_path)
        service.submit("record", dict(RECORD_PARAMS))
        job, lease = service.claim_remote("w1")
        stale = service.complete_remote(
            "w2", job.id, "not-the-lease",
            {"ok": False, "error_type": "Boom", "message": "x"})
        assert stale["status"] == "stale"
        assert service.queue.get(job.id).state == "running"
        real = service.complete_remote(
            "w1", job.id, lease.lease_id,
            {"ok": False, "error_type": "Boom", "message": "x",
             "wall_time": 0.5})
        assert real["status"] == "ok"
        failed = service.queue.get(job.id)
        assert failed.state == "failed"
        assert failed.failure["type"] == "remote"
        assert failed.failure["worker"] == "w1"
        service.close()

    def test_unknown_job_completion(self, tmp_path):
        service = make_fleet_service(tmp_path)
        result = service.complete_remote(
            "w1", "j-nope", "x", {"ok": True, "artifact": {}})
        assert result["status"] == "unknown"
        service.close()

    def test_worker_endpoints_need_fleet_mode(self, tmp_path):
        service = make_fleet_service(tmp_path, executor="inline")
        with pytest.raises(ConfigurationError,
                           match="not running a remote worker fleet"):
            service.claim_remote("w1")
        service.close()

    def test_sweep_poisons_repeat_offenders(self, tmp_path):
        service = make_fleet_service(tmp_path, lease_ttl=0.2,
                                     max_lease_expiries=2)
        service.submit("record", dict(RECORD_PARAMS))
        for _ in range(2):
            job, _lease = service.claim_remote("w1")
            assert job is not None
            requeued, poisoned = service.sweep_leases(
                now=service._now() + 10.0)
        assert poisoned and poisoned[0].failure["type"] == "poison"
        metrics = service.metrics.as_dict(prefix="serve_")
        assert metrics["serve_poisoned"] == 1
        assert metrics["serve_lease_expired"] == 2
        service.close()


class TestDegradationRoundTrip:
    def test_local_fallback_claims_only_while_degraded(
            self, tmp_path):
        service = make_fleet_service(tmp_path, degraded_after=0.2)
        service.submit("record", dict(RECORD_PARAMS))
        service.submit("record", {**RECORD_PARAMS, "seed": 4})

        # No worker has ever called in: degraded from the start, the
        # local fallback executes (and the edge is counted).
        assert service.fleet_degraded()
        first = service.process_one()
        assert first is not None and first.state == "done"

        # A worker heartbeats: healthy again, the local loop yields.
        service.fleet.touch_worker("w1", service._now())
        assert not service.fleet_degraded()
        assert service.process_one() is None

        # The worker goes silent past the window: degraded again
        # (second edge), the fallback resumes, and the queue drains.
        time.sleep(0.3)
        assert service.fleet_degraded()
        second = service.process_one()
        assert second is not None and second.state == "done"
        metrics = service.metrics.as_dict(prefix="serve_")
        assert metrics["serve_degraded"] == 2
        service.close()


class FakeFleetClient:
    """Scripted stand-in for ServeClient in worker unit tests."""

    def __init__(self, claims, heartbeat=None, complete=None):
        self.host, self.port = "fake", 0
        self.claims = list(claims)
        self.claim_calls = 0
        self.heartbeat_calls = 0
        self.completes = []
        self._heartbeat = heartbeat
        self._complete = complete

    def claim(self, worker, lease_ttl=None):
        self.claim_calls += 1
        step = (self.claims.pop(0) if self.claims
                else {"job": None})
        if isinstance(step, Exception):
            raise step
        return step

    def heartbeat(self, worker, job_id, lease_id):
        self.heartbeat_calls += 1
        if isinstance(self._heartbeat, Exception):
            raise self._heartbeat
        return self._heartbeat or {"ok": True, "lease": None}

    def complete(self, worker, job_id, lease_id, envelope,
                 artifact_digest=None):
        self.completes.append((job_id, lease_id, envelope,
                               artifact_digest))
        if isinstance(self._complete, Exception):
            raise self._complete
        return self._complete or {"status": "ok"}


def fast_policy():
    return RetryPolicy(max_attempts=3, backoff_base=0.01,
                       backoff_max=0.02, max_elapsed=5.0)


def claim_reply(lease_ttl=30.0):
    return {
        "job": {"id": "j000000-abc", "kind": "record",
                "params": dict(RECORD_PARAMS)},
        "lease": {"job_id": "j000000-abc", "worker": "w",
                  "lease_id": "lease-1", "ttl": lease_ttl,
                  "expires_at": 0.0},
        "heartbeat_interval": max(0.05, lease_ttl / 3.0),
        "timeout": None,
    }


def make_worker(fake, **kwargs):
    kwargs.setdefault("retry", fast_policy())
    kwargs.setdefault("idle_exit", 0.0)
    kwargs.setdefault("quiet", True)
    kwargs.setdefault("job_fn", fake_job)
    worker = ServeWorker("127.0.0.1", 1, worker_id="wtest", **kwargs)
    worker.client = fake
    return worker


class TestServeWorkerLoop:
    def test_claims_executes_and_uploads_digest(self):
        fake = FakeFleetClient([claim_reply()])
        worker = make_worker(fake)
        assert worker.run() == 1
        (job_id, lease_id, envelope, digest), = fake.completes
        assert job_id == "j000000-abc"
        assert lease_id == "lease-1"
        assert envelope["ok"]
        spec = build_job_spec("record", RECORD_PARAMS)
        assert envelope["artifact"] == fake_job(spec)
        assert digest == hashlib.sha256(
            encode_artifact(envelope["artifact"])).hexdigest()

    def test_transport_errors_retry_then_succeed(self):
        fake = FakeFleetClient([
            ServeError("unreachable"),          # status 0: transient
            ServeError("500", status=503),      # 5xx: transient
            {"job": None},
        ])
        worker = make_worker(fake)
        assert worker.run() == 0
        assert fake.claim_calls == 3

    def test_definitive_answers_never_retry(self):
        fake = FakeFleetClient(
            [ServeError("unauthorized", status=401)])
        worker = make_worker(fake)
        with pytest.raises(ServeError, match="unauthorized"):
            worker.run()
        assert fake.claim_calls == 1

    def test_lost_heartbeat_abandons_without_upload(self):
        def slow_job(spec, cache=None):
            for _ in range(1200):  # sliced so LeaseLost can land
                time.sleep(0.05)
            return fake_job(spec)

        fake = FakeFleetClient(
            [claim_reply(lease_ttl=0.3)],
            heartbeat=ServeError("lease lost", status=409))
        worker = make_worker(fake, job_fn=slow_job)
        assert worker.run() == 0
        assert worker.abandoned == 1
        assert fake.completes == []
        assert fake.heartbeat_calls == 1

    def test_refused_completion_moves_on(self):
        fake = FakeFleetClient(
            [claim_reply()],
            complete=ServeError("stale", status=409))
        worker = make_worker(fake)
        assert worker.run() == 0
        assert worker.abandoned == 1
        assert len(fake.completes) == 1

    def test_failure_envelope_counts_failed(self):
        def broken_job(spec, cache=None):
            raise RuntimeError("boom")

        fake = FakeFleetClient([claim_reply()])
        worker = make_worker(fake, job_fn=broken_job)
        assert worker.run() == 0
        assert worker.failed == 1
        (_id, _lease, envelope, digest), = fake.completes
        assert not envelope["ok"]
        assert envelope["error_type"] == "RuntimeError"
        assert digest is None

    def test_default_worker_id_shape(self):
        assert str(os.getpid()) in default_worker_id()


# -- the full fault drill, with real processes ------------------------


def _fleet_env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_CACHE_SALT"] = "fleet-drill"
    return env


def _start_fleet_serve(tmp_path, env):
    ready = tmp_path / "ready"
    if ready.exists():
        ready.unlink()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--jobs", "1",
         "--executor", "remote",
         "--lease-ttl", "2",
         "--degraded-after", "300",  # the fleet, not the fallback,
                                     # must finish the drill
         "--data-dir", str(tmp_path / "data"),
         "--ready-file", str(ready)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, port = ready.read_text().split()
            return proc, int(port)
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError("serve subprocess never became ready")


_VICTIM_SCRIPT = """
import sys, time
from repro.serve.worker import ServeWorker

def wedge(spec, cache=None):
    time.sleep(600)  # holds the lease until SIGKILL

ServeWorker("127.0.0.1", int(sys.argv[1]), worker_id="victim",
            poll_interval=0.1, job_fn=wedge).run()
"""


class TestWorkerCrashDrill:
    def test_sigkill_mid_job_requeues_and_completes_once(
            self, tmp_path):
        env = _fleet_env(tmp_path)
        serve, port = _start_fleet_serve(tmp_path, env)
        victim = None
        rescuer = None
        try:
            client = ServeClient(port=port, timeout=30)
            # Victim first: its claim polling marks the fleet live,
            # so the local fallback never touches the queue.
            victim = subprocess.Popen(
                [sys.executable, "-c", _VICTIM_SCRIPT, str(port)],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                census = client.workers()
                if "victim" in census["workers"]:
                    break
                time.sleep(0.1)
            assert not client.workers()["degraded"]
            job = client.submit("record", dict(RECORD_PARAMS))

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(job["id"])["state"] == "running":
                    break
                time.sleep(0.1)
            snapshot = client.job(job["id"])
            assert snapshot["state"] == "running", snapshot
            assert snapshot["worker"] == "victim"

            # The drill: SIGKILL mid-job.  No goodbye protocol runs;
            # only the lease TTL stands between the job and limbo.
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

            rescuer = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--port", str(port), "--worker-id", "rescuer",
                 "--poll", "0.1", "--max-jobs", "1"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT)

            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "done"
            assert final["worker"] == "rescuer"  # provenance
            assert final["lease_id"] is None  # the lease died
            assert final["attempts"] == 2  # victim's claim + rescue
            assert final["lease_expiries"] == 1
            assert rescuer.wait(timeout=60) == 0

            # Byte-identical artifact: the rescued remote run equals
            # a local execution of the same content-hashed spec.
            from repro.runner import execute_spec

            spec = build_job_spec("record", RECORD_PARAMS)
            remote = client.artifact(final["artifact_hash"])
            assert encode_artifact(remote) == \
                encode_artifact(execute_spec(spec))

            stats = client.stats()
            assert stats["fleet"]["lease_expired"] >= 1
            assert stats["metrics"]["serve_remote_completed"] == 1
            assert stats["metrics"]["serve_requeued"] >= 1
            # Exactly once: a single job, terminal, no duplicates.
            assert len(client.jobs()) == 1
        finally:
            for proc in (victim, rescuer):
                if proc is not None and proc.poll() is None:
                    proc.kill()
            serve.send_signal(signal.SIGINT)
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()
