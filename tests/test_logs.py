"""Tests for DeLorean's log structures and their bit formats."""

import pytest
from hypothesis import given, strategies as st

from repro.core.logs import (
    CSEntry,
    ChunkSizeLog,
    DMALog,
    InterruptEntry,
    InterruptLog,
    IOLog,
    MemoryOrderingLog,
    PILog,
)
from repro.core.modes import ExecutionMode, preferred_config
from repro.errors import LogFormatError


class TestPILog:
    def test_append_and_iterate(self):
        log = PILog()
        for proc in (0, 3, 8, 1):
            log.append(proc)
        assert list(log) == [0, 3, 8, 1]
        assert len(log) == 4

    def test_entry_width_enforced(self):
        log = PILog(entry_bits=4)
        with pytest.raises(LogFormatError):
            log.append(16)

    def test_size_accounting(self):
        log = PILog(entry_bits=4)
        for proc in range(10):
            log.append(proc)
        assert log.size_bits == 40

    def test_encode_decode_roundtrip(self):
        log = PILog()
        for proc in (7, 0, 8, 8, 2):
            log.append(proc)
        payload, bits = log.encode()
        decoded = PILog.decode(payload, bits)
        assert decoded.entries == log.entries

    def test_compression_helps_on_repetition(self):
        log = PILog()
        for _ in range(200):
            for proc in range(4):
                log.append(proc)
        assert log.compressed_size_bits() < log.size_bits

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=300))
    def test_roundtrip_property(self, procs):
        log = PILog()
        for proc in procs:
            log.append(proc)
        payload, bits = log.encode()
        assert PILog.decode(payload, bits).entries == procs


class TestCSLogOrderOnly:
    def _log(self):
        return ChunkSizeLog(preferred_config(ExecutionMode.ORDER_ONLY))

    def test_untruncated_chunks_not_logged(self):
        log = self._log()
        for _ in range(5):
            log.note_commit(2000, truncated=False)
        assert len(log) == 0

    def test_distance_counting(self):
        log = self._log()
        log.note_commit(2000, truncated=False)
        log.note_commit(2000, truncated=False)
        log.note_commit(731, truncated=True)
        log.note_commit(2000, truncated=False)
        log.note_commit(99, truncated=True)
        assert log.entries == [CSEntry(2, 731), CSEntry(1, 99)]

    def test_truncations_by_seq(self):
        log = self._log()
        log.note_commit(2000, False)
        log.note_commit(500, True)     # seq 2
        log.note_commit(2000, False)
        log.note_commit(2000, False)
        log.note_commit(77, True)      # seq 5
        assert log.truncations_by_seq() == {2: 500, 5: 77}

    def test_roundtrip(self):
        log = self._log()
        log.note_commit(2000, False)
        log.note_commit(123, True)
        log.note_commit(456, True)
        payload, bits = log.encode()
        decoded = ChunkSizeLog.decode(
            payload, bits, preferred_config(ExecutionMode.ORDER_ONLY))
        assert decoded.entries == log.entries

    def test_huge_distance_uses_extension_entries(self):
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        log = ChunkSizeLog(config)
        huge = config.max_cs_distance + 10
        log.entries.append(CSEntry(huge, 42))
        payload, bits = log.encode()
        decoded = ChunkSizeLog.decode(payload, bits, config)
        assert decoded.entries == [CSEntry(huge, 42)]

    def test_sizes_in_order_rejected(self):
        with pytest.raises(LogFormatError):
            self._log().sizes_in_order()

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=2000)),
                    max_size=100))
    def test_roundtrip_property(self, commits):
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        log = ChunkSizeLog(config)
        for truncated, size in commits:
            log.note_commit(size, truncated)
        payload, bits = log.encode()
        decoded = ChunkSizeLog.decode(payload, bits, config)
        assert decoded.entries == log.entries


class TestCSLogOrderAndSize:
    def _log(self):
        return ChunkSizeLog(preferred_config(ExecutionMode.ORDER_AND_SIZE))

    def test_every_chunk_logged(self):
        log = self._log()
        log.note_commit(2000, False)
        log.note_commit(17, False)
        assert len(log) == 2
        assert log.sizes_in_order() == [2000, 17]

    def test_max_size_entry_is_one_bit(self):
        log = self._log()
        log.note_commit(2000, False)   # standard size -> 1-bit entry
        assert log.size_bits == 1

    def test_small_entry_is_twelve_bits(self):
        log = self._log()
        log.note_commit(100, False)
        assert log.size_bits == 12

    def test_roundtrip_mixed(self):
        config = preferred_config(ExecutionMode.ORDER_AND_SIZE)
        log = ChunkSizeLog(config)
        for size in (2000, 5, 2000, 1999, 64):
            log.note_commit(size, False)
        payload, bits = log.encode()
        decoded = ChunkSizeLog.decode(payload, bits, config)
        assert [e.size for e in decoded.entries] == [
            2000, 5, 2000, 1999, 64]

    def test_truncation_map_rejected(self):
        with pytest.raises(LogFormatError):
            self._log().truncations_by_seq()


class TestInterruptLog:
    def _entry(self, chunk_id, slot=0):
        return InterruptEntry(chunk_id=chunk_id, vector=3, payload=99,
                              handler_ops=64, high_priority=False,
                              commit_slot=slot)

    def test_monotonic_chunk_ids_enforced(self):
        log = InterruptLog()
        log.append(self._entry(5))
        with pytest.raises(LogFormatError):
            log.append(self._entry(5))

    def test_roundtrip(self):
        log = InterruptLog()
        log.append(self._entry(1, slot=7))
        log.append(InterruptEntry(9, 255, (1 << 64) - 1, 1000, True, 12))
        payload, bits = log.encode()
        decoded = InterruptLog.decode(payload, bits)
        assert decoded.entries == log.entries


class TestIOLog:
    def test_roundtrip(self):
        log = IOLog()
        for value in (0, 1, (1 << 64) - 1, 42):
            log.append(value)
        payload, bits = log.encode()
        assert IOLog.decode(payload, bits).values == log.values

    def test_values_masked(self):
        log = IOLog()
        log.append(1 << 70)
        assert log.values[0] < (1 << 64)


class TestDMALog:
    def test_roundtrip_with_slots(self):
        log = DMALog()
        log.append({10: 100, 11: 200}, commit_slot=3)
        log.append({12: 300}, commit_slot=3)   # equal slots allowed
        log.append({13: 1}, commit_slot=9)
        payload, bits = log.encode()
        decoded = DMALog.decode(payload, bits)
        assert decoded.commit_slots == [3, 3, 9]
        assert [dict(e.writes) for e in decoded.entries] == [
            {10: 100, 11: 200}, {12: 300}, {13: 1}]

    def test_decreasing_slots_rejected(self):
        log = DMALog()
        log.append({1: 1}, commit_slot=5)
        with pytest.raises(LogFormatError):
            log.append({2: 2}, commit_slot=4)

    def test_roundtrip_without_slots(self):
        log = DMALog()
        log.append({7: 70})
        payload, bits = log.encode()
        decoded = DMALog.decode(payload, bits)
        assert decoded.commit_slots == []
        assert dict(decoded.entries[0].writes) == {7: 70}


class TestMemoryOrderingLog:
    def test_headline_metric(self):
        """An OrderOnly machine committing 2000-instruction chunks with
        4-bit PI entries pays 2 bits/proc/kiloinstruction (Section 6.1)."""
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        pi = PILog(entry_bits=4)
        commits = 100
        for index in range(commits):
            pi.append(index % 8)
        log = MemoryOrderingLog(
            pi_log=pi,
            cs_logs={0: ChunkSizeLog(config)},
            mode=ExecutionMode.ORDER_ONLY)
        total_instructions = commits * 2000
        assert log.bits_per_proc_per_kiloinst(
            total_instructions, compressed=False) == pytest.approx(2.0)

    def test_picolog_has_no_pi_contribution(self):
        config = preferred_config(ExecutionMode.PICOLOG)
        pi = PILog(entry_bits=4)
        pi.append(1)  # even if appended, PicoLog reports zero
        log = MemoryOrderingLog(
            pi_log=pi,
            cs_logs={0: ChunkSizeLog(config)},
            mode=ExecutionMode.PICOLOG)
        assert log.pi_size_bits() == 0

    def test_zero_instructions_safe(self):
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        log = MemoryOrderingLog(
            pi_log=PILog(), cs_logs={0: ChunkSizeLog(config)},
            mode=ExecutionMode.ORDER_ONLY)
        assert log.bits_per_proc_per_kiloinst(0) == 0.0


class TestZeroSizeCSEntryGuard:
    """A zero-size CS entry would collide with the distance-extension
    sentinel and silently vanish on decode (found by review fuzzing);
    encoding one must fail loudly instead."""

    def test_zero_size_entry_rejected_at_encode(self):
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        log = ChunkSizeLog(config)
        log.entries.append(CSEntry(distance=0, size=0))
        with pytest.raises(LogFormatError):
            log.encode()
