"""Unit and property tests for bit-level packing."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.bitstream import BitReader, BitWriter
from repro.errors import LogFormatError


class TestBitWriter:
    def test_empty_writer_has_zero_length(self):
        assert BitWriter().bit_length == 0
        assert BitWriter().to_bytes() == b""

    def test_single_bit(self):
        writer = BitWriter()
        writer.write(1, 1)
        assert writer.bit_length == 1
        assert writer.to_bytes() == b"\x80"

    def test_msb_first_packing(self):
        writer = BitWriter()
        writer.write(0b1010, 4)
        writer.write(0b0101, 4)
        assert writer.to_bytes() == bytes([0b10100101])

    def test_field_spanning_bytes(self):
        writer = BitWriter()
        writer.write(0xABC, 12)
        assert writer.bit_length == 12
        data = writer.to_bytes()
        assert data[0] == 0xAB
        assert data[1] & 0xF0 == 0xC0

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(LogFormatError):
            writer.write(16, 4)

    def test_negative_value_rejected(self):
        with pytest.raises(LogFormatError):
            BitWriter().write(-1, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(LogFormatError):
            BitWriter().write(0, 0)

    def test_write_flag(self):
        writer = BitWriter()
        writer.write_flag(True)
        writer.write_flag(False)
        writer.write_flag(True)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert [reader.read_flag() for _ in range(3)] == [
            True, False, True]


class TestBitReader:
    def test_read_past_end_rejected(self):
        writer = BitWriter()
        writer.write(3, 2)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        reader.read(2)
        with pytest.raises(LogFormatError):
            reader.read(1)

    def test_declared_length_validated(self):
        with pytest.raises(LogFormatError):
            BitReader(b"\x00", 9)

    def test_bits_remaining(self):
        writer = BitWriter()
        writer.write(0x1F, 5)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.bits_remaining == 5
        reader.read(3)
        assert reader.bits_remaining == 2
        assert not reader.at_end()
        reader.read(2)
        assert reader.at_end()

    def test_wide_field(self):
        writer = BitWriter()
        value = (1 << 63) | 12345
        writer.write(value, 64)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read(64) == value


@given(st.lists(
    st.integers(min_value=1, max_value=48).flatmap(
        lambda width: st.tuples(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            st.just(width))),
    max_size=200))
def test_roundtrip_identity(fields):
    """Any sequence of (value, width) writes reads back identically."""
    writer = BitWriter()
    for value, width in fields:
        writer.write(value, width)
    reader = BitReader(writer.to_bytes(), writer.bit_length)
    for value, width in fields:
        assert reader.read(width) == value
    assert reader.at_end() or reader.bits_remaining == 0


@given(st.lists(st.integers(min_value=0, max_value=255), max_size=64))
def test_byte_stream_roundtrip(values):
    """Byte-aligned packing is the identity on byte sequences."""
    writer = BitWriter()
    for value in values:
        writer.write(value, 8)
    assert writer.to_bytes() == bytes(values)
