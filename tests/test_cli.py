"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_record_defaults(self):
        args = build_parser().parse_args(["record", "fft"])
        assert args.mode == "order-only"
        assert args.scale == 0.5
        assert args.checkpoint_every == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record", "volrend"])

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record", "fft", "--mode",
                                       "bogus"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRecordReplayFlow:
    @pytest.fixture
    def recording_path(self, tmp_path):
        path = tmp_path / "run.dlrn"
        code = main(["record", "fft", "--scale", "0.1", "--seed", "3",
                     "--checkpoint-every", "8", "-o", str(path)])
        assert code == 0
        assert path.exists()
        return path

    def test_record_writes_file(self, recording_path):
        assert recording_path.stat().st_size > 0

    def test_replay_verifies(self, recording_path, capsys):
        code = main(["replay", str(recording_path)])
        assert code == 0
        assert "deterministic" in capsys.readouterr().out

    def test_replay_with_perturbation(self, recording_path):
        assert main(["replay", str(recording_path),
                     "--perturb-seed", "11"]) == 0

    def test_interval_replay(self, recording_path, capsys):
        code = main(["replay", str(recording_path),
                     "--from-commit", "9"])
        assert code == 0
        assert "interval replay" in capsys.readouterr().out

    def test_inspect(self, recording_path, capsys):
        code = main(["inspect", str(recording_path), "--timeline",
                     "--interleaving", "--limit", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DeLorean recording" in out
        assert "Commit timeline" in out
        assert "interleaving" in out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["replay", str(tmp_path / "nope.dlrn")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.dlrn"
        path.write_bytes(b"not a recording at all")
        code = main(["inspect", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRacesCommand:
    @pytest.fixture
    def recording_path(self, tmp_path):
        path = tmp_path / "srv.dlrn"
        assert main(["record", "sjbb2k", "--scale", "0.2", "--seed",
                     "5", "--checkpoint-every", "10",
                     "-o", str(path)]) == 0
        return path

    def test_reports_contention(self, recording_path, capsys):
        code = main(["races", str(recording_path), "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "contention" in out

    def test_no_dma_filter(self, recording_path, capsys):
        assert main(["races", str(recording_path), "--no-dma"]) == 0
        out = capsys.readouterr().out
        # No writer column may list the DMA engine once filtered.
        for row in out.splitlines():
            assert "dma" not in row.split()[1:2]

    def test_negative_top_clamps(self, recording_path, capsys):
        assert main(["races", str(recording_path), "--top", "-1"]) == 0
        out = capsys.readouterr().out
        total = int(out.split("(")[1].split(" lines")[0])
        assert f"... {total} more contended lines" in out

    def test_replay_window(self, recording_path, capsys):
        code = main(["races", str(recording_path), "--replay"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Replaying" in out or "full replay" in out
        assert "deterministic" in out

    def test_replay_needs_checkpoints(self, tmp_path, capsys):
        path = tmp_path / "plain.dlrn"
        assert main(["record", "sjbb2k", "--scale", "0.2", "--seed",
                     "5", "-o", str(path)]) == 0
        capsys.readouterr()
        code = main(["races", str(path), "--replay"])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err


class TestModesCommand:
    def test_modes_table(self, capsys):
        code = main(["modes", "water-sp", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "order-only" in out
        assert "picolog" in out
        assert "NO" not in out  # every mode replay verified


class TestRecordOptions:
    def test_stratify_and_picolog(self, tmp_path, capsys):
        path = tmp_path / "s.dlrn"
        assert main(["record", "barnes", "--scale", "0.1",
                     "--stratify", "-o", str(path)]) == 0
        assert "stratified PI log" in capsys.readouterr().out
        assert main(["record", "barnes", "--scale", "0.1", "--mode",
                     "picolog"]) == 0


class TestFlagConflicts:
    def test_strata_with_from_commit_rejected(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "r.dlrn"
        main(["record", "water-sp", "--scale", "0.1", "--stratify",
              "--checkpoint-every", "5", "-o", str(path)])
        capsys.readouterr()
        code = main(["replay", str(path), "--strata",
                     "--from-commit", "5"])
        assert code == 2
        assert "cannot combine" in capsys.readouterr().err
