"""Cross-executor architectural equivalence.

Three independent execution substrates interpret the same program
model: the chunk machine (BulkSC semantics), the interleaved SC/PC/RC
executor, and the store-buffer TSO executor.  For *data-race-free*
programs (all shared accesses synchronized or atomic), every substrate
must reach the same final memory -- the DRF guarantee.  These tests
pin that equivalence, which protects against semantic drift between
the three interpreters.
"""

import pytest

from conftest import counter_program, small_config, two_phase_program

from repro.baselines import ConsistencyModel, InterleavedExecutor
from repro.baselines.tso import TSOExecutor
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.workloads.program_builder import ProgramBuilder, shared_address
from repro.workloads.stress import handoff_program


def chunk_machine_memory(program, mode=ExecutionMode.ORDER_ONLY):
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    return system.record(program).final_memory


def interleaved_memory(program, model=ConsistencyModel.SC):
    return InterleavedExecutor(program, small_config(),
                               model).run().final_memory


def tso_memory(program):
    return TSOExecutor(program, small_config()).run().final_memory


class TestDRFEquivalence:
    def test_locked_counter_all_substrates(self):
        expected = {shared_address(0): 4 * 12}
        for memory in (
                chunk_machine_memory(counter_program(4, 12)),
                interleaved_memory(counter_program(4, 12)),
                tso_memory(counter_program(4, 12))):
            assert memory[shared_address(0)] == expected[
                shared_address(0)]

    def test_barrier_pipeline_all_substrates(self):
        references = [
            chunk_machine_memory(two_phase_program()),
            interleaved_memory(two_phase_program()),
            interleaved_memory(two_phase_program(),
                               ConsistencyModel.RC),
            tso_memory(two_phase_program()),
        ]
        out = shared_address(256)
        for memory in references:
            for index in range(8):
                assert memory[out + index] == 100 + index

    def test_lock_ring_token_all_substrates(self):
        """The handoff kernel is fully synchronized: the token's final
        value is substrate-independent."""
        token = shared_address(0x2000)
        values = {
            "chunk": chunk_machine_memory(handoff_program(4, 4)),
            "sc": interleaved_memory(handoff_program(4, 4)),
            "tso": tso_memory(handoff_program(4, 4)),
        }
        reference = values["chunk"][token]
        for name, memory in values.items():
            assert memory[token] == reference, name

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_all_chunk_modes_agree(self, mode):
        memory = chunk_machine_memory(counter_program(3, 10), mode)
        assert memory[shared_address(0)] == 30


class TestSingleThreadEquivalence:
    """With one thread there is no interleaving freedom at all: every
    substrate must produce identical memory, including derived
    (accumulator-dependent) values."""

    def _program(self):
        builder = ProgramBuilder(1, name="single")
        writer = builder.writer(0)
        for index in range(20):
            writer.load(shared_address(8 * index))
            writer.compute(7 + index % 5)
            writer.store(shared_address(8 * index + 1))
            writer.rmw(shared_address(4096), 3)
        return builder.build()

    def test_exact_memory_equality(self):
        chunk = chunk_machine_memory(self._program())
        sc = interleaved_memory(self._program())
        rc = interleaved_memory(self._program(), ConsistencyModel.RC)
        tso = tso_memory(self._program())
        assert chunk == sc == rc == tso
