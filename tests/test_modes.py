"""Tests for execution-mode configuration (Table 2 / Table 5)."""

import pytest

from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.errors import ConfigurationError


class TestModeProperties:
    def test_pi_log_presence(self):
        assert ExecutionMode.ORDER_AND_SIZE.has_pi_log
        assert ExecutionMode.ORDER_ONLY.has_pi_log
        assert not ExecutionMode.PICOLOG.has_pi_log

    def test_per_chunk_size_logging(self):
        assert ExecutionMode.ORDER_AND_SIZE.logs_every_chunk_size
        assert not ExecutionMode.ORDER_ONLY.logs_every_chunk_size
        assert not ExecutionMode.PICOLOG.logs_every_chunk_size


class TestPreferredConfigs:
    def test_order_and_size_table5(self):
        config = preferred_config(ExecutionMode.ORDER_AND_SIZE)
        assert config.standard_chunk_size == 2000
        assert config.variable_truncation_rate == 0.25
        assert config.cs_size_bits == 11

    def test_order_only_table5(self):
        config = preferred_config(ExecutionMode.ORDER_ONLY)
        assert config.standard_chunk_size == 2000
        assert config.cs_distance_bits == 21
        assert config.cs_size_bits == 11
        assert config.cs_distance_bits + config.cs_size_bits == 32

    def test_picolog_table5(self):
        config = preferred_config(ExecutionMode.PICOLOG)
        assert config.standard_chunk_size == 1000
        assert config.cs_distance_bits == 22
        assert config.cs_size_bits == 10
        assert config.cs_distance_bits + config.cs_size_bits == 32


class TestChunkSizeSweep:
    def test_cs_entry_stays_32_bits(self):
        """Section 5: sweeps keep the CS entry 32 bits wide."""
        base = preferred_config(ExecutionMode.ORDER_ONLY)
        for size in (500, 1000, 2000, 3000):
            swept = base.with_chunk_size(size)
            assert swept.cs_distance_bits + swept.cs_size_bits == 32
            assert swept.max_cs_size >= size - 1

    def test_sweep_preserves_mode(self):
        swept = preferred_config(ExecutionMode.PICOLOG).with_chunk_size(
            3000)
        assert swept.mode is ExecutionMode.PICOLOG
        assert swept.standard_chunk_size == 3000


class TestStratification:
    def test_with_stratification(self):
        config = preferred_config(
            ExecutionMode.ORDER_ONLY).with_stratification(3)
        assert config.stratify
        assert config.chunks_per_stratum == 3

    def test_picolog_cannot_stratify(self):
        with pytest.raises(ConfigurationError):
            preferred_config(ExecutionMode.PICOLOG).with_stratification(1)


class TestValidation:
    def test_tiny_chunks_rejected(self):
        with pytest.raises(ConfigurationError):
            ModeConfig(mode=ExecutionMode.ORDER_ONLY,
                       standard_chunk_size=4)

    def test_oversized_cs_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            ModeConfig(mode=ExecutionMode.ORDER_ONLY,
                       standard_chunk_size=2000,
                       cs_distance_bits=60, cs_size_bits=20)

    def test_bad_truncation_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ModeConfig(mode=ExecutionMode.ORDER_AND_SIZE,
                       standard_chunk_size=2000,
                       variable_truncation_rate=1.5)

    def test_zero_chunks_per_stratum_rejected(self):
        with pytest.raises(ConfigurationError):
            ModeConfig(mode=ExecutionMode.ORDER_ONLY,
                       standard_chunk_size=2000, chunks_per_stratum=0)


class TestSizeOnlyQuadrant:
    """Table 2's fourth quadrant, implemented as SIZE_ONLY."""

    def test_axis_properties(self):
        mode = ExecutionMode.SIZE_ONLY
        assert not mode.has_pi_log           # predefined order
        assert mode.predefined_order
        assert mode.logs_every_chunk_size    # non-deterministic chunking

    def test_three_paper_modes_axes(self):
        assert not ExecutionMode.ORDER_AND_SIZE.predefined_order
        assert not ExecutionMode.ORDER_ONLY.predefined_order
        assert ExecutionMode.PICOLOG.predefined_order
        assert not ExecutionMode.ORDER_ONLY.logs_every_chunk_size
        assert not ExecutionMode.PICOLOG.logs_every_chunk_size

    def test_preferred_config(self):
        config = preferred_config(ExecutionMode.SIZE_ONLY)
        assert config.standard_chunk_size == 1000
        assert config.variable_truncation_rate == 0.25

    def test_cannot_stratify(self):
        with pytest.raises(ConfigurationError):
            preferred_config(
                ExecutionMode.SIZE_ONLY).with_stratification(1)
