"""Tests for the Basic RTR baseline: regulation and compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.fdr import FDRRecorder, verify_reduction
from repro.baselines.rtr import RTRRecorder
from test_fdr import trace_from


class TestRegulation:
    def test_regulated_source_never_exceeds_progress(self):
        trace = trace_from([(0, 5, True), (1, 5, False)])
        recorder = RTRRecorder(2, regulation_stride=1000)
        recorder.process(trace)
        dep = recorder.dependences[0]
        assert dep.src_instr <= 1  # proc 0 only retired 1 instruction

    def test_regulation_reduces_entries(self):
        """Figure 1(b): stricter artificial dependences let TR remove
        subsequent real ones."""
        tuples = []
        for round_index in range(20):
            tuples.append((0, round_index % 4, True))
            tuples.append((1, round_index % 4, False))
            tuples.append((0, 100 + round_index, True))  # progress
        trace = trace_from(tuples)
        fdr = FDRRecorder(2)
        fdr.process(trace)
        rtr = RTRRecorder(2, regulation_stride=64)
        rtr.process(trace)
        assert len(rtr.dependences) < len(fdr.dependences)

    def test_regulated_log_still_sound(self):
        tuples = [(i % 3, (i * 7) % 5, i % 2 == 0) for i in range(80)]
        trace = trace_from(tuples)
        recorder = RTRRecorder(3, regulation_stride=8)
        recorder.process(trace)
        assert verify_reduction(trace, recorder.dependences)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            RTRRecorder(2, regulation_stride=0)


class TestVectorCompaction:
    def test_strided_runs_collapse(self):
        recorder = RTRRecorder(2, regulation_stride=1)
        from repro.baselines.fdr import Dependence
        # Hand-craft a perfectly strided dependence sequence.
        recorder.dependences = [
            Dependence(0, 10 * k, 1, 10 * k + 5) for k in range(1, 30)]
        entries = recorder.compact()
        assert len(entries) == 1
        assert entries[0].count == 29

    def test_irregular_runs_stay_separate(self):
        recorder = RTRRecorder(2)
        from repro.baselines.fdr import Dependence
        recorder.dependences = [
            Dependence(0, 10, 1, 20),
            Dependence(0, 17, 1, 90),
            Dependence(0, 300, 1, 91),
        ]
        entries = recorder.compact()
        assert sum(e.count for e in entries) == 3

    def test_compaction_encodes_and_shrinks(self):
        recorder = RTRRecorder(2, regulation_stride=1)
        from repro.baselines.fdr import Dependence
        recorder.dependences = [
            Dependence(0, 8 * k, 1, 8 * k + 3) for k in range(1, 100)]
        _, bits = recorder.encode()
        # One vector entry (~89 bits) vs 99 FDR entries (~4752 bits).
        assert bits < 99 * 48


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.booleans()), max_size=100))
def test_rtr_soundness_property(tuples):
    """Regulation must never invent an unenforceable ordering."""
    trace = trace_from(tuples)
    recorder = RTRRecorder(4, regulation_stride=16)
    recorder.process(trace)
    assert verify_reduction(trace, recorder.dependences)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.booleans()), max_size=100))
def test_rtr_no_more_entries_than_fdr(tuples):
    """Regulation only strengthens sources; it can never need more log
    entries than plain FDR."""
    trace = trace_from(tuples)
    fdr = FDRRecorder(4)
    fdr.process(trace)
    rtr = RTRRecorder(4, regulation_stride=16)
    rtr.process(trace)
    assert len(rtr.dependences) <= len(fdr.dependences)
