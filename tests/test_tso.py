"""Tests for the TSO store-buffer executor (Advanced RTR's substrate)."""

import pytest

from conftest import counter_program, small_config, two_phase_program

from repro.baselines import ConsistencyModel, InterleavedExecutor
from repro.baselines.tso import TSOExecutor
from repro.errors import ConfigurationError
from repro.machine.program import Op, OpKind, Program
from repro.workloads.program_builder import ProgramBuilder, shared_address


def run_tso(program, **kwargs):
    return TSOExecutor(program, small_config(), **kwargs).run()


class TestArchitecturalCorrectness:
    def test_locked_counter_exact(self):
        result = run_tso(counter_program(3, 12))
        assert result.final_memory[shared_address(0)] == 36

    def test_barrier_copy(self):
        result = run_tso(two_phase_program())
        for index in range(8):
            assert result.final_memory[
                shared_address(256) + index] == 100 + index

    def test_matches_sc_final_state_for_synchronized_code(self):
        program = counter_program(3, 10)
        tso = run_tso(counter_program(3, 10))
        sc = InterleavedExecutor(program, small_config(),
                                 ConsistencyModel.SC).run()
        assert tso.final_memory == sc.final_memory

    def test_buffered_stores_drain_at_end(self):
        program = Program(threads=[[
            Op(OpKind.STORE, address=shared_address(4), value=9)]])
        result = run_tso(program)
        assert result.final_memory[shared_address(4)] == 9


class TestStoreBufferSemantics:
    def test_store_to_load_forwarding(self):
        """A thread's own load sees its buffered store (no violation)."""
        program = Program(threads=[[
            Op(OpKind.STORE, address=shared_address(4), value=5),
            Op(OpKind.LOAD, address=shared_address(4)),
            Op(OpKind.STORE, address=shared_address(8)),  # store acc
        ]])
        result = run_tso(program)
        assert result.final_memory[shared_address(8)] == 5
        assert result.sc_violations == 0

    def test_observable_bypass_is_violation(self):
        """Store X buffered; a *remote* write to Y lands; our load of Y
        bypasses the older store: the Advanced RTR case whose load
        value must be logged."""
        program = Program(threads=[
            [Op(OpKind.STORE, address=shared_address(4), value=5),
             Op(OpKind.COMPUTE, count=500),
             Op(OpKind.LOAD, address=shared_address(16))],
            [Op(OpKind.COMPUTE, count=10),
             Op(OpKind.RMW, address=shared_address(16), value=77)],
        ])
        result = run_tso(program, drain_cycles=10_000.0)
        assert result.sc_violations == 1
        assert result.violating_load_values == [77]

    def test_unobservable_bypass_is_not_logged(self):
        """A bypassing load of an untouched location is SC-equivalent:
        Advanced RTR logs nothing for it."""
        program = Program(threads=[[
            Op(OpKind.STORE, address=shared_address(4), value=5),
            Op(OpKind.LOAD, address=shared_address(16)),
        ]], initial_memory={shared_address(16): 77})
        result = run_tso(program, drain_cycles=10_000.0)
        assert result.sc_violations == 0

    def test_drained_store_clears_violations(self):
        """With instant drain, nothing ever bypasses."""
        program = Program(threads=[[
            Op(OpKind.STORE, address=shared_address(4), value=5),
            Op(OpKind.COMPUTE, count=500),
            Op(OpKind.LOAD, address=shared_address(16)),
        ]])
        result = run_tso(program, drain_cycles=1.0)
        assert result.sc_violations == 0

    def test_full_buffer_stalls(self):
        stores = [Op(OpKind.STORE, address=shared_address(8 * i),
                     value=i) for i in range(12)]
        program = Program(threads=[stores])
        result = run_tso(program, buffer_depth=2,
                         drain_cycles=500.0)
        assert result.store_buffer_stalls > 0

    def test_atomics_fence_the_buffer(self):
        """An RMW drains older stores before executing."""
        program = Program(threads=[[
            Op(OpKind.STORE, address=shared_address(4), value=5),
            Op(OpKind.RMW, address=shared_address(4), value=1),
            Op(OpKind.LOAD, address=shared_address(4)),
            Op(OpKind.STORE, address=shared_address(8)),
        ]])
        result = run_tso(program, drain_cycles=10_000.0)
        assert result.final_memory[shared_address(8)] == 6

    def test_bad_buffer_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            TSOExecutor(counter_program(1, 1), buffer_depth=0)


class TestTimingPosition:
    def test_tso_between_sc_and_rc(self):
        """The paper estimates Advanced RTR (TSO) near PC: faster than
        SC, slower than RC."""
        from repro.workloads import splash2_program
        program = lambda: splash2_program("fft", scale=0.2, seed=2)
        config = small_config()
        sc = InterleavedExecutor(program(), config,
                                 ConsistencyModel.SC,
                                 collect_trace=False).run()
        rc = InterleavedExecutor(program(), config,
                                 ConsistencyModel.RC,
                                 collect_trace=False).run()
        tso = TSOExecutor(program(), config).run()
        assert rc.cycles < tso.cycles < sc.cycles
