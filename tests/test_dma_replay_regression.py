"""Regression: PicoLog replay of DMA-heavy workloads.

The growth seed shipped with a replay bug here: under the round-robin
(predefined-order) replay policy a processor grant could be issued for
commit slot S while a recorded DMA burst was due at that same slot --
the burst is only applied against a quiescent pipeline, so it landed
one slot late and the replayed global order diverged from the PI
log's.  The fix holds processor grants while a recorded burst owns the
current slot (``RoundRobinPolicy.dma_hold``).  sweb2005 is the
DMA-heavy workload that exposed it on every scale/seed.
"""

import pytest

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.workloads import commercial_program


@pytest.mark.parametrize("seed", [1, 2, 7])
def test_picolog_sweb2005_replay_converges(seed):
    program = commercial_program("sweb2005", scale=0.5, seed=seed)
    system = DeLoreanSystem(mode=ExecutionMode.PICOLOG)
    recording = system.record(program)
    assert len(recording.dma_log.entries) > 0, (
        "the regression needs DMA traffic to be meaningful")
    result = system.replay(recording, require_determinism=True)
    assert result.determinism.matches


def test_picolog_dma_bursts_replay_in_recorded_slots():
    """The replayed fingerprint sequence -- DMA positions included --
    equals the recorded one exactly."""
    program = commercial_program("sweb2005", scale=0.5, seed=1)
    system = DeLoreanSystem(mode=ExecutionMode.PICOLOG)
    recording = system.record(program)
    from repro.machine.system import replay_execution
    from repro.machine.system import build_replay_machine
    machine = build_replay_machine(recording)
    machine.run()
    assert machine._fingerprints == recording.fingerprints


@pytest.mark.parametrize("mode", [ExecutionMode.ORDER_AND_SIZE,
                                  ExecutionMode.ORDER_ONLY])
def test_other_modes_still_converge_on_dma_heavy_replay(mode):
    """The dma_hold gate is PicoLog-specific; the explicit-order modes
    must be unaffected by it."""
    program = commercial_program("sweb2005", scale=0.5, seed=1)
    system = DeLoreanSystem(mode=mode)
    recording = system.record(program)
    result = system.replay(recording, require_determinism=True)
    assert result.determinism.matches
