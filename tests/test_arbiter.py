"""Tests for the commit arbiter and its ordering policies."""

import pytest

from repro.chunks.chunk import Chunk, ChunkState
from repro.chunks.signature import SignatureConfig
from repro.core.arbiter import (
    ArrivalOrderPolicy,
    CommitArbiter,
    PIReplayPolicy,
    RoundRobinPolicy,
    StrataReplayPolicy,
)
from repro.errors import ReplayDivergenceError
from repro.machine.program import ThreadState


def chunk_for(proc, seq=1, writes=(), reads=(), piece=0,
              complete_time=0.0) -> Chunk:
    chunk = Chunk(
        processor=proc,
        logical_seq=seq,
        start_state=ThreadState(thread_id=proc),
        signature_config=SignatureConfig(),
        piece_index=piece,
    )
    for line in writes:
        chunk.record_write(line)
    for line in reads:
        chunk.record_read(line)
    chunk.state = ChunkState.COMPLETED
    chunk.complete_time = complete_time
    return chunk


def make_arbiter(policy, max_concurrent=4, grants=None, **kwargs):
    grants = grants if grants is not None else []
    return CommitArbiter(
        policy=policy,
        max_concurrent=max_concurrent,
        on_grant=lambda chunk, now: grants.append(chunk),
        **kwargs,
    ), grants


class TestArrivalOrderPolicy:
    def test_grants_in_arrival_order(self):
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        a, b = chunk_for(0, writes=[1]), chunk_for(1, writes=[2])
        arbiter.receive_request(a, 0.0)
        arbiter.receive_request(b, 1.0)
        assert grants == [a, b]

    def test_conflicting_request_waits(self):
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        a = chunk_for(0, writes=[5])
        b = chunk_for(1, reads=[5])
        arbiter.receive_request(a, 0.0)
        arbiter.receive_request(b, 0.0)
        assert grants == [a]          # b blocked by committing a
        arbiter.commit_finished(a, 2.0)
        assert grants == [a, b]

    def test_no_overtaking_of_blocked_head(self):
        """Head-of-line blocking: nothing slips past a conflicting
        oldest request (the livelock-prevention property -- see the
        policy docstring)."""
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        a = chunk_for(0, writes=[5])
        blocked = chunk_for(1, writes=[5])
        free = chunk_for(2, writes=[9])
        for i, c in enumerate((a, blocked, free)):
            arbiter.receive_request(c, float(i))
        assert grants == [a]
        arbiter.commit_finished(a, 5.0)
        assert grants == [a, blocked, free]

    def test_spinner_cannot_starve_unlock(self):
        """Regression for the hypothesis-found livelock: write-free
        spin chunks must not be granted past a pending conflicting
        unlock."""
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        committing_spin = chunk_for(0, reads=[5])
        unlock = chunk_for(2, writes=[5])
        fresh_spin = chunk_for(1, reads=[5])
        arbiter.receive_request(committing_spin, 0.0)
        arbiter.receive_request(unlock, 1.0)
        arbiter.receive_request(fresh_spin, 2.0)
        # The fresh spin chunk would be grantable (empty write set),
        # but it must wait behind the blocked unlock.
        assert grants == [committing_spin]
        arbiter.commit_finished(committing_spin, 3.0)
        assert grants[:2] == [committing_spin, unlock]

    def test_concurrency_cap(self):
        arbiter, grants = make_arbiter(ArrivalOrderPolicy(),
                                       max_concurrent=2)
        chunks = [chunk_for(p, writes=[p + 10]) for p in range(4)]
        for i, c in enumerate(chunks):
            arbiter.receive_request(c, float(i))
        assert len(grants) == 2
        arbiter.commit_finished(chunks[0], 5.0)
        assert len(grants) == 3


class TestRoundRobinPolicy:
    def test_token_order(self):
        policy = RoundRobinPolicy(3, is_active=lambda p: True)
        arbiter, grants = make_arbiter(policy)
        c2 = chunk_for(2, writes=[1])
        c0 = chunk_for(0, writes=[2])
        c1 = chunk_for(1, writes=[3])
        arbiter.receive_request(c2, 0.0)   # not c2's turn
        assert grants == []
        arbiter.receive_request(c0, 1.0)
        assert grants == [c0]              # token at 0, then 1
        arbiter.receive_request(c1, 2.0)
        assert grants == [c0, c1, c2]

    def test_skips_permanently_idle(self):
        active = {0: True, 1: False, 2: True}
        policy = RoundRobinPolicy(3, is_active=lambda p: active[p])
        arbiter, grants = make_arbiter(policy)
        c0 = chunk_for(0, writes=[1])
        c2 = chunk_for(2, writes=[2])
        arbiter.receive_request(c0, 0.0)
        arbiter.receive_request(c2, 0.0)
        assert grants == [c0, c2]

    def test_all_idle_returns_quietly(self):
        policy = RoundRobinPolicy(2, is_active=lambda p: False)
        arbiter, grants = make_arbiter(policy)
        arbiter.try_grant(0.0)
        assert grants == []
        assert policy.pointer == 0  # no hops burned

    def test_holder_conflict_blocks_everyone(self):
        """PicoLog: if the token holder's chunk conflicts with an
        in-flight commit, nobody overtakes (Section 6.3)."""
        policy = RoundRobinPolicy(2, is_active=lambda p: True)
        arbiter, grants = make_arbiter(policy)
        c0 = chunk_for(0, writes=[7])
        c1 = chunk_for(1, writes=[7])   # conflicts with c0
        arbiter.receive_request(c0, 0.0)
        arbiter.receive_request(c1, 0.0)
        assert grants == [c0]
        arbiter.commit_finished(c0, 3.0)
        assert grants == [c0, c1]

    def test_token_hop_latency_delays_grant(self):
        wakeups = []
        policy = RoundRobinPolicy(
            2, is_active=lambda p: True, hop_cycles=50,
            wakeup=wakeups.append)
        arbiter, grants = make_arbiter(policy)
        c0 = chunk_for(0, writes=[1])
        c1 = chunk_for(1, writes=[2])
        arbiter.receive_request(c0, 0.0)
        assert grants == [c0]
        arbiter.receive_request(c1, 1.0)
        assert grants == [c0]       # token still in flight to proc 1
        assert wakeups and wakeups[0] == 50.0
        arbiter.try_grant(50.0)
        assert grants == [c0, c1]

    def test_token_stats_collected(self):
        policy = RoundRobinPolicy(2, is_active=lambda p: True)
        arbiter, _ = make_arbiter(policy)
        arbiter.receive_request(chunk_for(0, writes=[1],
                                          complete_time=0.0), 5.0)
        arbiter.receive_request(chunk_for(1, writes=[2],
                                          complete_time=6.0), 6.0)
        summary = policy.stats.summary()
        assert summary["proc_ready_pct"] >= 0.0
        assert policy.stats.ready_count + policy.stats.not_ready_count == 2


class TestPIReplayPolicy:
    def test_enforces_log_order(self):
        policy = PIReplayPolicy([1, 0], dma_proc_id=8)
        arbiter, grants = make_arbiter(policy, max_concurrent=1)
        c0 = chunk_for(0, writes=[1])
        c1 = chunk_for(1, writes=[2])
        arbiter.receive_request(c0, 0.0)
        assert grants == []            # log says proc 1 first
        arbiter.receive_request(c1, 1.0)
        assert grants == [c1]
        arbiter.commit_finished(c1, 2.0)
        assert grants == [c1, c0]

    def test_dma_entry_blocks_until_consumed(self):
        policy = PIReplayPolicy([8, 0], dma_proc_id=8)
        arbiter, grants = make_arbiter(policy, max_concurrent=1)
        arbiter.receive_request(chunk_for(0, writes=[1]), 0.0)
        assert grants == []
        assert policy.next_is_dma()
        policy.consume_dma()
        arbiter.try_grant(1.0)
        assert len(grants) == 1

    def test_consume_dma_when_not_dma_raises(self):
        policy = PIReplayPolicy([0], dma_proc_id=8)
        with pytest.raises(ReplayDivergenceError):
            policy.consume_dma()

    def test_finish_requires_full_consumption(self):
        policy = PIReplayPolicy([0, 1], dma_proc_id=8)
        with pytest.raises(ReplayDivergenceError):
            policy.finish()

    def test_parallel_replay_commit_respects_conflicts(self):
        policy = PIReplayPolicy([0, 1], dma_proc_id=8)
        arbiter, grants = make_arbiter(policy, max_concurrent=4)
        c0 = chunk_for(0, writes=[5])
        c1 = chunk_for(1, reads=[5])   # conflicts with c0
        arbiter.receive_request(c0, 0.0)
        arbiter.receive_request(c1, 0.0)
        assert grants == [c0]          # c1 must wait despite free slot
        arbiter.commit_finished(c0, 1.0)
        assert grants == [c0, c1]


class TestStrataReplayPolicy:
    def test_within_stratum_any_order(self):
        policy = StrataReplayPolicy([(1, 1, 0)], dma_slot=2)
        arbiter, grants = make_arbiter(policy, max_concurrent=1)
        c1 = chunk_for(1, writes=[1])
        c0 = chunk_for(0, writes=[2])
        arbiter.receive_request(c1, 0.0)   # proc 1 first is fine
        assert grants == [c1]
        arbiter.commit_finished(c1, 1.0)
        arbiter.receive_request(c0, 2.0)
        assert grants == [c1, c0]

    def test_stratum_quota_enforced(self):
        policy = StrataReplayPolicy([(1, 0, 0), (1, 0, 0)], dma_slot=2)
        arbiter, grants = make_arbiter(policy, max_concurrent=1)
        first = chunk_for(0, seq=1, writes=[1])
        second = chunk_for(0, seq=2, writes=[2])
        arbiter.receive_request(first, 0.0)
        arbiter.commit_finished(first, 1.0)
        arbiter.receive_request(second, 2.0)
        assert grants == [first, second]
        policy.finish()   # both strata consumed

    def test_finish_rejects_partial_stratum(self):
        policy = StrataReplayPolicy([(2, 0, 0)], dma_slot=2)
        with pytest.raises(ReplayDivergenceError):
            policy.finish()


class TestContinuationReservation:
    def test_reserved_continuation_bypasses_policy(self):
        policy = PIReplayPolicy([1], dma_proc_id=8)
        arbiter, grants = make_arbiter(policy, max_concurrent=1)
        arbiter.reserve_continuation(0)
        piece = chunk_for(0, seq=3, piece=1, writes=[1])
        other = chunk_for(1, writes=[2])
        arbiter.receive_request(other, 0.0)
        assert grants == []            # reservation holds everyone
        arbiter.receive_request(piece, 1.0)
        assert grants == [piece]
        arbiter.commit_finished(piece, 2.0)
        assert grants == [piece, other]

    def test_reservation_flag(self):
        arbiter, _ = make_arbiter(ArrivalOrderPolicy())
        assert not arbiter.has_reservation
        arbiter.reserve_continuation(2)
        assert arbiter.has_reservation


class TestStaleAndDma:
    def test_squashed_request_dropped(self):
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        chunk = chunk_for(0, writes=[1])
        chunk.state = ChunkState.SQUASHED
        arbiter.receive_request(chunk, 0.0)
        assert grants == []
        assert not arbiter.pending

    def test_dma_bypass_grants_out_of_band(self):
        policy = RoundRobinPolicy(2, is_active=lambda p: True)
        arbiter, grants = make_arbiter(policy, dma_proc_id=8)
        dma = chunk_for(8, writes=[100])
        arbiter.receive_request(dma, 0.0)
        assert grants == [dma]
        assert policy.pointer == 0  # token undisturbed

    def test_dma_does_not_advance_slot_counter(self):
        policy = RoundRobinPolicy(2, is_active=lambda p: True)
        arbiter, _ = make_arbiter(policy, dma_proc_id=8)
        dma = chunk_for(8, writes=[100])
        arbiter.receive_request(dma, 0.0)
        assert arbiter.grant_count == 0

    def test_head_filter_blocks_non_heads(self):
        heads = []
        arbiter, grants = make_arbiter(
            ArrivalOrderPolicy(),
            head_filter=lambda chunk: any(chunk is h for h in heads))
        older = chunk_for(0, seq=1, writes=[1])
        newer = chunk_for(0, seq=2, writes=[2])
        heads.append(older)
        arbiter.receive_request(newer, 0.0)   # arrives first but not head
        assert grants == []
        arbiter.receive_request(older, 1.0)
        assert grants == [older]


class TestRoundRobinSlotGating:
    """PicoLog replay: handler chunks on idle processors are gated on
    their recorded commit slot."""

    def _policy(self, gates, active, counter):
        return RoundRobinPolicy(
            2,
            is_active=lambda p: active[p],
            slot_gate=lambda p: gates.get(p),
            grant_count=lambda: counter["value"],
        )

    def test_gated_processor_skipped_until_slot(self):
        gates = {0: 3}
        active = {0: False, 1: True}
        counter = {"value": 0}
        policy = self._policy(gates, active, counter)
        arbiter, grants = make_arbiter(policy)
        gated = chunk_for(0, writes=[1])
        other = chunk_for(1, writes=[2])
        arbiter.receive_request(gated, 0.0)
        arbiter.receive_request(other, 0.0)
        # Slot 3 not reached: proc 0 is skipped, proc 1 commits.
        assert grants == [other]
        counter["value"] = 3
        # A due gate does not jump the queue: the token is parked at
        # the still-active proc 1.  Once proc 1 goes idle the token
        # travels on and the gated handler commits.
        arbiter.try_grant(1.0)
        assert grants == [other]
        active[1] = False
        arbiter.try_grant(2.0)
        assert grants == [other, gated]

    def test_gate_due_prevents_skip(self):
        gates = {0: 0}
        active = {0: False, 1: True}
        counter = {"value": 0}
        policy = self._policy(gates, active, counter)
        arbiter, grants = make_arbiter(policy)
        gated = chunk_for(0, writes=[1])
        arbiter.receive_request(gated, 0.0)
        assert grants == [gated]

    def test_all_gated_future_is_quiescent(self):
        gates = {0: 5, 1: 9}
        active = {0: False, 1: False}
        counter = {"value": 0}
        policy = self._policy(gates, active, counter)
        arbiter, grants = make_arbiter(policy)
        arbiter.receive_request(chunk_for(0, writes=[1]), 0.0)
        assert grants == []
        assert policy.pointer == 0  # no hops burned


class TestHaltedArbiter:
    def test_halt_stops_grants(self):
        arbiter, grants = make_arbiter(ArrivalOrderPolicy())
        arbiter.halt()
        arbiter.receive_request(chunk_for(0, writes=[1]), 0.0)
        assert grants == []
        assert arbiter.pending  # request queued but never granted
