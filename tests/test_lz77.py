"""Unit and property tests for the LZ77 codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lz77 import LZ77Codec, compressed_size_bits
from repro.errors import LogFormatError


class TestLZ77Roundtrip:
    def test_empty(self):
        codec = LZ77Codec()
        payload, bits = codec.compress(b"")
        assert codec.decompress(payload, bits) == b""

    def test_short_literal_data(self):
        codec = LZ77Codec()
        data = b"abc"
        payload, bits = codec.compress(data)
        assert codec.decompress(payload, bits) == data

    def test_repetitive_data_roundtrip(self):
        codec = LZ77Codec()
        data = b"abcabcabcabcabcabc" * 10
        payload, bits = codec.compress(data)
        assert codec.decompress(payload, bits) == data

    def test_overlapping_match(self):
        """Classic LZ77 self-referencing run (aaaa...)."""
        codec = LZ77Codec()
        data = b"a" * 300
        payload, bits = codec.compress(data)
        assert codec.decompress(payload, bits) == data

    def test_binary_data(self):
        codec = LZ77Codec()
        data = bytes(range(256)) * 3
        payload, bits = codec.compress(data)
        assert codec.decompress(payload, bits) == data


class TestCompressionBehaviour:
    def test_repetitive_data_compresses(self):
        data = b"\x11\x22\x33\x44" * 200
        assert compressed_size_bits(data) < len(data) * 8 / 2

    def test_incompressible_data_never_reported_larger(self):
        import random
        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(512))
        assert compressed_size_bits(data) <= len(data) * 8

    def test_empty_is_zero(self):
        assert compressed_size_bits(b"") == 0

    def test_window_bounds_validated(self):
        with pytest.raises(LogFormatError):
            LZ77Codec(window_bits=2)
        with pytest.raises(LogFormatError):
            LZ77Codec(length_bits=1)

    def test_small_window_still_roundtrips(self):
        codec = LZ77Codec(window_bits=4, length_bits=3)
        data = b"xyzw" * 50
        payload, bits = codec.compress(data)
        assert codec.decompress(payload, bits) == data


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=600))
def test_roundtrip_property(data):
    """compress/decompress is the identity for arbitrary bytes."""
    codec = LZ77Codec()
    payload, bits = codec.compress(data)
    assert codec.decompress(payload, bits) == data


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=100), st.integers(min_value=2, max_value=12))
def test_roundtrip_with_repeats(chunk, repeats):
    """Highly repetitive inputs exercise the match path."""
    codec = LZ77Codec()
    data = chunk * repeats
    payload, bits = codec.compress(data)
    assert codec.decompress(payload, bits) == data
