"""Shared fixtures and program builders for the test suite.

Tests favour tiny, purpose-built programs over the big synthetic
workloads so failures localize; the integration/property tests use the
workload generators at very small scales.
"""

from __future__ import annotations

import pytest

from repro.chunks.signature import SignatureConfig
from repro.machine.program import Op, OpKind, Program
from repro.machine.timing import MachineConfig
from repro.workloads.program_builder import (
    ProgramBuilder,
    lock_address,
    shared_address,
)


def small_config(**overrides) -> MachineConfig:
    """A fast 4-processor machine configuration for unit tests."""
    defaults = dict(
        num_processors=4,
        standard_chunk_size=64,
        l2_lines=4096,
        seed=7,
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


@pytest.fixture
def machine_config() -> MachineConfig:
    """Default small machine configuration."""
    return small_config()


@pytest.fixture
def signature_config() -> SignatureConfig:
    """Default signature configuration."""
    return SignatureConfig()


def counter_program(
    threads: int = 2,
    increments: int = 20,
    locked: bool = True,
    compute: int = 3,
) -> Program:
    """Threads increment a shared counter, optionally under a lock.

    The increment is deliberately non-atomic (load, compute, store), so
    the final counter value reveals whether mutual exclusion held.
    """
    counter = shared_address(0)
    lock = lock_address(0)
    builder = ProgramBuilder(threads, name="counter")
    for thread in range(threads):
        writer = builder.writer(thread)
        for _ in range(increments):
            if locked:
                writer.lock(lock)
            writer.load(counter)
            writer.compute(compute)
            writer.rmw(counter, 1)
            if locked:
                writer.unlock(lock)
            writer.compute(compute)
    return builder.build()


def racy_increment_program(threads: int = 2,
                           increments: int = 10) -> Program:
    """A genuine data race: read-modify-write without atomicity via separate
    load/store ops (lost updates possible under any interleaving where
    two threads interleave between load and store)."""
    counter = shared_address(64)
    builder = ProgramBuilder(threads, name="racy")
    for thread in range(threads):
        writer = builder.writer(thread)
        for index in range(increments):
            writer.load(counter)
            writer.compute(2)
            # Store accumulator-derived value: acc was mixed, so the
            # stored value depends on what was read -- a true race.
            writer.store(counter, value=None)
            writer.compute(2)
    return builder.build()


def two_phase_program() -> Program:
    """Producer/consumer through a barrier: thread 0 writes, barrier,
    thread 1 reads and copies."""
    builder = ProgramBuilder(2, name="two-phase")
    data = shared_address(128)
    out = shared_address(256)
    with builder.thread(0) as t:
        for index in range(8):
            t.store(data + index, value=100 + index)
        t.barrier(0x110000, 2)
        t.compute(10)
    with builder.thread(1) as t:
        t.compute(5)
        t.barrier(0x110000, 2)
        for index in range(8):
            t.load(data + index)
            t.store(out + index)
    return builder.build()


def straight_line_program(threads: int = 2, length: int = 30) -> Program:
    """No sharing at all: compute + private traffic only."""
    builder = ProgramBuilder(threads, name="straight")
    for thread in range(threads):
        writer = builder.writer(thread)
        for index in range(length):
            writer.compute(5)
            writer.store(0x400000 + thread * 0x1000 + index, value=index)
            writer.load(0x400000 + thread * 0x1000 + index)
    return builder.build()


def apply_fingerprint_writes(initial: dict[int, int],
                             fingerprints: list[tuple]) -> dict[int, int]:
    """Re-apply commit-ordered fingerprint writes (serializability
    oracle: must reproduce the machine's final memory)."""
    memory = dict(initial)
    for fingerprint in fingerprints:
        if fingerprint[0] == "dma":
            writes = fingerprint[2]
        else:
            writes = fingerprint[5]
        for address, value in writes:
            memory[address] = value
    return {a: v for a, v in memory.items() if v != 0}
