"""Tests for the pluggable executor backends.

The contract that makes backends interchangeable: a job is a pure
function of its content-hashed spec, so the same spec must produce a
byte-identical artifact on every backend.  These tests pin that
parity across the inline and process-pool substrates, plus the
lifecycle and resolution rules the runner and the serve layer rely
on.
"""

from __future__ import annotations

import pytest

from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.runner import ResultCache, Runner, RunSpec, execute_spec
from repro.runner.cache import encode_artifact
from repro.runner.executors import (
    BACKENDS,
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.runner.jobs import invoke

SCALE = 0.05
SEED = 3


def record_spec(**kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("seed", SEED)
    return RunSpec.record("fft", ExecutionMode.ORDER_ONLY, **kwargs)


def _boom():
    raise RuntimeError("boom")


class TestInlineBackend:
    def test_submit_returns_completed_future(self):
        backend = InlineBackend()
        future = backend.submit(lambda x: x * 2, 21)
        assert future.done()
        assert future.result() == 42

    def test_exception_travels_in_future(self):
        backend = InlineBackend()
        future = backend.submit(_boom)
        assert future.done()
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_not_parallel(self):
        assert InlineBackend.parallel is False
        assert InlineBackend.name == "inline"


class TestResolveBackend:
    def test_none_serial_picks_inline(self):
        assert isinstance(resolve_backend(None, 1), InlineBackend)

    def test_none_parallel_picks_process(self):
        backend = resolve_backend(None, 4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 4

    def test_names_resolve(self):
        assert isinstance(resolve_backend("inline", 8), InlineBackend)
        assert isinstance(resolve_backend("process", 2),
                          ProcessPoolBackend)

    def test_instance_passes_through(self):
        backend = InlineBackend()
        assert resolve_backend(backend, 8) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            resolve_backend("quantum", 1)

    def test_registry_is_the_cli_surface(self):
        assert set(BACKENDS) == {"inline", "process", "remote"}


class TestProcessPoolLifecycle:
    def test_restart_rebuilds_the_pool(self):
        backend = ProcessPoolBackend(max_workers=1)
        backend.start(1)
        first = backend._pool
        backend.restart(1)
        assert backend._pool is not first
        assert backend.submit(int, "7").result(timeout=60) == 7
        backend.shutdown()

    def test_submit_without_start_self_provisions(self):
        backend = ProcessPoolBackend(max_workers=1)
        assert backend.submit(int, "5").result(timeout=60) == 5
        backend.shutdown()

    def test_shutdown_is_idempotent(self):
        backend = ProcessPoolBackend(max_workers=1)
        backend.start(1)
        backend.shutdown()
        backend.shutdown()
        assert backend._pool is None


class TestCrossBackendParity:
    def test_byte_identical_artifacts(self, tmp_path):
        """The same spec yields the same bytes on every substrate."""
        spec = record_spec()
        encodings = {}
        for backend in (InlineBackend(),
                        ProcessPoolBackend(max_workers=1)):
            backend.start(1)
            try:
                envelope = backend.submit(
                    invoke, execute_spec, spec, None,
                    str(tmp_path / backend.name), "parity-salt",
                ).result(timeout=300)
            finally:
                backend.shutdown()
            assert envelope["ok"], envelope
            encodings[backend.name] = \
                encode_artifact(envelope["artifact"])
        assert encodings["inline"] == encodings["process"]

    def test_envelope_failure_shape_matches(self, tmp_path):
        spec = RunSpec.record("no-such-app", ExecutionMode.ORDER_ONLY,
                              scale=SCALE, seed=SEED)
        shapes = {}
        for backend in (InlineBackend(),
                        ProcessPoolBackend(max_workers=1)):
            backend.start(1)
            try:
                envelope = backend.submit(
                    invoke, execute_spec, spec, None,
                    str(tmp_path / backend.name), "parity-salt",
                ).result(timeout=300)
            finally:
                backend.shutdown()
            assert not envelope["ok"]
            shapes[backend.name] = (envelope["error_type"],
                                    envelope["message"])
        assert shapes["inline"] == shapes["process"]


class TestRunnerBackendChoice:
    def test_explicit_backend_is_honored(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", salt="test-salt")
        runner = Runner(jobs=1, cache=cache, executor="process")
        assert runner.backend.name == "process"
        outcomes = runner.run([record_spec()])
        assert all(o.ok for o in outcomes)

    def test_injected_instance_is_not_shut_down(self, tmp_path):
        backend = InlineBackend()
        cache = ResultCache(tmp_path / "cache", salt="test-salt")
        runner = Runner(jobs=1, cache=cache, executor=backend)
        assert runner.backend is backend
        outcomes = runner.run([record_spec()])
        assert all(o.ok for o in outcomes)

    def test_abstract_backend_rejects_submit(self):
        with pytest.raises(NotImplementedError):
            ExecutorBackend().submit(int, "1")
