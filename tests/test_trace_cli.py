"""Tests for the ``repro trace`` subcommand and the JSONL reporter."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runner import (
    ConsoleReporter,
    JSONLReporter,
    NullReporter,
    RunnerMetrics,
    RunSpec,
    reporter_from_option,
)
from repro.telemetry import commit_spans_per_track


class TestTraceParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace", "--app", "fft"])
        assert args.workload == "fft"
        assert args.mode == "order-only"
        assert args.phase == "record"

    def test_app_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestTraceCommand:
    def test_acceptance_invocation(self, tmp_path):
        # The spelling from the issue: --mode orderonly (no dash).
        out = tmp_path / "trace.json"
        code = main(["trace", "--mode", "orderonly", "--app", "fft",
                     "--scale", "0.1", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["metadata"]["mode"] == "order-only"
        run_stats = document["metadata"]["run_stats"]
        counts = commit_spans_per_track(document)
        for proc, stats in run_stats["per_processor"].items():
            assert counts.get(f"p{proc}", 0) == \
                stats["chunks_committed"]

    def test_mode_spellings_normalize(self, tmp_path):
        for spelling in ("order_and_size", "orderandsize",
                         "order-and-size"):
            out = tmp_path / f"{spelling}.json"
            code = main(["trace", "--app", "fft", "--scale", "0.05",
                         "--mode", spelling, "--out", str(out)])
            assert code == 0
            document = json.loads(out.read_text())
            assert document["metadata"]["mode"] == "order-and-size"

    def test_unknown_mode_is_a_clean_error(self, capsys):
        code = main(["trace", "--app", "fft", "--mode", "bogus"])
        assert code == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_phase_both_verifies_replay(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["trace", "--app", "fft", "--scale", "0.1",
                     "--phase", "both", "--out", str(out),
                     "--events", str(events),
                     "--metrics", str(metrics)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "replay verified: deterministic" in captured
        assert "trace matches RunStats" in captured
        assert events.read_text().count("\n") > 0
        flat = json.loads(metrics.read_text())
        assert flat["chunks_committed"] > 0


class TestReporterOption:
    def test_resolution(self):
        default = ConsoleReporter()
        assert reporter_from_option(None, default) is default
        assert isinstance(reporter_from_option("null", default),
                          NullReporter)
        assert isinstance(reporter_from_option("console", default),
                          ConsoleReporter)
        with pytest.raises(ValueError):
            reporter_from_option("bogus", default)
        with pytest.raises(ValueError):
            reporter_from_option("jsonl:", default)

    def test_jsonl_reporter_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        reporter = reporter_from_option(f"jsonl:{path}",
                                        ConsoleReporter())
        assert isinstance(reporter, JSONLReporter)
        spec = RunSpec.record("fft", "order_only", scale=0.1, seed=1)
        metrics = RunnerMetrics()
        reporter.on_start(2)
        reporter.on_job_start(spec, attempt=1)
        reporter.on_job_done(spec, from_cache=False, wall_time=0.5,
                             metrics=metrics)
        reporter.on_retry(spec, attempt=1, delay=0.1, error="x")
        reporter.on_job_failed(spec, error="y", metrics=metrics)
        reporter.on_finish(metrics)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == [
            "start", "job_start", "job_done", "retry", "job_failed",
            "finish"]
        assert lines[1]["spec"] == spec.label()
        assert lines[1]["spec_hash"] == spec.content_hash()
        assert "metrics" in lines[-1]

    def test_bench_cli_writes_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "bench.jsonl"
        code = main(["modes", "fft", "--scale", "0.05",
                     "--report", f"jsonl:{path}", "--no-cache"])
        assert code == 0
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["event"] == "start"
        assert lines[-1]["event"] == "finish"
        assert any(line["event"] == "job_done" for line in lines)
