"""Tests for machine configuration and the timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.timing import MachineConfig, TimingModel


class TestTimingModel:
    def test_instruction_cycles(self):
        timing = TimingModel(base_cpi=0.5)
        assert timing.instruction_cycles(100) == 50.0

    def test_miss_latencies(self):
        timing = TimingModel()
        assert timing.miss_latency("l1") == timing.l1_hit_cycles
        assert timing.miss_latency("l2") == timing.l2_hit_cycles
        assert timing.miss_latency("memory") == timing.memory_cycles

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel().miss_latency("l7")

    def test_exposure_ordering_matches_models(self):
        """The calibration must keep RC <= PC <= SC exposures."""
        timing = TimingModel()
        assert (timing.rc_load_exposure <= timing.pc_load_exposure
                <= timing.sc_load_exposure)
        assert (timing.rc_store_exposure <= timing.pc_store_exposure
                <= timing.sc_store_exposure)


class TestMachineConfigValidation:
    def test_defaults_are_table5(self):
        config = MachineConfig()
        assert config.num_processors == 8
        assert config.l1_sets == 128
        assert config.l1_ways == 4
        assert config.standard_chunk_size == 2000
        assert config.simultaneous_chunks == 2
        assert config.max_concurrent_commits == 4
        assert config.arbitration_roundtrip == 30

    def test_zero_processors_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_processors=0)

    def test_too_many_processors_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_processors=100)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(line_words=6)

    def test_tiny_chunks_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(standard_chunk_size=4)

    def test_zero_window_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(simultaneous_chunks=0)

    def test_zero_commit_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(max_concurrent_commits=0)


class TestAddressGeometry:
    def test_line_mapping(self):
        config = MachineConfig(line_words=8)
        assert config.line_shift == 3
        assert config.line_of(0) == 0
        assert config.line_of(7) == 0
        assert config.line_of(8) == 1

    def test_dma_proc_id(self):
        assert MachineConfig(num_processors=8).dma_proc_id == 8
        assert MachineConfig(num_processors=4).dma_proc_id == 4

    def test_pi_entry_bits(self):
        """4 bits up to 15 processors (Table 5); 5 bits for the
        16-processor Figure 12 sweeps."""
        assert MachineConfig(num_processors=4).pi_entry_bits == 4
        assert MachineConfig(num_processors=8).pi_entry_bits == 4
        assert MachineConfig(num_processors=15).pi_entry_bits == 4
        assert MachineConfig(num_processors=16).pi_entry_bits == 5

    def test_pi_entries_fit_dma_id(self):
        for procs in (2, 8, 15, 16):
            config = MachineConfig(num_processors=procs)
            assert config.dma_proc_id < (1 << config.pi_entry_bits)
