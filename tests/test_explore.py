"""Tests for repro.explore: frontier, plans, driver, bisection, report."""

import json

import pytest

from repro.core.arbiter import SchedulePlan
from repro.core.modes import ExecutionMode
from repro.explore import (
    EXPLORE_OUTCOMES,
    ExploreReport,
    Frontier,
    ScheduleResult,
    execute_explore_spec,
    pct_plan,
    pct_plans,
    racing_pairs,
    read_explore_report,
    run_exploration,
)
from repro.explore.frontier import branch_prefix
from repro.runner.specs import RunSpec

BUGGY = ("lost-update", "atomicity-violation", "order-violation")
ORDER_MODES = (ExecutionMode.ORDER_AND_SIZE, ExecutionMode.ORDER_ONLY)


class TestPlans:
    def test_pct_stream_is_deterministic(self):
        assert (pct_plans(3, 5, depth=20)
                == pct_plans(3, 5, depth=20))
        assert pct_plan(3, 0, 20) != pct_plan(4, 0, 20)
        assert pct_plan(3, 0, 20) != pct_plan(3, 1, 20)

    def test_change_points_fit_the_depth(self):
        plan = pct_plan(1, 0, depth=10, change_points=3)
        assert len(plan.change_points) == 3
        assert all(1 <= p < 10 for p in plan.change_points)
        assert plan.seed is not None


class TestFrontier:
    # Two procs racing on line 5: commits 1 (p0 write) and 2 (p1 read)
    ACCESSES = (
        (0, (), (5,)),          # p0 writes 5
        (0, (), (9,)),          # p0 writes 9 (no conflict)
        (1, (5,), (7,)),        # p1 reads 5 -> races with commit 0
    )

    def test_racing_pairs_finds_the_conflict(self):
        pairs = racing_pairs(self.ACCESSES)
        assert [(p.first_index, p.second_index, p.kind)
                for p in pairs] == [(0, 2, "w-w") if False else
                                    (0, 2, "w-r")]
        assert pairs[0].first_proc == 0
        assert pairs[0].second_proc == 1

    def test_same_processor_never_races(self):
        pairs = racing_pairs(((0, (), (5,)), (0, (5,), (5,))))
        assert pairs == []

    def test_branch_prefix_reverses_the_pair(self):
        grant = [0, 0, 1]
        [pair] = racing_pairs(self.ACCESSES)
        assert branch_prefix(grant, pair) == (1,)

    def test_offer_deduplicates(self):
        frontier = Frontier()
        plan = SchedulePlan(prefix=(1, 0))
        assert frontier.offer(plan)
        assert not frontier.offer(SchedulePlan(prefix=(1, 0)))
        assert len(frontier) == 1
        assert frontier.pop() == plan
        assert frontier.pop() is None
        # popped plans stay seen
        assert not frontier.offer(plan)

    def test_mark_seen_blocks_future_offers(self):
        frontier = Frontier()
        plan = SchedulePlan(seed=9)
        assert frontier.mark_seen(plan)
        assert not frontier.mark_seen(plan)
        assert not frontier.offer(plan)
        assert len(frontier) == 0

    def test_expand_queues_the_reversal(self):
        frontier = Frontier()
        added = frontier.expand([0, 0, 1], self.ACCESSES)
        assert added == 1
        assert frontier.pop() == SchedulePlan(prefix=(1,))


class TestReport:
    def test_schedule_result_rejects_unknown_outcomes(self):
        with pytest.raises(ValueError):
            ScheduleResult(plan={}, source="pct", outcome="exploded")

    def test_jsonl_round_trip(self, tmp_path):
        report = ExploreReport(app="zoo:lost-update", mode="order_only",
                               campaign_seed=3, budget=10)
        report.add(ScheduleResult(
            plan=SchedulePlan().as_dict(), source="baseline",
            outcome="pass", classification="invariant-held",
            spec_hash="abc", commits=15))
        report.add(ScheduleResult(
            plan=SchedulePlan(prefix=(1, 0)).as_dict(), source="dpor",
            outcome="failure", classification="invariant-violated",
            detail="lost update", spec_hash="def", commits=15))
        path = report.write_jsonl(tmp_path / "campaign.jsonl")
        back = read_explore_report(path)
        assert back.app == report.app
        assert back.count == 2
        assert [r.as_dict() for r in back.results] \
            == [r.as_dict() for r in report.results]
        assert back.outcome_counts() == report.outcome_counts()
        assert not back.clean
        # Every line is valid JSON with a known kind.
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["explore-schedule", "explore-schedule",
                         "explore-summary"]

    def test_truncated_report_is_rejected(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(json.dumps(
            {"kind": "explore-schedule", "plan": {}, "source": "pct",
             "outcome": "pass"}) + "\n")
        with pytest.raises(ValueError, match="summary"):
            read_explore_report(path)


class TestHunting:
    @pytest.mark.parametrize("mode", ORDER_MODES)
    @pytest.mark.parametrize("name", BUGGY)
    def test_explorer_cracks_every_specimen(self, name, mode):
        report = run_exploration(f"zoo:{name}", mode, budget=40,
                                 campaign_seed=5)
        assert report.failures, report.summary()
        bisection = report.bisection
        assert bisection and "error" not in bisection
        assert bisection["verified"], bisection
        assert 0 < bisection["prefix_length"] \
            <= bisection["full_length"]

    @pytest.mark.parametrize("name", BUGGY)
    def test_picolog_detects_on_its_token_schedule(self, name):
        report = run_exploration(f"zoo:{name}", ExecutionMode.PICOLOG,
                                 budget=10, campaign_seed=5)
        assert report.count == 1          # one schedule exists
        assert report.failures
        assert report.bisection["prefix_length"] == 0
        assert report.bisection["verified"]

    def test_minimal_prefix_is_minimal(self):
        report = run_exploration("zoo:atomicity-violation",
                                 ExecutionMode.ORDER_ONLY,
                                 budget=40, campaign_seed=5)
        prefix = tuple(report.bisection["plan"]["prefix"])
        assert len(prefix) == report.bisection["prefix_length"]

        def outcome_of(p):
            spec = RunSpec.explore("zoo:atomicity-violation",
                                   ExecutionMode.ORDER_ONLY, prefix=p)
            return execute_explore_spec(spec)["metrics"]["outcome"]

        assert outcome_of(prefix) == "failure"
        assert outcome_of(prefix[:-1]) == "pass"

    def test_minimal_recording_replays_in_the_debugger(self):
        from repro.debugger.controller import ReplayController
        from repro.explore.bisect import MinimalRepro

        report = run_exploration("zoo:lost-update",
                                 ExecutionMode.ORDER_ONLY,
                                 budget=40, campaign_seed=5)
        minimal = MinimalRepro(**{
            key: value for key, value in report.bisection.items()
            if key != "kind"})
        controller = ReplayController(minimal.recording(),
                                      verify=True)
        stop = controller.cont()
        assert stop.reason == "end"
        # The failing final state is reproduced bit-for-bit.
        check = __import__("repro.workloads.bugzoo",
                           fromlist=["zoo_specimen"])
        specimen = check.zoo_specimen("lost-update")
        memory = {addr: value for addr, value
                  in controller.memory_view().items()}
        assert not specimen.check(memory).ok

    def test_same_campaign_seed_same_campaign(self):
        kwargs = dict(budget=40, campaign_seed=9)
        first = run_exploration("zoo:order-violation",
                                ExecutionMode.ORDER_ONLY, **kwargs)
        second = run_exploration("zoo:order-violation",
                                 ExecutionMode.ORDER_ONLY, **kwargs)
        def stable(results):
            return [{key: value for key, value
                     in result.as_dict().items()
                     if key != "wall_time"}   # host timing, not state
                    for result in results]

        assert stable(first.results) == stable(second.results)
        assert first.bisection == second.bisection

    def test_clean_workload_zero_false_positives(self):
        report = run_exploration("zoo:clean-rmw",
                                 ExecutionMode.ORDER_ONLY,
                                 budget=200, campaign_seed=7,
                                 stop_on_first=False, bisect=False)
        assert report.count >= 200
        assert report.clean, report.summary()
        assert report.bisection is None

    def test_outcomes_vocabulary_is_closed(self):
        report = run_exploration("zoo:lost-update",
                                 ExecutionMode.ORDER_ONLY,
                                 budget=20, campaign_seed=5)
        assert all(r.outcome in EXPLORE_OUTCOMES
                   for r in report.results)

    def test_telemetry_counters(self):
        from repro.telemetry import EventTracer

        tracer = EventTracer()
        report = run_exploration("zoo:atomicity-violation",
                                 ExecutionMode.ORDER_ONLY,
                                 budget=40, campaign_seed=5,
                                 tracer=tracer)
        counters = tracer.metrics.as_dict()
        assert counters["explore_schedules_run"] == report.count
        assert counters["explore_failures"] == len(report.failures)
        assert counters["explore_bisect_probes"] > 0


class TestRaceTargets:
    def test_exploration_targets_surface_the_race(self):
        from repro.analysis.races import exploration_targets
        from repro.core.modes import preferred_config
        from repro.machine.system import record_execution
        from repro.machine.timing import MachineConfig
        from repro.workloads.bugzoo import ZOO_TARGET, zoo_specimen

        # Under the racy prefix both updates commit interleaved, so
        # the contended word has two writers close together.
        recording = record_execution(
            zoo_specimen("lost-update").build(),
            machine_config=MachineConfig(),
            mode_config=preferred_config(ExecutionMode.ORDER_ONLY),
            schedule=SchedulePlan(
                prefix=(0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1)))
        targets = exploration_targets(recording)
        assert targets
        line_addresses = {target.address for target in targets}
        assert any(addr <= ZOO_TARGET < addr + 64
                   for addr in line_addresses)
        for target in targets:
            assert target.first_commit < target.second_commit
            assert target.prefix  # a runnable branch prescription
