"""Tests for the DeLoreanSystem public API and the replay source."""

import pytest

from conftest import counter_program, small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode, preferred_config
from repro.core.replayer import ReplayPerturbation, ReplaySource
from repro.errors import ConfigurationError, ReplayDivergenceError


class TestSystemConfiguration:
    def test_defaults(self):
        system = DeLoreanSystem()
        assert system.mode is ExecutionMode.ORDER_ONLY
        assert system.mode_config.standard_chunk_size == 2000

    def test_mode_config_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DeLoreanSystem(
                mode=ExecutionMode.PICOLOG,
                mode_config=preferred_config(ExecutionMode.ORDER_ONLY))

    def test_chunk_size_override(self):
        system = DeLoreanSystem(chunk_size=3000)
        assert system.mode_config.standard_chunk_size == 3000
        assert system.mode_config.cs_size_bits == 12

    def test_stratify_flag(self):
        system = DeLoreanSystem(stratify=True, chunks_per_stratum=3)
        assert system.mode_config.stratify
        assert system.mode_config.chunks_per_stratum == 3

    def test_recording_carries_memory_ordering_log(self):
        system = DeLoreanSystem(machine_config=small_config(),
                                chunk_size=64)
        recording = system.record(counter_program(2, 10))
        assert recording.memory_ordering is not None
        assert recording.log_bits_per_proc_per_kiloinst(False) > 0


class TestReplaySourceCursors:
    def _recording(self, mode=ExecutionMode.ORDER_ONLY):
        system = DeLoreanSystem(mode=mode,
                                machine_config=small_config(),
                                chunk_size=64)
        return system.record(counter_program(2, 10))

    def test_chunk_target_defaults_to_standard(self):
        source = ReplaySource(self._recording())
        target, reason = source.chunk_target(0, 1)
        assert target == 64

    def test_io_underflow_raises(self):
        source = ReplaySource(self._recording())
        with pytest.raises(ReplayDivergenceError):
            source.io_load(0, 0)

    def test_dma_underflow_raises(self):
        source = ReplaySource(self._recording())
        with pytest.raises(ReplayDivergenceError):
            source.next_dma_writes()

    def test_maybe_interrupt_none_without_entries(self):
        source = ReplaySource(self._recording())
        assert source.maybe_interrupt(0, 1) is None
        assert not source.has_pending_interrupts(0)

    def test_verify_fully_consumed_clean(self):
        source = ReplaySource(self._recording())
        assert source.verify_fully_consumed() == []

    def test_gate_for_only_in_picolog(self):
        source = ReplaySource(self._recording())
        assert source.gate_for(0, 0) is None


class TestRecordingsAreSelfDescribing:
    """A recording carries its own machine and mode configs, so replay
    is immune to the replaying system's configuration (the CLI relies
    on this: it rebuilds a system from the recording alone)."""

    def _recording(self):
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                machine_config=small_config(),
                                chunk_size=64)
        return system.record(counter_program(4, 12))

    def test_replay_through_differently_sized_system(self):
        recording = self._recording()
        other = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
        assert other.machine_config.num_processors != \
            recording.machine_config.num_processors
        result = other.replay(recording)
        assert result.determinism.matches

    def test_replay_through_other_mode_system(self):
        recording = self._recording()
        other = DeLoreanSystem(mode=ExecutionMode.PICOLOG)
        result = other.replay(recording)
        assert result.determinism.matches
        # The replay honoured the recording's mode: a PicoLog replay
        # would have run round-robin and tracked token statistics.
        assert "token_roundtrip_cycles" not in result.stats.token_summary

    def test_replay_through_other_chunk_size_system(self):
        recording = self._recording()
        other = DeLoreanSystem(chunk_size=3000)
        result = other.replay(recording)
        assert result.determinism.matches


class TestPerturbationPresets:
    def test_none_preset_is_quiet(self):
        pert = ReplayPerturbation.none()
        assert pert.commit_stall_probability == 0.0
        assert pert.cache_flip_rate == 0.0
        assert pert.chunk_validation_cycles == 0.0

    def test_default_matches_paper_methodology(self):
        """Section 6.2.1: 30% of commits stalled 10-300 cycles, 1.5%
        cache flips, parallel commit disabled."""
        pert = ReplayPerturbation()
        assert pert.commit_stall_probability == pytest.approx(0.30)
        assert pert.commit_stall_min_cycles == 10
        assert pert.commit_stall_max_cycles == 300
        assert pert.cache_flip_rate == pytest.approx(0.015)
        assert pert.disable_parallel_commit
