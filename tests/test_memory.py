"""Tests for main memory and the I/O / interrupt / DMA event types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.events import (
    DmaTransfer,
    InterruptEvent,
    IODevice,
    build_handler_ops,
)
from repro.machine.memory import MainMemory
from repro.machine.program import OpKind


class TestMainMemory:
    def test_unmapped_reads_zero(self):
        assert MainMemory().read(12345) == 0

    def test_write_read(self):
        memory = MainMemory()
        memory.write(7, 99)
        assert memory.read(7) == 99

    def test_values_masked_to_word(self):
        memory = MainMemory()
        memory.write(1, 1 << 70)
        assert memory.read(1) < (1 << 64)

    def test_initial_contents(self):
        memory = MainMemory({1: 10, 2: 20})
        assert memory.read(1) == 10
        assert memory.read(2) == 20

    def test_apply_is_atomic_batch(self):
        memory = MainMemory()
        memory.apply({1: 11, 2: 22, 3: 33})
        assert [memory.read(a) for a in (1, 2, 3)] == [11, 22, 33]

    def test_snapshot_restore(self):
        memory = MainMemory({5: 50})
        saved = memory.snapshot()
        memory.write(5, 0)
        memory.write(6, 60)
        memory.restore(saved)
        assert memory.read(5) == 50
        assert memory.read(6) == 0

    def test_snapshot_is_copy(self):
        memory = MainMemory({1: 1})
        saved = memory.snapshot()
        memory.write(1, 2)
        assert saved[1] == 1

    def test_nonzero_words_elides_zeros(self):
        memory = MainMemory()
        memory.write(1, 5)
        memory.write(2, 0)
        assert memory.nonzero_words() == {1: 5}

    @given(st.dictionaries(st.integers(min_value=0, max_value=1000),
                           st.integers(min_value=0,
                                       max_value=(1 << 64) - 1),
                           max_size=50))
    def test_apply_equals_individual_writes(self, writes):
        batched, sequential = MainMemory(), MainMemory()
        batched.apply(writes)
        for address, value in writes.items():
            sequential.write(address, value)
        assert batched.snapshot() == sequential.snapshot()


class TestIODevice:
    def test_deterministic_per_seed(self):
        a, b = IODevice(5), IODevice(5)
        assert [a.load(0) for _ in range(5)] == [
            b.load(0) for _ in range(5)]

    def test_different_seeds_differ(self):
        assert IODevice(1).load(0) != IODevice(2).load(0)

    def test_per_port_sequences(self):
        device = IODevice(3)
        first_port0 = device.load(0)
        first_port1 = device.load(1)
        assert first_port0 != first_port1

    def test_reset_rewinds(self):
        device = IODevice(9)
        first = device.load(4)
        device.load(4)
        device.reset()
        assert device.load(4) == first


class TestInterruptEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            InterruptEvent(time=-1, processor=0, vector=1)

    def test_zero_handler_rejected(self):
        with pytest.raises(ConfigurationError):
            InterruptEvent(time=0, processor=0, vector=1, handler_ops=0)


class TestDmaTransfer:
    def test_empty_writes_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaTransfer(time=0, writes={})

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaTransfer(time=-5, writes={1: 2})


class TestHandlerOps:
    def test_instruction_budget_matches_request(self):
        ops = build_handler_ops(vector=3, payload=77, handler_ops=50)
        total = sum(op.count if op.kind in (OpKind.COMPUTE,)
                    else 1 for op in ops)
        assert total == 50

    def test_deterministic_in_inputs(self):
        assert build_handler_ops(1, 2, 30) == build_handler_ops(1, 2, 30)
        assert build_handler_ops(1, 2, 30) != build_handler_ops(1, 3, 30)

    def test_touches_controller_region(self):
        from repro.machine.events import INTERRUPT_CONTROLLER_BASE
        ops = build_handler_ops(vector=8, payload=1, handler_ops=16)
        addresses = [op.address for op in ops
                     if op.kind is not OpKind.COMPUTE]
        assert all(a >= INTERRUPT_CONTROLLER_BASE for a in addresses)
