"""Tests for recording persistence (save/load round trips)."""

import pytest

from conftest import counter_program, small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.core.serialization import load_recording, save_recording
from repro.errors import IntegrityError, LogFormatError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.workloads.program_builder import shared_address


def make_recording(mode=ExecutionMode.ORDER_ONLY, with_system=False,
                   **kwargs):
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size,
                            **kwargs)
    program = counter_program(3, 12)
    if with_system:
        program.interrupts.append(InterruptEvent(
            time=300.0, processor=1, vector=4, handler_ops=20))
        program.dma_transfers.append(DmaTransfer(
            time=200.0, writes={shared_address(900): 77}))
    return system, system.record(program)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_logs_survive_round_trip(self, mode):
        _, recording = make_recording(mode, with_system=True)
        loaded = load_recording(save_recording(recording))
        assert loaded.pi_log.entries == recording.pi_log.entries
        for proc in recording.cs_logs:
            assert (loaded.cs_logs[proc].entries
                    == recording.cs_logs[proc].entries)
            assert (loaded.interrupt_logs[proc].entries
                    == recording.interrupt_logs[proc].entries)
            assert (loaded.io_logs[proc].values
                    == recording.io_logs[proc].values)
        assert loaded.dma_log.entries == recording.dma_log.entries
        assert (loaded.dma_log.commit_slots
                == recording.dma_log.commit_slots)
        assert loaded.final_memory == recording.final_memory
        assert loaded.mode_config == recording.mode_config

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_loaded_recording_replays_deterministically(self, mode):
        system, recording = make_recording(mode, with_system=True)
        loaded = load_recording(save_recording(recording))
        result = system.replay(loaded,
                               perturbation=ReplayPerturbation(seed=7))
        assert result.determinism.matches, result.determinism.summary()

    def test_stratified_recording_round_trip(self):
        system, recording = make_recording(stratify=True)
        loaded = load_recording(save_recording(recording))
        assert loaded.strata == recording.strata
        assert loaded.stratified
        result = system.replay(loaded, use_strata=True)
        assert result.determinism.matches


class TestFormatErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(LogFormatError):
            load_recording(b"NOPE" + b"\x00" * 32)

    def test_truncated_blob_rejected(self):
        _, recording = make_recording()
        blob = save_recording(recording)
        with pytest.raises(IntegrityError):
            load_recording(blob[: len(blob) // 2])

    @pytest.mark.parametrize("version", [1, 2])
    def test_truncation_never_leaks_raw_errors(self, version):
        """The satellite bugfix: damaged blobs raise typed
        IntegrityErrors, never struct.error/pickle errors/EOFError."""
        _, recording = make_recording()
        blob = save_recording(recording, version=version)
        for cut in range(0, len(blob), max(1, len(blob) // 50)):
            with pytest.raises(IntegrityError):
                load_recording(blob[:cut])

    def test_bad_version_rejected(self):
        _, recording = make_recording()
        blob = bytearray(save_recording(recording))
        blob[4] = 99
        with pytest.raises(LogFormatError):
            load_recording(bytes(blob))

    def test_blob_is_compact(self):
        """The wire format stores logs bit-packed, so the log sections
        are a tiny fraction of the (pickled, verification-heavy)
        trailer."""
        _, recording = make_recording()
        blob = save_recording(recording)
        assert len(blob) > 0
        # PI log bytes on the wire == ceil(entries * 4 / 8).
        pi_bytes = (len(recording.pi_log) * 4 + 7) // 8
        assert pi_bytes <= len(blob)


class TestIntervalCheckpointPersistence:
    def test_checkpoints_survive_round_trip_and_replay(self):
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(counter_program(3, 20),
                                  checkpoint_every=10)
        loaded = load_recording(save_recording(recording))
        assert len(loaded.interval_checkpoints) == len(
            recording.interval_checkpoints)
        checkpoint = loaded.interval_checkpoints.by_index(0)
        result = system.replay_interval(loaded, checkpoint=checkpoint)
        assert result.determinism.matches

    def test_storage_sizing_survives_round_trip(self):
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(counter_program(3, 20),
                                  checkpoint_every=5)
        loaded = load_recording(save_recording(recording))
        original = recording.interval_checkpoints
        assert loaded.interval_checkpoints.full_size_bits() == \
            original.full_size_bits()
        assert loaded.interval_checkpoints.delta_size_bits() == \
            original.delta_size_bits()
