"""Tests for the synthetic workload generators and presets."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.program import OpKind
from repro.workloads import (
    COMMERCIAL_APPS,
    SPLASH2_APPS,
    SyntheticSpec,
    build_program,
    commercial_program,
    commercial_spec,
    splash2_program,
    splash2_spec,
)
from repro.workloads.program_builder import (
    ProgramBuilder,
    lock_address,
    private_address,
    shared_address,
)


class TestProgramBuilder:
    def test_fluent_chain(self):
        builder = ProgramBuilder(1)
        builder.writer(0).load(1).store(2).compute(3).rmw(4)
        program = builder.build()
        kinds = [op.kind for op in program.threads[0]]
        assert kinds == [OpKind.LOAD, OpKind.STORE, OpKind.COMPUTE,
                         OpKind.RMW]

    def test_critical_section_helper(self):
        from repro.machine.program import Op
        builder = ProgramBuilder(1)
        builder.writer(0).critical_section(
            lock_address(0), [Op(OpKind.RMW, address=1)])
        kinds = [op.kind for op in builder.build().threads[0]]
        assert kinds == [OpKind.LOCK, OpKind.RMW, OpKind.UNLOCK]

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            ProgramBuilder(0)

    def test_events_sorted(self):
        from repro.machine.events import DmaTransfer, InterruptEvent
        builder = ProgramBuilder(1)
        builder.add_interrupt(InterruptEvent(time=50, processor=0,
                                             vector=1))
        builder.add_interrupt(InterruptEvent(time=10, processor=0,
                                             vector=2))
        builder.add_dma(DmaTransfer(time=99, writes={1: 1}))
        builder.add_dma(DmaTransfer(time=5, writes={2: 2}))
        program = builder.build()
        assert program.interrupts[0].vector == 2
        assert program.dma_transfers[0].writes == {2: 2}

    def test_address_helpers_disjoint(self):
        assert lock_address(0) != shared_address(0)
        assert private_address(0, 0) != private_address(1, 0)


class TestSyntheticGeneration:
    def test_generation_is_deterministic(self):
        spec = SyntheticSpec(name="t", work_items=40, seed=9)
        assert build_program(spec).threads == build_program(spec).threads

    def test_seed_changes_program(self):
        a = build_program(SyntheticSpec(name="t", work_items=40, seed=1))
        b = build_program(SyntheticSpec(name="t", work_items=40, seed=2))
        assert a.threads != b.threads

    def test_scaling_shrinks_work(self):
        spec = SyntheticSpec(name="t", work_items=100)
        small = spec.scaled(0.25)
        assert small.work_items == 25
        assert (build_program(small).total_static_ops()
                < build_program(spec).total_static_ops())

    def test_with_threads(self):
        spec = SyntheticSpec(name="t", work_items=10).with_threads(2)
        assert build_program(spec).num_threads == 2

    def test_imbalance_skews_thread_lengths(self):
        spec = SyntheticSpec(name="t", work_items=100, imbalance=1.0)
        program = build_program(spec)
        lengths = program.static_lengths()
        assert lengths[-1] > lengths[0]

    def test_io_rate_produces_io_ops(self):
        spec = SyntheticSpec(name="t", work_items=300, io_rate=0.1,
                             seed=3)
        program = build_program(spec)
        kinds = [op.kind for ops in program.threads for op in ops]
        assert OpKind.IO_LOAD in kinds

    def test_interrupt_generation(self):
        spec = SyntheticSpec(name="t", work_items=200,
                             interrupts_per_thousand_items=20)
        program = build_program(spec)
        assert program.interrupts
        assert all(e.processor < spec.num_threads
                   for e in program.interrupts)

    def test_dma_generation(self):
        spec = SyntheticSpec(name="t", work_items=100, dma_bursts=4)
        program = build_program(spec)
        assert len(program.dma_transfers) == 4

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticSpec(name="t", sharing_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SyntheticSpec(name="t", hot_fraction=0.6,
                          remote_read_fraction=0.6)

    def test_estimated_instructions_positive(self):
        spec = SyntheticSpec(name="t", work_items=50)
        assert spec.estimated_instructions_per_thread() > 0


class TestPresets:
    def test_all_eleven_splash2_apps_present(self):
        expected = {"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
                    "radiosity", "radix", "raytrace", "water-ns",
                    "water-sp"}
        assert set(SPLASH2_APPS) == expected

    def test_commercial_apps_present(self):
        assert set(COMMERCIAL_APPS) == {"sjbb2k", "sweb2005"}

    def test_splash2_has_no_system_references(self):
        """Section 5: SPLASH-2 runs without system references."""
        for name, spec in SPLASH2_APPS.items():
            assert spec.io_rate == 0.0, name
            assert spec.interrupts_per_thousand_items == 0.0, name
            assert spec.dma_bursts == 0, name

    def test_commercial_has_system_references(self):
        for name, spec in COMMERCIAL_APPS.items():
            assert spec.interrupts_per_thousand_items > 0, name
            assert spec.dma_bursts > 0, name
            assert spec.io_rate > 0, name

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            splash2_spec("volrend")   # fails in their infrastructure too
        with pytest.raises(ConfigurationError):
            commercial_spec("tpcc")

    def test_program_factories(self):
        program = splash2_program("fft", scale=0.05, seed=2)
        assert program.name == "fft"
        assert program.num_threads == 8
        program = commercial_program("sjbb2k", scale=0.05,
                                     num_threads=4)
        assert program.num_threads == 4

    def test_outlier_apps_are_conflict_heavy(self):
        """radix/raytrace are the paper's high-conflict outliers."""
        assert (SPLASH2_APPS["radix"].remote_write_fraction
                > SPLASH2_APPS["fft"].remote_write_fraction)
        assert (SPLASH2_APPS["raytrace"].imbalance
                > SPLASH2_APPS["fft"].imbalance)
