"""Tests for repro.guard: watchdogs, budgets, journals, degradation.

The stall-zoo workloads (``starvation``, ``squash-livelock``) genuinely
hang an unsupervised machine -- the first tests prove that -- and the
rest of the suite shows the supervisor converting each failure shape
into a typed, classified, recoverable outcome: StallError
classifications, budget enforcement at chunk boundaries, mode
degradation into stitched segments, and crash-consistent journals whose
flushed prefix survives SIGKILL.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path
from types import SimpleNamespace

import pytest

from conftest import small_config

import repro
from repro.cli import main
from repro.core.arbiter import RoundRobinPolicy
from repro.core.modes import ExecutionMode, preferred_config
from repro.errors import DeadlockError, SalvageError, StallError
from repro.faults.salvage import salvage_replay
from repro.guard import (
    Budgets,
    WatchdogConfig,
    WatchdogTimer,
    load_journal,
    load_segmented,
    replay_stitched,
    safer_mode,
    save_segmented,
    supervise_record,
    supervise_replay,
)
from repro.guard import supervisor as supervisor_module
from repro.guard.journal import load_journal_file
from repro.guard.watchdog import Watchdog, progress_key
from repro.machine.system import record_execution
from repro.machine.timing import MachineConfig
from repro.runner import Runner, RunSpec
from repro.runner import jobs as jobs_module
from repro.runner.pool import overdue_futures, sweep_deadline
from repro.runner.retry import RetryPolicy
from repro.telemetry.tracer import EventTracer
from repro.workloads.stress import (
    racey_program,
    squash_livelock_program,
    starvation_program,
)

#: Detection thresholds scaled down so stalls classify in well under a
#: second instead of after the production-sized event horizons.
TEST_WATCHDOG = WatchdogConfig(
    no_commit_events=8_000,
    no_progress_events=20_000,
    squash_window_events=6_000,
    squash_livelock_threshold=10,
    poll_stride=256,
)

ALL_MODES = [ExecutionMode.ORDER_AND_SIZE, ExecutionMode.ORDER_ONLY,
             ExecutionMode.PICOLOG]


def journal_config(chunk_size: int = 128):
    # Spin-inflated chunks overflow the small CS size fields of the
    # preferred configs, so journal/degrade tests widen the chunk.
    return preferred_config(ExecutionMode.ORDER_ONLY).with_chunk_size(
        chunk_size)


# -- the stall zoo hangs without supervision --------------------------


class TestStallZooHangsUnsupervised:
    @pytest.mark.parametrize("program", [
        starvation_program(), squash_livelock_program()],
        ids=["starvation", "squash-livelock"])
    def test_unsupervised_record_never_finishes(self, program):
        with pytest.raises(DeadlockError):
            record_execution(program, small_config(),
                             preferred_config(ExecutionMode.ORDER_ONLY),
                             max_events=40_000)


# -- watchdog classification ------------------------------------------


class TestWatchdogClassification:
    @pytest.mark.parametrize("mode", ALL_MODES,
                             ids=[m.value for m in ALL_MODES])
    def test_lock_starvation_detected_in_every_mode(self, mode):
        report = supervise_record(
            starvation_program(), mode=mode,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG)
        assert report.outcome == "stalled"
        assert report.classification == "lock-starvation"
        assert not report.ok
        assert report.stall["classification"] == "lock-starvation"

    @pytest.mark.parametrize("mode", ALL_MODES,
                             ids=[m.value for m in ALL_MODES])
    def test_squash_livelock_detected_in_every_mode(self, mode):
        report = supervise_record(
            squash_livelock_program(), mode=mode,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG)
        assert report.outcome == "stalled"
        assert report.classification == "squash-livelock"
        assert report.stall["squashes_in_window"] >= \
            TEST_WATCHDOG.squash_livelock_threshold

    def test_contended_but_progressing_run_is_not_flagged(self):
        # racey squashes constantly yet commits real progress: the
        # squash-livelock detector must not fire on mere contention.
        report = supervise_record(
            racey_program(threads=4, rounds=40, seed=3),
            mode=ExecutionMode.ORDER_ONLY,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG)
        assert report.outcome == "completed"
        assert report.classification is None
        assert report.recording is not None

    def test_supervised_matches_unsupervised_recording(self):
        program = racey_program(threads=4, rounds=30, seed=3)
        config = small_config()
        mode_config = preferred_config(ExecutionMode.ORDER_ONLY)
        plain = record_execution(
            program, replace(
                config,
                standard_chunk_size=mode_config.standard_chunk_size),
            mode_config)
        report = supervise_record(
            program, mode=ExecutionMode.ORDER_ONLY,
            machine_config=config, watchdog_config=TEST_WATCHDOG)
        assert report.outcome == "completed"
        assert report.recording.fingerprints == plain.fingerprints
        assert report.recording.final_memory == plain.final_memory

    def test_stall_metrics_and_report_shape(self):
        tracer = EventTracer()
        report = supervise_record(
            starvation_program(), mode=ExecutionMode.ORDER_ONLY,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG, tracer=tracer)
        metrics = tracer.metrics
        assert metrics.counter("guard_stalls_detected").value == 1
        assert metrics.counter("guard_stall_lock-starvation").value == 1
        assert "classification: lock-starvation" in report.summary()
        as_dict = report.as_dict()
        assert as_dict["outcome"] == "stalled"
        assert "recording" not in as_dict


class _StubProc:
    def __init__(self, proc_id: int) -> None:
        self.proc_id = proc_id
        self.outstanding = []
        self.ops = []
        self.committed_count = 0
        self.spec_state = SimpleNamespace(
            op_index=0, finished=False, compute_remaining=0,
            stage=None, barrier_target=None, in_handler=False)

    def has_uncommitted_work(self) -> bool:
        return True


def _stub_machine(*, is_replay=False, round_robin=False,
                  pending=(), committing=()):
    policy = (RoundRobinPolicy(2, lambda proc: True)
              if round_robin else object())
    return SimpleNamespace(
        engine=SimpleNamespace(events_processed=0, now=0.0,
                               pending=lambda: 3),
        processors=[_StubProc(0), _StubProc(1)],
        arbiter=SimpleNamespace(
            policy=policy,
            pending=[SimpleNamespace(processor=p) for p in pending],
            committing=[SimpleNamespace(processor=p)
                        for p in committing],
            grant_count=0),
        is_replay=is_replay,
    )


class TestWatchdogUnit:
    """The no-commit classifier split, on stub machines."""

    CONFIG = WatchdogConfig(no_commit_events=100,
                            no_progress_events=10_000)

    def _stalled(self, machine) -> StallError:
        watchdog = Watchdog(machine, self.CONFIG)
        machine.engine.events_processed = 200
        with pytest.raises(StallError) as info:
            watchdog.poll()
        return info.value

    def test_no_commit_in_replay_is_replay_stall(self):
        error = self._stalled(_stub_machine(is_replay=True))
        assert error.classification == "replay-stall"

    def test_token_parked_with_requests_is_token_starvation(self):
        error = self._stalled(_stub_machine(round_robin=True,
                                            pending=(0,)))
        assert error.classification == "token-starvation"
        assert "token_pointer" in error.details

    def test_no_commit_otherwise_is_gcc_stagnation(self):
        error = self._stalled(_stub_machine(round_robin=True,
                                            pending=(0,),
                                            committing=(1,)))
        assert error.classification == "gcc-stagnation"

    def test_commit_notes_reset_the_detector(self):
        machine = _stub_machine()
        watchdog = Watchdog(machine, self.CONFIG)
        machine.engine.events_processed = 90
        watchdog.note_commit(1)
        machine.engine.events_processed = 180
        watchdog.poll()  # only 90 events since the commit

    def test_progress_key_ignores_speculative_wiggle(self):
        proc = _StubProc(0)
        key = progress_key(proc)
        proc.spec_state.op_index += 1
        assert progress_key(proc) != key


# -- budgets ----------------------------------------------------------


class TestBudgets:
    def test_deadline_budget_is_typed_and_non_degradable(self):
        # Small chunks so the run crosses enough commit boundaries to
        # reach a budget charge (charges land every few commits).
        report = supervise_record(
            racey_program(threads=4, rounds=120, seed=3),
            mode=ExecutionMode.ORDER_ONLY,
            mode_config=journal_config(),
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG,
            budgets=Budgets(deadline_seconds=1e-9))
        assert report.outcome == "budget-exceeded"
        assert report.classification == "budget:deadline"
        assert not report.ok

    def test_log_budget_without_degradation_fails_typed(self):
        report = supervise_record(
            racey_program(threads=4, rounds=400, seed=3),
            mode=ExecutionMode.PICOLOG,
            mode_config=preferred_config(
                ExecutionMode.PICOLOG).with_chunk_size(128),
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG,
            stochastic_overflow_rate=0.5,
            budgets=Budgets(max_log_bytes_per_proc=60),
            degrade=False)
        assert report.outcome == "budget-exceeded"
        assert report.classification == "budget:log-bytes"


# -- degradation ------------------------------------------------------


def degraded_report(tmp_path=None, verify=False):
    return supervise_record(
        racey_program(threads=4, rounds=400, seed=3),
        mode=ExecutionMode.PICOLOG,
        mode_config=preferred_config(
            ExecutionMode.PICOLOG).with_chunk_size(128),
        machine_config=small_config(),
        watchdog_config=TEST_WATCHDOG,
        stochastic_overflow_rate=0.5,
        budgets=Budgets(max_log_bytes_per_proc=60),
        verify_segments=verify,
        journal_path=(str(tmp_path / "journal.dlrnj")
                      if tmp_path else None))


class TestDegradation:
    def test_safer_mode_ladder(self):
        assert safer_mode(ExecutionMode.PICOLOG) is \
            ExecutionMode.ORDER_ONLY
        assert safer_mode(ExecutionMode.ORDER_ONLY) is \
            ExecutionMode.ORDER_AND_SIZE
        assert safer_mode(ExecutionMode.ORDER_AND_SIZE) is None

    def test_log_budget_degrades_into_stitched_segments(self):
        report = degraded_report()
        assert report.outcome == "degraded-completed"
        assert report.ok
        assert report.modes[:2] == ["picolog", "order_only"]
        assert len(report.segments) >= 2
        assert report.segments[0]["reason"] == "degraded:log-bytes"
        assert report.segments[-1]["reason"] == "completed"
        assert report.segmented is not None
        stitched = replay_stitched(report.segmented)
        assert stitched.matches
        assert stitched.continuity_breaks == []
        assert stitched.total_commits == report.segmented.total_commits

    def test_segmented_container_round_trips(self, tmp_path):
        report = degraded_report()
        path = tmp_path / "run.dlrnseg"
        path.write_bytes(save_segmented(report.segmented))
        loaded = load_segmented(path.read_bytes())
        assert loaded.program_name == report.segmented.program_name
        assert loaded.total_commits == report.segmented.total_commits
        assert loaded.modes == report.segmented.modes
        assert replay_stitched(loaded).matches

    def test_load_segmented_rejects_garbage(self):
        with pytest.raises(SalvageError):
            load_segmented(b"not a segmented recording at all")

    def test_verification_divergence_escalates_the_mode(self,
                                                        monkeypatch):
        attempts = []

        def forced_verify(recording, stop_after):
            attempts.append(recording.mode_config.mode)
            if recording.mode_config.mode is ExecutionMode.PICOLOG:
                return False, "forced divergence"
            return True, "ok"

        monkeypatch.setattr(supervisor_module, "_verify_segment",
                            forced_verify)
        report = supervise_record(
            racey_program(threads=4, rounds=30, seed=3),
            mode=ExecutionMode.PICOLOG,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG,
            verify_segments=True, verify_attempts=2)
        assert report.outcome == "completed"
        assert report.mode == "order_only"
        assert report.modes == ["picolog", "order_only"]
        # Two same-mode attempts before escalating.
        assert attempts.count(ExecutionMode.PICOLOG) == 2
        assert report.verification == {"matches": True}

    def test_debugger_opens_a_degraded_segment(self, tmp_path):
        from repro.debugger import ReplayController, load_debug_target

        report = degraded_report()
        path = tmp_path / "run.dlrnseg"
        path.write_bytes(save_segmented(report.segmented))
        recording, checkpoint = load_debug_target(str(path), segment=1)
        assert checkpoint is not None
        assert checkpoint.commit_index == 0
        controller = ReplayController(
            recording, start_checkpoint=checkpoint)
        stop = controller.cont()
        assert stop.reason == "end"
        assert controller.gcc == len(recording.fingerprints)

    def test_debug_target_rejects_bad_segment_index(self, tmp_path):
        from repro.debugger import load_debug_target
        from repro.errors import ReproError

        report = degraded_report()
        path = tmp_path / "run.dlrnseg"
        path.write_bytes(save_segmented(report.segmented))
        with pytest.raises(ReproError):
            load_debug_target(str(path), segment=99)


# -- journals ---------------------------------------------------------


class TestJournal:
    def recorded_journal(self, tmp_path):
        path = tmp_path / "journal.dlrnj"
        report = supervise_record(
            racey_program(threads=4, rounds=120, seed=3),
            mode=ExecutionMode.ORDER_ONLY,
            mode_config=journal_config(),
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG,
            journal_path=str(path), flush_every=1)
        assert report.outcome == "completed"
        return path, report

    def test_complete_journal_recovers_the_full_recording(
            self, tmp_path):
        path, report = self.recorded_journal(tmp_path)
        recording, info = load_journal_file(str(path))
        assert info.complete
        assert info.flushes >= 2
        assert info.flushed_commits == report.global_commits
        assert (recording.fingerprints
                == report.recording.fingerprints)
        assert salvage_replay(recording).coverage == 1.0

    def test_random_truncation_leaves_salvageable_prefix(
            self, tmp_path):
        path, report = self.recorded_journal(tmp_path)
        blob = path.read_bytes()
        rng = random.Random(7)
        cuts = sorted(rng.randrange(64, len(blob))
                      for _ in range(8)) + [len(blob) - 1]
        recovered = 0
        for cut in cuts:
            try:
                recording, info = load_journal(blob[:cut])
            except SalvageError:
                continue  # cut before the first flush completed
            recovered += 1
            assert info.flushed_commits == len(recording.fingerprints)
            assert info.flushed_commits <= report.global_commits
            assert not info.complete
            report_salvage = salvage_replay(recording)
            assert report_salvage.coverage == 1.0
            assert (report_salvage.verified_commits
                    == info.flushed_commits)
        assert recovered >= 1

    def test_truncation_before_first_flush_has_no_prefix(
            self, tmp_path):
        import struct

        path, _ = self.recorded_journal(tmp_path)
        blob = path.read_bytes()
        # Cut a few bytes into the first epoch: the preamble survives
        # but no flush marker ever completed.
        (header_len,) = struct.unpack_from(">I", blob, 5)
        with pytest.raises(SalvageError,
                           match="no completed flush point"):
            load_journal(blob[:13 + header_len + 10])

    def test_sigkill_leaves_loadable_salvageable_prefix(
            self, tmp_path):
        path = tmp_path / "journal.dlrnj"
        script = (
            "import sys\n"
            "from repro.core.modes import ExecutionMode, "
            "preferred_config\n"
            "from repro.guard import supervise_record\n"
            "from repro.workloads.stress import racey_program\n"
            "cfg = preferred_config(ExecutionMode.ORDER_ONLY)"
            ".with_chunk_size(128)\n"
            "supervise_record(racey_program(threads=4, rounds=20000, "
            "seed=3), mode=ExecutionMode.ORDER_ONLY, mode_config=cfg, "
            "journal_path=sys.argv[1], flush_every=1)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(repro.__file__).resolve().parents[1])
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(path)], env=env)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail("recording finished before the kill; "
                                "grow the workload")
                try:
                    _, info = load_journal(path.read_bytes())
                    if info.flushes >= 2:
                        break
                except (OSError, SalvageError, Exception):
                    pass
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        recording, info = load_journal_file(str(path))
        assert not info.complete  # SIGKILL, not a clean close
        assert info.flushed_commits == len(recording.fingerprints)
        assert info.flushed_commits >= 1
        report = salvage_replay(recording)
        assert report.coverage == 1.0
        assert report.verified_commits == info.flushed_commits


# -- supervised replay ------------------------------------------------


class TestSupervisedReplay:
    def test_clean_replay_completes_and_verifies(self):
        report = supervise_record(
            racey_program(threads=4, rounds=30, seed=3),
            mode=ExecutionMode.ORDER_ONLY,
            machine_config=small_config(),
            watchdog_config=TEST_WATCHDOG)
        replay = supervise_replay(report.recording,
                                  watchdog_config=TEST_WATCHDOG)
        assert replay.outcome == "completed"
        assert replay.phase == "replay"
        assert replay.verification["matches"]


# -- the runner's layered deadline enforcement ------------------------


def _busy_job(spec, cache=None):
    # Compute-bound: the in-worker async-raise watchdog can land.
    deadline = time.monotonic() + 8.0
    while time.monotonic() < deadline:
        pass
    return {"schema": 1}


def _stubborn_job(spec, cache=None):
    # Defeats the in-worker SIGALRM *and* sleeps in C, so only the
    # pool's deadline sweep can collect it.
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
    time.sleep(2.5)
    return {"schema": 1}


class TestRunnerDeadlines:
    def test_sweep_deadline_adds_margin(self):
        assert sweep_deadline(10.0) == 15.0
        assert sweep_deadline(0.1) == pytest.approx(1.1)

    def test_overdue_futures_helper(self):
        class Future:
            def __init__(self, finished=False):
                self.finished = finished

            def done(self):
                return self.finished

        future, stale, done = Future(), Future(), Future(True)
        pending = {future: "entry"}
        deadlines = {future: 10.0, stale: 1.0}
        assert overdue_futures(pending, deadlines, 11.0) == [future]
        assert overdue_futures(pending, deadlines, 9.0) == []
        assert overdue_futures({done: "entry"}, {done: 1.0}, 2.0) == []

    def test_worker_thread_timeout_uses_watchdog_timer(self):
        spec = RunSpec.record("fft", ExecutionMode.ORDER_ONLY,
                              scale=0.05, seed=3)
        result = {}

        def run():
            result["envelope"] = jobs_module.invoke(
                _busy_job, spec, 0.4, None, None)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=20)
        assert not thread.is_alive()
        envelope = result["envelope"]
        assert envelope["ok"] is False
        assert envelope["error_type"] == "JobTimeout"
        assert envelope["wall_time"] < 6.0

    def test_pool_sweep_collects_c_wedged_jobs(self):
        specs = [RunSpec.record("fft", ExecutionMode.ORDER_ONLY,
                                scale=0.05, seed=seed)
                 for seed in (31, 32)]
        runner = Runner(jobs=2, cache=False, timeout=0.2,
                        retry=RetryPolicy(max_attempts=1),
                        job_fn=_stubborn_job)
        outcomes = runner.run(specs)
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.failure.last.error_type == "JobTimeout"
            assert "pool sweep" in outcome.failure.last.message
        assert runner.metrics.swept == 2


class TestWatchdogTimer:
    class Boom(Exception):
        pass

    def test_interrupts_compute_bound_code(self):
        deadline = time.monotonic() + 8.0
        with pytest.raises(self.Boom):
            with WatchdogTimer(0.2, self.Boom) as timer:
                while time.monotonic() < deadline:
                    pass
        assert timer.fired

    def test_cancel_disarms(self):
        timer = WatchdogTimer(0.05, self.Boom).start()
        timer.cancel()
        time.sleep(0.15)
        assert not timer.fired


# -- CLI --------------------------------------------------------------


class TestSupervisedCli:
    def test_stalling_workload_exits_classified(self, capsys):
        code = main(["record", "squash-livelock", "--supervised"])
        out = capsys.readouterr().out
        assert code == 2
        assert "outcome: stalled" in out
        assert "classification: squash-livelock" in out

    def test_healthy_supervised_record_writes_artifacts(
            self, tmp_path, capsys):
        journal = tmp_path / "run.dlrnj"
        artifact = tmp_path / "run.dlrn"
        code = main(["record", "racey", "--scale", "0.1", "--seed",
                     "3", "--supervised", "--flush-every", "1",
                     "--journal", str(journal), "-o", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "outcome: completed" in out
        assert artifact.stat().st_size > 0
        recording, info = load_journal_file(str(journal))
        assert info.complete
        assert salvage_replay(recording).coverage == 1.0

    def test_stress_workloads_reachable_from_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["record", "starvation", "--supervised"])
        assert args.supervised
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record", "nonexistent-app"])
