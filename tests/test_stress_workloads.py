"""Tests for the determinism-stress workload generators."""

import pytest

from conftest import small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.workloads.program_builder import shared_address
from repro.workloads.stress import (
    RACEY_CELLS,
    handoff_program,
    racey_cell,
    racey_program,
)


def run_with_chunk(program, chunk_size, mode=ExecutionMode.ORDER_ONLY):
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=chunk_size)
    return system, system.record(program)


def signature_of(memory):
    value = 0
    for index in range(RACEY_CELLS):
        value ^= memory.get(racey_cell(index), 0)
    return value


class TestRaceyKernel:
    def test_generation_deterministic(self):
        assert (racey_program(seed=5).threads
                == racey_program(seed=5).threads)
        assert (racey_program(seed=5).threads
                != racey_program(seed=6).threads)

    def test_interleaving_sensitivity(self):
        """Different chunk geometry => different interleaving =>
        different final signature (the kernel's whole point)."""
        signatures = set()
        for chunk_size in (48, 64, 80, 96):
            _, recording = run_with_chunk(
                racey_program(threads=4, rounds=60, seed=3), chunk_size)
            signatures.add(signature_of(recording.final_memory))
        assert len(signatures) >= 3

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_replays_exactly_in_every_mode(self, mode):
        system, recording = run_with_chunk(
            racey_program(threads=4, rounds=50, seed=8), 64, mode)
        reference = signature_of(recording.final_memory)
        result = system.replay(recording,
                               perturbation=ReplayPerturbation(seed=4))
        assert result.determinism.matches
        assert signature_of(result.final_memory) == reference

    def test_cells_are_line_disjoint(self):
        lines = {racey_cell(index) >> 3 for index in range(RACEY_CELLS)}
        assert len(lines) == RACEY_CELLS


class TestHandoffKernel:
    def test_token_makes_all_hops(self):
        """laps x threads mix steps transform the token value."""
        from repro.machine.program import compute_mix
        threads, laps = 4, 5
        _, recording = run_with_chunk(
            handoff_program(threads=threads, laps=laps), 64)
        token = shared_address(0x2000)
        expected = 7
        for _ in range(threads * laps):
            expected = compute_mix(expected, 15)
        assert recording.final_memory[token] == expected

    def test_gates_end_consistently(self):
        """After the final lap every gate except thread 0's is open
        exactly once more... i.e., gate 0 ends released by thread N-1,
        all other gates end held (re-acquired, never re-released)."""
        threads = 4
        _, recording = run_with_chunk(
            handoff_program(threads=threads, laps=3), 64)
        gate = lambda i: shared_address(0x1000 + i * 8)
        assert recording.final_memory.get(gate(0), 0) == 0
        for index in range(1, threads):
            assert recording.final_memory.get(gate(index), 0) == 1

    @pytest.mark.parametrize("mode", [ExecutionMode.ORDER_ONLY,
                                      ExecutionMode.PICOLOG])
    def test_spin_counts_replay_without_cs_entries(self, mode):
        """The handoff's spins are wholly interleaving-dependent and
        reproduce from commit order alone -- no CS entries needed for
        them (only stochastic overflow would add entries, disabled
        here; Order&Size is excluded since it logs every size by
        design)."""
        config = small_config()
        system = DeLoreanSystem(mode=mode, machine_config=config,
                                chunk_size=64,
                                stochastic_overflow_rate=0.0)
        recording = system.record(handoff_program(threads=4, laps=4))
        assert sum(len(log) for log in recording.cs_logs.values()) == 0
        result = system.replay(recording,
                               perturbation=ReplayPerturbation(seed=6))
        assert result.determinism.matches

    def test_two_thread_minimal_ring(self):
        system, recording = run_with_chunk(
            handoff_program(threads=2, laps=3), 64)
        assert system.replay(recording).determinism.matches
