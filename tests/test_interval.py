"""Tests for interval replay (Appendix B: replay of I(n, m))."""

import pytest

from conftest import counter_program, small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.interval import IntervalCheckpoint, IntervalCheckpointStore
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.errors import ConfigurationError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.machine.program import ThreadState
from repro.workloads.program_builder import shared_address


def make_system(mode=ExecutionMode.ORDER_ONLY):
    config = small_config()
    return DeLoreanSystem(mode=mode, machine_config=config,
                          chunk_size=config.standard_chunk_size)


def full_system_program():
    program = counter_program(4, 25)
    program.interrupts.extend([
        InterruptEvent(time=400.0, processor=1, vector=3,
                       handler_ops=20),
        InterruptEvent(time=900.0, processor=3, vector=8,
                       handler_ops=24, high_priority=True),
    ])
    program.dma_transfers.append(DmaTransfer(
        time=600.0, writes={shared_address(800): 55}))
    return program


class TestCheckpointCapture:
    def test_checkpoints_taken_at_interval(self):
        system = make_system()
        recording = system.record(counter_program(3, 20),
                                  checkpoint_every=8)
        store = recording.interval_checkpoints
        assert len(store) >= 1
        for position, checkpoint in enumerate(store):
            assert checkpoint.commit_index == 8 * (position + 1)

    def test_no_checkpoints_by_default(self):
        system = make_system()
        recording = system.record(counter_program(2, 10))
        assert len(recording.interval_checkpoints) == 0

    def test_checkpoint_counts_are_consistent(self):
        system = make_system()
        recording = system.record(counter_program(3, 20),
                                  checkpoint_every=8)
        for checkpoint in recording.interval_checkpoints:
            non_dma = [f for f in recording.fingerprints[
                :checkpoint.commit_index] if f[0] != "dma"]
            assert checkpoint.processor_grants == len(non_dma)
            by_proc = {}
            for fingerprint in non_dma:
                by_proc[fingerprint[0]] = by_proc.get(
                    fingerprint[0], 0) + 1
            for proc, count in by_proc.items():
                assert checkpoint.committed_counts[proc] == count

    def test_checkpoint_memory_matches_prefix_application(self):
        from conftest import apply_fingerprint_writes
        system = make_system()
        program = counter_program(3, 20)
        recording = system.record(program, checkpoint_every=8)
        for checkpoint in recording.interval_checkpoints:
            rebuilt = apply_fingerprint_writes(
                program.initial_memory,
                recording.fingerprints[:checkpoint.commit_index])
            image = {a: v for a, v in checkpoint.memory_image.items()
                     if v != 0}
            assert rebuilt == image


class TestIntervalReplay:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_every_checkpoint_replays(self, mode):
        system = make_system(mode)
        recording = system.record(counter_program(4, 25),
                                  checkpoint_every=10)
        assert len(recording.interval_checkpoints) >= 2
        for checkpoint in recording.interval_checkpoints:
            result = system.replay_interval(
                recording, checkpoint=checkpoint,
                perturbation=ReplayPerturbation(
                    seed=checkpoint.commit_index))
            assert result.determinism.matches, (
                mode, checkpoint.commit_index,
                result.determinism.summary())

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_interval_replay_with_system_events(self, mode):
        """Interrupts, DMA and I/O that straddle the checkpoint must
        resume from the right log cursors."""
        system = make_system(mode)
        recording = system.record(full_system_program(),
                                  checkpoint_every=12)
        for checkpoint in recording.interval_checkpoints:
            result = system.replay_interval(
                recording, checkpoint=checkpoint,
                perturbation=ReplayPerturbation(seed=5))
            assert result.determinism.matches, (
                mode, checkpoint.commit_index,
                result.determinism.summary())

    def test_at_commit_selects_checkpoint(self):
        system = make_system()
        recording = system.record(counter_program(4, 25),
                                  checkpoint_every=10)
        result = system.replay_interval(recording, at_commit=15)
        assert result.determinism.matches
        # 15 -> the gcc=10 checkpoint: replays the suffix from there.
        suffix = len(recording.fingerprints) - 10
        assert result.determinism.compared_chunks == suffix

    def test_final_memory_matches_recording(self):
        system = make_system()
        recording = system.record(counter_program(4, 25),
                                  checkpoint_every=10)
        checkpoint = recording.interval_checkpoints.by_index(0)
        result = system.replay_interval(recording,
                                        checkpoint=checkpoint)
        assert result.final_memory == recording.final_memory

    def test_missing_checkpoints_rejected(self):
        system = make_system()
        recording = system.record(counter_program(2, 10))
        with pytest.raises(ConfigurationError):
            system.replay_interval(recording, at_commit=5)

    def test_checkpoint_or_at_commit_required(self):
        system = make_system()
        recording = system.record(counter_program(2, 10),
                                  checkpoint_every=4)
        with pytest.raises(ConfigurationError):
            system.replay_interval(recording)

    def test_stratified_interval_replay_rejected(self):
        from repro.machine.system import replay_execution
        config = small_config()
        system = DeLoreanSystem(
            mode=ExecutionMode.ORDER_ONLY, machine_config=config,
            chunk_size=config.standard_chunk_size, stratify=True)
        recording = system.record(counter_program(3, 15),
                                  checkpoint_every=8)
        checkpoint = recording.interval_checkpoints.by_index(0)
        with pytest.raises(ConfigurationError):
            replay_execution(recording, use_strata=True,
                             start_checkpoint=checkpoint)


class TestCheckpointStore:
    def _checkpoint(self, gcc):
        return IntervalCheckpoint(
            commit_index=gcc, memory_image={}, thread_states={},
            committed_counts={}, io_consumed={}, dma_consumed=0)

    def test_order_enforced(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(10))
        with pytest.raises(ConfigurationError):
            store.add(self._checkpoint(10))

    def test_at_or_before(self):
        store = IntervalCheckpointStore()
        for gcc in (10, 20, 30):
            store.add(self._checkpoint(gcc))
        assert store.at_or_before(25).commit_index == 20
        assert store.at_or_before(30).commit_index == 30
        with pytest.raises(ConfigurationError):
            store.at_or_before(5)

    def test_by_index_bounds(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(10))
        assert store.by_index(0).commit_index == 10
        with pytest.raises(ConfigurationError):
            store.by_index(1)

    def test_negative_commit_index_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalCheckpoint(
                commit_index=-1, memory_image={}, thread_states={},
                committed_counts={}, io_consumed={}, dma_consumed=0)

    def test_thread_states_are_snapshots(self):
        state = ThreadState(thread_id=0, op_index=5)
        checkpoint = IntervalCheckpoint(
            commit_index=1, memory_image={}, thread_states={0: state},
            committed_counts={0: 1}, io_consumed={}, dma_consumed=0)
        assert checkpoint.thread_states[0].op_index == 5


class TestCheckpointStorageSizing:
    def _checkpoint(self, gcc, image):
        return IntervalCheckpoint(
            commit_index=gcc, memory_image=image, thread_states={},
            committed_counts={}, io_consumed={}, dma_consumed=0)

    def test_single_checkpoint_delta_equals_full(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, {0x10: 1, 0x20: 2}))
        assert store.delta_size_bits() == store.full_size_bits()

    def test_identical_images_cost_only_cursors(self):
        image = {address: address * 3 for address in range(64)}
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, dict(image)))
        store.add(self._checkpoint(10, dict(image)))
        pair = 64  # 32-bit address + 32-bit value
        full = store.full_size_bits()
        delta = store.delta_size_bits()
        # The second checkpoint's image is free under delta encoding.
        assert full - delta == len(image) * pair

    def test_changed_and_added_lines_billed(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, {0x10: 1, 0x20: 2}))
        store.add(self._checkpoint(10, {0x10: 9, 0x20: 2, 0x30: 3}))
        pair = 64
        # Full: 2 + 3 pairs; delta: 2 (base) + 2 (changed 0x10,
        # added 0x30).
        assert store.full_size_bits() - store.delta_size_bits() == \
            1 * pair

    def test_deleted_lines_billed_defensively(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, {0x10: 1, 0x20: 2}))
        store.add(self._checkpoint(10, {0x10: 1}))
        pair = 64
        # Delta bills the deletion of 0x20: 1 pair, vs full's 1 pair
        # for the whole second image -- no saving, no crash.
        assert store.delta_size_bits() == store.full_size_bits()

    def test_empty_store(self):
        store = IntervalCheckpointStore()
        assert store.full_size_bits() == 0
        assert store.delta_size_bits() == 0

    def test_real_dense_grid_shrinks_massively(self):
        from conftest import straight_line_program
        system = make_system()
        # Store-heavy program: the memory image is large and accretes
        # monotonically, so consecutive images overlap almost
        # entirely -- the case delta encoding exists for.
        recording = system.record(
            straight_line_program(threads=4, length=120),
            checkpoint_every=3)
        store = recording.interval_checkpoints
        assert len(store) >= 5
        full = store.full_size_bits()
        delta = store.delta_size_bits()
        assert delta < 0.5 * full

    def test_custom_widths(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, {0x10: 1}))
        wide = store.full_size_bits(address_bits=64, value_bits=64)
        narrow = store.full_size_bits(address_bits=16, value_bits=16)
        assert wide > narrow > 0

    def test_invalid_widths_rejected(self):
        store = IntervalCheckpointStore()
        store.add(self._checkpoint(5, {0x10: 1}))
        for bad in ((0, 32), (32, 0), (-8, 32)):
            with pytest.raises(ConfigurationError):
                store.full_size_bits(*bad)
            with pytest.raises(ConfigurationError):
                store.delta_size_bits(*bad)


class TestBoundedInterval:
    """I(n, m) with an explicit length: the literal Appendix B
    statement."""

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_window_replays_exactly(self, mode):
        system = make_system(mode)
        recording = system.record(counter_program(4, 25),
                                  checkpoint_every=10)
        checkpoint = recording.interval_checkpoints.by_index(0)
        result = system.replay_interval(
            recording, checkpoint=checkpoint, length=7,
            perturbation=ReplayPerturbation(seed=2))
        assert result.determinism.matches
        assert result.determinism.compared_chunks == 7

    def test_window_with_system_events(self):
        system = make_system()
        recording = system.record(full_system_program(),
                                  checkpoint_every=12)
        checkpoint = recording.interval_checkpoints.by_index(0)
        result = system.replay_interval(recording,
                                        checkpoint=checkpoint, length=6)
        assert result.determinism.matches

    def test_window_from_start(self):
        """length without a checkpoint store still needs a checkpoint;
        the zero-GCC case goes through replay() -- but an explicit
        initial checkpoint works."""
        from repro.core.interval import IntervalCheckpoint
        system = make_system()
        program = counter_program(3, 20)
        recording = system.record(program)
        initial = IntervalCheckpoint(
            commit_index=0,
            memory_image=dict(program.initial_memory),
            thread_states={},
            committed_counts={},
            io_consumed={},
            dma_consumed=0)
        result = system.replay_interval(recording, checkpoint=initial,
                                        length=5)
        assert result.determinism.matches
        assert result.determinism.compared_chunks == 5

    def test_corrupted_window_detected(self):
        system = make_system()
        recording = system.record(counter_program(4, 25),
                                  checkpoint_every=10)
        checkpoint = recording.interval_checkpoints.by_index(0)
        # Corrupt a PI entry inside the window.
        index = checkpoint.commit_index + 2
        entries = recording.pi_log.entries
        swap = index + 1
        while entries[swap] == entries[index]:
            swap += 1
        entries[index], entries[swap] = entries[swap], entries[index]
        result = system.replay_interval(
            recording, checkpoint=checkpoint, length=6)
        assert not result.determinism.matches
