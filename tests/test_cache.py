"""Tests for the L1/L2 cache models and overflow detection."""

import pytest

from repro.chunks.cache import CacheConfig, SharedL2Filter, SpeculativeCache
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(sets=100)

    def test_single_way_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(ways=1)

    def test_set_mapping(self):
        config = CacheConfig(sets=8, ways=2)
        assert config.set_of(0) == 0
        assert config.set_of(8) == 0
        assert config.set_of(9) == 1

    def test_speculative_ways_use_full_associativity(self):
        assert CacheConfig(sets=8, ways=4).speculative_ways == 4


class TestL1Classification:
    def test_first_access_misses(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        assert cache.access(0) == "memory"

    def test_second_access_hits(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.access(0)
        assert cache.access(0) == "l1"

    def test_lru_eviction(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.access(0)      # set 0
        cache.access(4)      # set 0
        cache.access(8)      # set 0 -> evicts line 0
        assert cache.access(0) != "l1"

    def test_lru_refresh_on_touch(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.access(0)
        cache.access(4)
        cache.access(0)      # refresh 0; 4 is now LRU
        cache.access(8)      # evicts 4
        assert cache.access(0) == "l1"

    def test_l2_filter_serves_evicted_lines(self):
        shared = SharedL2Filter(capacity_lines=64)
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2), shared)
        cache.access(0)
        cache.access(4)
        cache.access(8)      # evicts 0 from L1; 0 still in L2
        assert cache.access(0) == "l2"

    def test_invalidate(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.access(3)
        cache.invalidate(3)
        assert cache.coherence_invalidations == 1
        assert cache.access(3) != "l1"

    def test_invalidate_absent_line_is_noop(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.invalidate(77)
        assert cache.coherence_invalidations == 0

    def test_stats_keys(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=2))
        cache.access(1)
        cache.access(1)
        stats = cache.stats()
        assert stats["l1_hits"] == 1
        assert stats["memory_accesses"] == 1


class TestSharedL2:
    def test_capacity_bound(self):
        shared = SharedL2Filter(capacity_lines=2)
        shared.access(1)
        shared.access(2)
        shared.access(3)   # evicts 1
        assert not shared.access(1)

    def test_lru_refresh(self):
        shared = SharedL2Filter(capacity_lines=2)
        shared.access(1)
        shared.access(2)
        shared.access(1)
        shared.access(3)   # evicts 2, not 1
        assert shared.access(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedL2Filter(capacity_lines=0)


class TestOverflowDetection:
    def test_no_overflow_below_capacity(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=4))
        written = {0, 4, 8}       # three lines in set 0 (4 ways usable)
        assert not cache.write_would_overflow(written, 12)

    def test_overflow_at_set_capacity(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=4))
        written = {0, 4, 8, 12}   # set 0 full of speculative lines
        assert cache.write_would_overflow(written, 16)

    def test_rewriting_existing_line_never_overflows(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=4))
        written = {0, 4, 8, 12}
        assert not cache.write_would_overflow(written, 4)

    def test_other_sets_unaffected(self):
        cache = SpeculativeCache(CacheConfig(sets=4, ways=4))
        written = {0, 4, 8, 12}   # all in set 0
        assert not cache.write_would_overflow(written, 1)  # set 1

    def test_overflow_is_deterministic_in_footprint(self):
        cache = SpeculativeCache(CacheConfig(sets=8, ways=4))
        written = {0, 8, 16}
        assert (cache.write_would_overflow(written, 24)
                == cache.write_would_overflow(written, 24))
