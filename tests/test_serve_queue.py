"""Durability tests for the serve layer's write-ahead job queue.

The headline guarantee: a SIGKILL at *any byte* of a journal append
loses no acknowledged job and duplicates none.  The exhaustive test
below replays recovery against every possible truncation point of a
real journal and checks the recovered index equals newest-wins over
the longest valid line prefix -- exactly the set of acknowledged
transitions.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.model import (
    STATE_DONE,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    JobStateError,
    census,
)
from repro.serve.queue import JOURNAL_NAME, JobQueue, read_journal

HASH_A = "a" * 64
HASH_B = "b" * 64
HASH_C = "c" * 64


def build_queue(path):
    return JobQueue(path)


def populated_journal(tmp_path):
    """A journal with submits, claims, a finish, and a crash-era
    ``running`` job -- every transition kind the format carries."""
    queue = build_queue(tmp_path / "q")
    queue.submit("alice", "record", {"seed": 1}, HASH_A, 1.0)
    queue.submit("bob", "chaos", {"seed": 2}, HASH_B, 2.0)
    queue.submit("alice", "record", {"seed": 3}, HASH_C, 3.0)
    first = queue.claim(4.0)
    queue.finish(first, now=5.0, artifact_hash=HASH_A)
    queue.claim(6.0)  # left running: the crash scenario
    queue.close()
    return tmp_path / "q" / JOURNAL_NAME


class TestJournalFormat:
    def test_every_line_is_self_checking(self, tmp_path):
        path = populated_journal(tmp_path)
        records, good = read_journal(path)
        assert len(records) == 6  # 3 submits + 2 claims + 1 finish
        assert good == path.stat().st_size
        lsns = [record["lsn"] for record in records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)

    def test_corrupt_interior_line_stops_the_prefix(self, tmp_path):
        path = populated_journal(tmp_path)
        data = bytearray(path.read_bytes())
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one payload byte inside the third line.
        offset = len(lines[0]) + len(lines[1]) + 20
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        records, good = read_journal(path)
        assert len(records) == 2
        assert good == len(lines[0]) + len(lines[1])

    def test_missing_journal_is_empty(self, tmp_path):
        records, good = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and good == 0


class TestRecovery:
    def test_newest_wins_round_trip(self, tmp_path):
        populated_journal(tmp_path)
        queue = build_queue(tmp_path / "q")
        assert queue.recovered_jobs == 3
        assert queue.truncated_bytes == 0
        states = {job.seq: job.state for job in queue.jobs()}
        assert states == {0: STATE_DONE, 1: STATE_RUNNING,
                          2: STATE_QUEUED}
        queue.close()

    def test_running_jobs_requeue_once(self, tmp_path):
        populated_journal(tmp_path)
        queue = build_queue(tmp_path / "q")
        requeued = queue.recover_running()
        assert [job.seq for job in requeued] == [1]
        assert requeued[0].state == STATE_QUEUED
        assert requeued[0].requeues == 1
        assert requeued[0].started_at is None
        assert queue.recover_running() == []  # idempotent
        # Still-queued work keeps its place; the requeued job joins
        # the back of the ready set.
        assert queue.claim(9.0).seq == 2
        assert queue.claim(9.5).seq == 1
        queue.close()

    def test_recovery_continues_the_lsn_and_seq(self, tmp_path):
        populated_journal(tmp_path)
        queue = build_queue(tmp_path / "q")
        lsn_before = queue.lsn
        job = queue.submit("carol", "bench", {}, "d" * 64, 10.0)
        assert queue.lsn == lsn_before + 1
        assert job.seq == 3  # no seq reuse across restarts
        queue.close()

    def test_kill_at_any_byte_loses_nothing_acked(self, tmp_path):
        """Exhaustive: recover from every truncation of the journal."""
        path = populated_journal(tmp_path)
        data = path.read_bytes()
        full_records, _ = read_journal(path)
        offsets = [0]
        for line in data.splitlines(keepends=True):
            offsets.append(offsets[-1] + len(line))

        for cut in range(len(data) + 1):
            scratch = tmp_path / "cuts" / f"{cut}"
            scratch.mkdir(parents=True)
            (scratch / JOURNAL_NAME).write_bytes(data[:cut])
            queue = build_queue(scratch)
            # Acknowledged = the complete lines inside the cut.
            complete = max(i for i, off in enumerate(offsets)
                           if off <= cut)
            expect: dict[str, dict] = {}
            for record in full_records[:complete]:
                expect[record["job"]["id"]] = record["job"]
            got = {job.id: job.as_dict() for job in queue.jobs()}
            assert got == expect, f"cut at byte {cut}"
            # The torn tail was measured and truncated away.
            assert queue.truncated_bytes == cut - offsets[complete]
            size = (scratch / JOURNAL_NAME).stat().st_size
            assert size == offsets[complete]
            queue.close()

    def test_append_after_torn_tail_recovery(self, tmp_path):
        """A truncated journal stays appendable on a clean boundary."""
        path = populated_journal(tmp_path)
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        for extra in (1, len(lines[3]) // 2, len(lines[3]) - 1):
            scratch = tmp_path / f"torn-{extra}"
            scratch.mkdir()
            torn = b"".join(lines[:3]) + lines[3][:extra]
            (scratch / JOURNAL_NAME).write_bytes(torn)
            queue = build_queue(scratch)
            assert queue.truncated_bytes == extra
            queue.submit("dave", "record", {"seed": 9}, HASH_B, 20.0)
            queue.close()
            records, good = read_journal(scratch / JOURNAL_NAME)
            assert good == (scratch / JOURNAL_NAME).stat().st_size
            assert records[-1]["job"]["tenant"] == "dave"


class TestOperations:
    def test_submit_claim_finish_lifecycle(self, tmp_path):
        queue = build_queue(tmp_path / "q")
        job = queue.submit("t", "record", {"seed": 1}, HASH_A, 1.0)
        assert job.state == STATE_QUEUED
        claimed = queue.claim(2.0)
        assert claimed.id == job.id
        assert claimed.state == STATE_RUNNING
        assert claimed.attempts == 1
        done = queue.finish(claimed, now=3.0, artifact_hash=HASH_A)
        assert done.state == STATE_DONE
        assert done.artifact_hash == HASH_A
        assert queue.claim(4.0) is None
        queue.close()

    def test_finish_with_error_fails_the_job(self, tmp_path):
        queue = build_queue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0)
        failed = queue.finish(job, now=3.0, error="Boom: no")
        assert failed.state == "failed"
        assert failed.error == "Boom: no"
        queue.close()

    def test_submit_resolved_takes_the_cache_edge(self, tmp_path):
        queue = build_queue(tmp_path / "q")
        job = queue.submit_resolved("t", "record", {}, HASH_A, 1.0,
                                    artifact_hash=HASH_A)
        assert job.state == STATE_DONE
        assert job.from_cache
        assert queue.claim(2.0) is None  # never entered the ready set
        queue.close()

    def test_observers_see_every_durable_transition(self, tmp_path):
        queue = build_queue(tmp_path / "q")
        seen: list[tuple[int, str]] = []
        queue.subscribe(lambda lsn, job: seen.append((lsn, job.state)))
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0)
        queue.finish(job, now=3.0, artifact_hash=HASH_A)
        assert seen == [(1, STATE_QUEUED), (2, STATE_RUNNING),
                        (3, STATE_DONE)]
        queue.close()

    def test_counts_census(self, tmp_path):
        queue = build_queue(tmp_path / "q")
        queue.submit("alice", "record", {}, HASH_A, 1.0)
        queue.submit("alice", "record", {}, HASH_B, 2.0)
        queue.submit("bob", "record", {}, HASH_C, 3.0)
        queue.claim(4.0)
        counts = queue.counts()
        assert counts.queued == 2 and counts.running == 1
        assert counts.depth == 3
        assert counts.by_tenant == {"alice": 2, "bob": 1}
        queue.close()


class TestStateMachine:
    def test_terminal_states_are_final(self):
        job = Job(id="j", seq=0, tenant="t", kind="record",
                  params={}, spec_hash=HASH_A)
        job.transition(STATE_RUNNING)
        job.transition(STATE_DONE)
        with pytest.raises(JobStateError, match="illegal transition"):
            job.transition(STATE_RUNNING)

    def test_queued_cannot_requeue(self):
        job = Job(id="j", seq=0, tenant="t", kind="record",
                  params={}, spec_hash=HASH_A)
        with pytest.raises(JobStateError):
            job.transition(STATE_QUEUED)

    def test_unknown_state_rejected(self):
        job = Job(id="j", seq=0, tenant="t", kind="record",
                  params={}, spec_hash=HASH_A)
        with pytest.raises(JobStateError, match="unknown job state"):
            job.transition("paused")

    def test_wire_form_round_trips(self):
        job = Job(id="j", seq=4, tenant="t", kind="chaos",
                  params={"seed": 2}, spec_hash=HASH_B,
                  submitted_at=1.5)
        clone = Job.from_dict(json.loads(json.dumps(job.as_dict())))
        assert clone == job

    def test_census_ignores_terminal_for_tenants(self):
        jobs = [Job(id="a", seq=0, tenant="t", kind="record",
                    params={}, spec_hash=HASH_A, state=STATE_DONE),
                Job(id="b", seq=1, tenant="t", kind="record",
                    params={}, spec_hash=HASH_B)]
        counts = census(jobs)
        assert counts.by_tenant == {"t": 1}
        assert counts.done == 1 and counts.depth == 1
