"""Tests for commit propagation and traffic metering."""

from repro.chunks.cache import CacheConfig, SpeculativeCache
from repro.chunks.chunk import Chunk
from repro.chunks.directory import CommitDirectory, TrafficMeter
from repro.chunks.signature import SignatureConfig
from repro.machine.program import ThreadState


def chunk_with(proc, writes=(), reads=()):
    chunk = Chunk(processor=proc, logical_seq=1,
                  start_state=ThreadState(thread_id=proc),
                  signature_config=SignatureConfig())
    for line in writes:
        chunk.record_write(line)
    for line in reads:
        chunk.record_read(line)
    return chunk


def caches(count=2):
    return {proc: SpeculativeCache(CacheConfig(sets=4, ways=2))
            for proc in range(count)}


class TestTrafficMeter:
    def test_total_sums_categories(self):
        meter = TrafficMeter(signature_bytes=10, control_bytes=20,
                             invalidation_bytes=30, data_bytes=40,
                             squash_refetch_bytes=50)
        assert meter.total_bytes == 150
        assert meter.as_dict()["total_bytes"] == 150

    def test_as_dict_keys(self):
        keys = set(TrafficMeter().as_dict())
        assert "signature_bytes" in keys
        assert "squash_refetch_bytes" in keys


class TestCommitDirectory:
    def test_request_charges_both_signatures(self):
        directory = CommitDirectory(signature_bytes_each=256)
        directory.on_commit_request()
        assert directory.traffic.signature_bytes == 512
        assert directory.traffic.control_bytes == 8

    def test_grant_is_a_header(self):
        directory = CommitDirectory()
        directory.on_grant()
        assert directory.traffic.control_bytes == 8

    def test_propagation_invalidates_sharers(self):
        directory = CommitDirectory()
        cache_map = caches(3)
        # Caches 1 and 2 hold line 5; the committer is processor 0.
        cache_map[1].access(5)
        cache_map[2].access(5)
        committing = chunk_with(0, writes=[5])
        invalidations = directory.propagate_commit(committing, cache_map)
        assert invalidations == 2
        assert cache_map[1].coherence_invalidations == 1
        assert cache_map[2].coherence_invalidations == 1

    def test_propagation_skips_committer_cache(self):
        directory = CommitDirectory()
        cache_map = caches(2)
        cache_map[0].access(5)
        committing = chunk_with(0, writes=[5])
        directory.propagate_commit(committing, cache_map)
        assert cache_map[0].coherence_invalidations == 0

    def test_propagation_moves_line_data(self):
        directory = CommitDirectory(line_bytes=64)
        committing = chunk_with(0, writes=[1, 2, 3])
        directory.propagate_commit(committing, caches())
        assert directory.traffic.data_bytes == 3 * 64

    def test_squash_refetch_accounting(self):
        directory = CommitDirectory(line_bytes=32)
        victim = chunk_with(1, writes=[1], reads=[2, 3])
        directory.on_squash(victim)
        assert directory.traffic.squash_refetch_bytes == 3 * 32

    def test_data_refill(self):
        directory = CommitDirectory(line_bytes=32)
        directory.on_data_refill(10)
        assert directory.traffic.data_bytes == 320
