"""End-to-end recording tests: atomicity, mutual exclusion, logs."""

import pytest

from conftest import (
    apply_fingerprint_writes,
    counter_program,
    racy_increment_program,
    small_config,
    straight_line_program,
    two_phase_program,
)

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.machine.system import record_execution
from repro.core.modes import preferred_config
from repro.workloads.program_builder import (
    ProgramBuilder,
    shared_address,
)


def record(program, mode=ExecutionMode.ORDER_ONLY, **config_overrides):
    config = small_config(**config_overrides)
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    return system.record(program)


class TestSerializability:
    """Committed chunk effects must equal some serial chunk order --
    specifically, the commit (grant) order the recording captured."""

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_fingerprint_replay_reconstructs_memory(self, mode):
        program = counter_program(threads=4, increments=15)
        recording = record(program, mode)
        rebuilt = apply_fingerprint_writes(
            program.initial_memory, recording.fingerprints)
        assert rebuilt == recording.final_memory

    def test_two_phase_copy_through_barrier(self):
        recording = record(two_phase_program())
        out = shared_address(256)
        for index in range(8):
            assert recording.final_memory[out + index] == 100 + index


class TestMutualExclusion:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_locked_counter_is_exact(self, mode):
        threads, increments = 4, 15
        recording = record(counter_program(threads, increments), mode)
        counter = shared_address(0)
        assert recording.final_memory[counter] == threads * increments

    def test_racy_counter_still_serializable(self):
        """Without a lock the RMW is still atomic per op here; the
        sanity property is serializability, not a specific value."""
        program = racy_increment_program(threads=3, increments=8)
        recording = record(program)
        rebuilt = apply_fingerprint_writes(
            program.initial_memory, recording.fingerprints)
        assert rebuilt == recording.final_memory


class TestChunkAccounting:
    def test_all_instructions_committed(self):
        program = straight_line_program(threads=2, length=25)
        recording = record(program)
        # 25 iterations x (5 compute + store + load) per thread.
        assert recording.stats.total_committed_instructions == 2 * 25 * 7

    def test_chunk_sizes_bounded_by_standard(self):
        recording = record(straight_line_program(threads=2, length=60))
        for fingerprint in recording.fingerprints:
            assert fingerprint[4] <= 64  # small_config chunk size

    def test_pi_log_matches_commit_count(self):
        recording = record(counter_program(2, 10))
        non_dma = [f for f in recording.fingerprints if f[0] != "dma"]
        assert len(recording.pi_log) == len(non_dma)

    def test_picolog_has_empty_pi(self):
        recording = record(counter_program(2, 10), ExecutionMode.PICOLOG)
        assert len(recording.pi_log) == 0

    def test_per_proc_fingerprints_partition_global(self):
        recording = record(counter_program(3, 10))
        total = sum(len(v) for v in
                    recording.per_proc_fingerprints.values())
        assert total == len(recording.fingerprints)


class TestOrderAndSizeMode:
    def test_cs_log_covers_every_chunk(self):
        recording = record(counter_program(2, 12),
                           ExecutionMode.ORDER_AND_SIZE)
        for proc, log in recording.cs_logs.items():
            committed = len(recording.per_proc_fingerprints[proc])
            assert len(log) == committed

    def test_artificial_truncation_produces_small_chunks(self):
        program = straight_line_program(threads=2, length=400)
        recording = record(program, ExecutionMode.ORDER_AND_SIZE)
        sizes = [f[4] for f in recording.fingerprints]
        assert any(size < 64 for size in sizes)  # some truncated


class TestInputLogs:
    def _program_with_io(self):
        builder = ProgramBuilder(2, name="io")
        with builder.thread(0) as t:
            t.compute(10).io_load(port=1).store(shared_address(8))
            t.compute(10)
        with builder.thread(1) as t:
            t.compute(30)
        return builder.build()

    def test_io_values_logged(self):
        recording = record(self._program_with_io())
        assert len(recording.io_logs[0]) == 1
        stored = recording.final_memory[shared_address(8)]
        assert recording.io_logs[0].values == [stored]

    def test_interrupt_logged_with_chunk_id(self):
        program = counter_program(2, 30)
        program.interrupts.append(InterruptEvent(
            time=500.0, processor=1, vector=9, payload=4,
            handler_ops=24))
        recording = record(program)
        entries = recording.interrupt_logs[1].entries
        assert len(entries) == 1
        assert entries[0].vector == 9
        assert entries[0].handler_ops == 24
        handler_fps = [f for f in recording.per_proc_fingerprints[1]
                       if f[3]]
        assert handler_fps
        assert handler_fps[0][1] == entries[0].chunk_id

    def test_dma_data_logged_and_applied(self):
        program = counter_program(2, 20)
        writes = {shared_address(512): 7777}
        program.dma_transfers.append(DmaTransfer(time=200.0,
                                                 writes=writes))
        recording = record(program)
        assert len(recording.dma_log) == 1
        assert recording.final_memory[shared_address(512)] == 7777
        assert recording.stats.dma_commits == 1

    def test_picolog_dma_records_slot(self):
        program = counter_program(2, 20)
        program.dma_transfers.append(DmaTransfer(
            time=200.0, writes={shared_address(512): 1}))
        recording = record(program, ExecutionMode.PICOLOG)
        assert len(recording.dma_log.commit_slots) == 1


class TestConfiguration:
    def test_too_many_threads_rejected(self):
        program = counter_program(6, 5)
        with pytest.raises(ConfigurationError):
            record_execution(program, small_config(num_processors=4),
                             preferred_config(ExecutionMode.ORDER_ONLY))

    def test_machine_runs_once(self):
        from repro.machine.system import ChunkMachine
        program = counter_program(2, 5)
        config = small_config()
        machine = ChunkMachine(
            program, config,
            preferred_config(ExecutionMode.ORDER_ONLY).with_chunk_size(
                config.standard_chunk_size))
        machine.run()
        with pytest.raises(ConfigurationError):
            machine.run()

    def test_stats_are_sane(self):
        recording = record(counter_program(4, 15))
        stats = recording.stats
        assert stats.cycles > 0
        assert stats.ipc > 0
        assert 0 <= stats.wasted_instruction_fraction < 1
        assert stats.traffic["total_bytes"] > 0
