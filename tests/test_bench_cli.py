"""End-to-end smoke tests for ``python -m repro bench``.

These drive the real CLI in a subprocess -- argument parsing, the
runner pool, the on-disk cache and the figure renderers together --
on one tiny workload, and check the acceptance properties: a second
invocation is served entirely from cache and reproduces identical
numbers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_cli(*argv, cwd, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["REPRO_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300)


def figure_lines(stdout: str) -> list[str]:
    """The rendered tables, minus timing-dependent runner chatter."""
    return [line for line in stdout.splitlines()
            if line.strip() and not line.startswith("runner:")]


def test_bench_list(tmp_path):
    result = run_cli("bench", "--list", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    for name in ("fig06", "fig07", "fig10", "fig11"):
        assert name in result.stdout


def test_bench_rejects_unknown_figure(tmp_path):
    result = run_cli("bench", "fig99", cwd=tmp_path)
    assert result.returncode == 2
    assert "unknown figure" in result.stderr


def test_bench_rejects_unknown_app(tmp_path):
    result = run_cli("bench", "fig10", "--apps", "doom",
                     cwd=tmp_path)
    assert result.returncode == 2
    assert "unknown app" in result.stderr


@pytest.mark.slow
def test_bench_end_to_end_cached_rerun(tmp_path):
    cache_dir = tmp_path / "cache"
    args = ("bench", "fig10", "fig11", "--apps", "fft",
            "--scale", "0.05", "--jobs", "2")
    first = run_cli(*args, cwd=tmp_path, cache_dir=cache_dir)
    assert first.returncode == 0, first.stderr
    assert "Figure 10" in first.stdout
    assert "Figure 11" in first.stdout
    assert "all replays verified deterministic" in first.stdout
    assert cache_dir.is_dir()

    second = run_cli(*args, cwd=tmp_path, cache_dir=cache_dir)
    assert second.returncode == 0, second.stderr
    # 100% cache hits...
    assert "(100% hits)" in second.stdout
    # ...and byte-identical numbers.
    assert figure_lines(second.stdout) == figure_lines(first.stdout)


@pytest.mark.slow
def test_bench_no_cache_leaves_no_artifacts(tmp_path):
    cache_dir = tmp_path / "cache"
    result = run_cli("bench", "fig10", "--apps", "fft", "--scale",
                     "0.05", "--no-cache", "--quiet",
                     cwd=tmp_path, cache_dir=cache_dir)
    assert result.returncode == 0, result.stderr
    assert not cache_dir.exists()
    assert "(0% hits)" in result.stdout


@pytest.mark.slow
def test_modes_uses_pool_and_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    args = ("modes", "fft", "--scale", "0.05", "--jobs", "2")
    first = run_cli(*args, cwd=tmp_path, cache_dir=cache_dir)
    assert first.returncode == 0, first.stderr
    assert "Execution-mode comparison on fft" in first.stdout
    second = run_cli(*args, cwd=tmp_path, cache_dir=cache_dir)
    assert second.returncode == 0, second.stderr
    assert "(100% hits)" in second.stderr   # progress goes to stderr
    assert figure_lines(second.stdout) == figure_lines(first.stdout)
