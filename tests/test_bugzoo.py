"""Tests for the seeded-bug zoo: latency of the bugs, not their absence."""

import pytest

from repro.core.modes import ExecutionMode, preferred_config
from repro.machine.system import record_execution
from repro.machine.timing import MachineConfig
from repro.workloads.bugzoo import (
    BUG_ZOO,
    ZOO_INITIAL,
    ZOO_MIX,
    ZOO_TARGET,
    zoo_specimen,
)
from repro.machine.program import compute_mix

BUGGY = sorted(name for name, spec in BUG_ZOO.items() if spec.buggy)
ORDER_MODES = (ExecutionMode.ORDER_AND_SIZE, ExecutionMode.ORDER_ONLY)
PREDEFINED_MODES = (ExecutionMode.PICOLOG, ExecutionMode.SIZE_ONLY)


def natural_verdict(name, mode):
    specimen = zoo_specimen(name)
    recording = record_execution(
        specimen.build(),
        machine_config=MachineConfig(),
        mode_config=preferred_config(mode))
    return specimen.check(recording.final_memory)


class TestLatency:
    """Buggy specimens must be *latent*: the natural arrival-order
    schedule passes, so only exploration exposes them."""

    @pytest.mark.parametrize("mode", ORDER_MODES)
    @pytest.mark.parametrize("name", BUGGY)
    def test_natural_schedule_passes_in_order_modes(self, name, mode):
        verdict = natural_verdict(name, mode)
        assert verdict.ok, verdict.detail

    @pytest.mark.parametrize("mode", PREDEFINED_MODES)
    @pytest.mark.parametrize("name", BUGGY)
    def test_round_robin_token_exposes_the_bug(self, name, mode):
        # PicoLog's alternating token walks straight into each racy
        # window, so predefined-order modes detect the zoo on their
        # one-and-only schedule.
        verdict = natural_verdict(name, mode)
        assert not verdict.ok

    @pytest.mark.parametrize(
        "mode", ORDER_MODES + PREDEFINED_MODES)
    def test_clean_control_passes_everywhere(self, mode):
        verdict = natural_verdict("clean-rmw", mode)
        assert verdict.ok, verdict.detail


class TestInvariants:
    def test_orbit_check_diagnoses_a_lost_update(self):
        check = zoo_specimen("lost-update").check
        one_update = compute_mix(ZOO_INITIAL, ZOO_MIX)
        verdict = check({ZOO_TARGET: one_update})
        assert not verdict.ok
        assert "lost update" in verdict.detail

    def test_orbit_check_accepts_the_serialized_result(self):
        check = zoo_specimen("lost-update").check
        both = compute_mix(ZOO_INITIAL, 2 * ZOO_MIX)
        assert check({ZOO_TARGET: both}).ok

    def test_off_orbit_value_is_flagged(self):
        verdict = zoo_specimen("lost-update").check({ZOO_TARGET: 1})
        assert not verdict.ok
        assert "off the update orbit" in verdict.detail

    def test_unknown_specimen_raises_with_roster(self):
        with pytest.raises(KeyError, match="lost-update"):
            zoo_specimen("heisenbug")

    def test_roster_shape(self):
        assert set(BUG_ZOO) == {"lost-update", "atomicity-violation",
                                "order-violation", "clean-rmw"}
        assert not BUG_ZOO["clean-rmw"].buggy
