"""Fleet-durability tests: leases, priorities, deadlines, and the
segmented journal.

Two headline guarantees extend the queue's original one:

* a SIGKILL of the *server* at any byte -- now of a rotated,
  multi-segment journal -- loses no acknowledged transition (the
  exhaustive sweep at the bottom);
* a SIGKILL of a *worker* at any point loses no claimed job: its
  journaled lease expires and the requeue sweep takes the job back,
  with repeat offenders declared poison instead of requeued forever.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.lease import (
    DEFAULT_LEASE_TTL,
    Lease,
    WorkerRegistry,
    heartbeat_interval,
    new_lease_id,
)
from repro.serve.model import (
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
)
from repro.serve.queue import (
    JOURNAL_NAME,
    JobQueue,
    read_journal,
    read_journal_dir,
    segment_paths,
)
from repro.serve.sse import EventLog

HASH_A = "a" * 64
HASH_B = "b" * 64
HASH_C = "c" * 64


class TestLeaseModule:
    def test_heartbeat_interval_is_a_fraction_of_ttl(self):
        assert heartbeat_interval(30.0) == pytest.approx(10.0)
        assert heartbeat_interval(0.01) == 0.05  # floored

    def test_lease_ids_are_unique(self):
        assert len({new_lease_id() for _ in range(64)}) == 64

    def test_registry_degrades_on_silence(self):
        registry = WorkerRegistry(window=10.0)
        assert registry.degraded(0.0)  # never heard from anyone
        registry.touch("w1", 100.0)
        assert not registry.degraded(105.0)
        assert registry.degraded(111.0)
        registry.touch("w2", 112.0)
        assert not registry.degraded(113.0)  # auto-recovery

    def test_registry_census_lists_live_workers(self):
        registry = WorkerRegistry(window=10.0)
        registry.touch("w1", 100.0)
        registry.touch("w2", 108.0)
        assert registry.alive(109.0) == ["w1", "w2"]
        assert registry.alive(111.0) == ["w2"]


class TestQueueLeases:
    def test_claim_grants_a_journaled_lease(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0, worker="w1", lease_ttl=5.0)
        assert job.leased
        assert job.worker == "w1"
        assert job.lease_expires_at == pytest.approx(7.0)
        queue.close()
        # The grant is durable: recovery sees the leased claim.
        again = JobQueue(tmp_path / "q")
        recovered = again.get(job.id)
        assert recovered.state == STATE_RUNNING
        assert recovered.lease_id == job.lease_id
        assert recovered.lease_ttl == 5.0
        again.close()

    def test_heartbeat_renews_only_the_real_holder(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0, worker="w1", lease_ttl=5.0)
        renewed = queue.heartbeat(job.id, "w1", job.lease_id, 6.0)
        assert renewed.lease_expires_at == pytest.approx(11.0)
        assert queue.heartbeat(job.id, "w2", job.lease_id, 6.0) is None
        assert queue.heartbeat(job.id, "w1", "forged", 6.0) is None
        queue.close()

    def test_expired_lease_requeues_at_the_back(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {"n": 1}, HASH_A, 1.0)
        queue.submit("t", "record", {"n": 2}, HASH_B, 1.5)
        first = queue.claim(2.0, worker="w1", lease_ttl=2.0)
        requeued, poisoned = queue.expire_leases(10.0)
        assert [j.id for j in requeued] == [first.id]
        assert poisoned == []
        assert first.state == STATE_QUEUED
        assert not first.leased
        # Requeue order: the untouched job goes first now.
        next_job = queue.claim(11.0, worker="w2", lease_ttl=2.0)
        assert next_job.spec_hash == HASH_B
        queue.close()

    def test_live_lease_is_not_swept(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        queue.claim(2.0, worker="w1", lease_ttl=30.0)
        requeued, poisoned = queue.expire_leases(10.0)
        assert requeued == [] and poisoned == []
        queue.close()

    def test_poison_after_max_expiries(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        now = 2.0
        for round_no in range(2):
            job = queue.claim(now, worker=f"w{round_no}",
                              lease_ttl=1.0)
            requeued, poisoned = queue.expire_leases(now + 5.0,
                                                     max_expiries=3)
            assert [j.id for j in requeued] == [job.id]
            now += 10.0
        job = queue.claim(now, worker="w9", lease_ttl=1.0)
        requeued, poisoned = queue.expire_leases(now + 5.0,
                                                 max_expiries=3)
        assert requeued == []
        assert [j.id for j in poisoned] == [job.id]
        assert job.state == STATE_FAILED
        assert job.failure["type"] == "poison"
        assert job.failure["lease_expiries"] == 3
        assert job.failure["last_worker"] == "w9"
        assert "PoisonJob" in job.error
        assert queue.poisoned_jobs == 1
        queue.close()

    def test_punt_counts_toward_poison(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0, worker="w1", lease_ttl=30.0)
        taken = queue.punt(job.id, 3.0, max_expiries=3)
        assert taken.state == STATE_QUEUED
        assert taken.lease_expiries == 1
        queue.close()

    def test_recovery_rearms_leased_running_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        job = queue.claim(2.0, worker="w1", lease_ttl=5.0)
        queue.close()

        again = JobQueue(tmp_path / "q")
        requeued = again.recover_running(now=100.0)
        # The leased job is NOT requeued: its worker may have
        # survived the server crash.  It gets one fresh TTL.
        assert requeued == []
        recovered = again.get(job.id)
        assert recovered.state == STATE_RUNNING
        assert recovered.lease_expires_at == pytest.approx(105.0)
        # A surviving worker heartbeats and keeps the claim...
        assert again.heartbeat(job.id, "w1", job.lease_id,
                               104.0) is not None
        # ...a dead one loses it to the sweep.
        requeued, _ = again.expire_leases(200.0)
        assert [j.id for j in requeued] == [job.id]
        again.close()

    def test_census_counts_live_leases(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0)
        queue.submit("t", "record", {}, HASH_B, 1.0)
        queue.claim(2.0, worker="w1", lease_ttl=9.0)
        queue.claim(2.0, worker="w1", lease_ttl=9.0)
        census = queue.lease_census(10.5)
        assert census["leased"] == 2
        assert census["by_worker"] == {"w1": 2}
        assert census["expiring_soon"] == 2  # < ttl/3 left
        queue.close()


class TestPrioritiesAndDeadlines:
    def test_higher_priority_claims_first(self, tmp_path):
        """Lower number = higher priority; ties break by LSN."""
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {"n": 1}, HASH_A, 1.0, priority=5)
        queue.submit("t", "record", {"n": 2}, HASH_B, 2.0, priority=-1)
        queue.submit("t", "record", {"n": 3}, HASH_C, 3.0, priority=5)
        order = [queue.claim(4.0).spec_hash for _ in range(3)]
        assert order == [HASH_B, HASH_A, HASH_C]
        queue.close()

    def test_priority_survives_recovery(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {"n": 1}, HASH_A, 1.0, priority=9)
        queue.submit("t", "record", {"n": 2}, HASH_B, 2.0, priority=0)
        queue.close()
        again = JobQueue(tmp_path / "q")
        again.recover_running()
        assert again.claim(3.0).spec_hash == HASH_B
        again.close()

    def test_past_deadline_jobs_fail_at_claim(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {"n": 1}, HASH_A, 1.0,
                     deadline_at=5.0)
        queue.submit("t", "record", {"n": 2}, HASH_B, 1.0)
        claimed = queue.claim(10.0)
        # The expired job was failed (typed), the live one handed out.
        assert claimed.spec_hash == HASH_B
        dead = queue.jobs(state=STATE_FAILED)[0]
        assert dead.spec_hash == HASH_A
        assert dead.failure["type"] == "deadline"
        assert dead.failure["late_by"] == pytest.approx(5.0)
        assert dead.error.startswith("DeadlineExpired")
        assert queue.deadline_failed == 1
        queue.close()

    def test_deadline_not_yet_passed_is_claimable(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit("t", "record", {}, HASH_A, 1.0, deadline_at=5.0)
        assert queue.claim(4.0) is not None
        queue.close()


def fill_queue(queue, jobs=40):
    """Drive enough transitions through ``queue`` to force several
    rotations (tiny segment_bytes make each append significant)."""
    submitted = []
    for index in range(jobs):
        spec_hash = f"{index:02d}" * 32
        job = queue.submit("t", "record", {"n": index}, spec_hash,
                           float(index), priority=index % 3)
        submitted.append(job)
    for _ in range(jobs // 2):
        job = queue.claim(100.0, worker="w1", lease_ttl=30.0)
        queue.finish(job, now=101.0, artifact_hash=job.spec_hash)
    return submitted


class TestSegmentation:
    def test_rotation_seals_segments(self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue)
        stats = queue.journal_stats()
        assert stats["rotations"] >= 2
        sealed = segment_paths(tmp_path / "q")
        assert len(sealed) == stats["rotations"]
        # Sealed segments carry only whole, valid lines.
        for path in sealed:
            records, good = read_journal(path)
            assert good == path.stat().st_size
            assert records
        queue.close()

    def test_recovery_spans_segments(self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue)
        expected = {j.id: j.as_dict() for j in queue.jobs()}
        lsn = queue.lsn
        queue.close()
        again = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        assert {j.id: j.as_dict() for j in again.jobs()} == expected
        assert again.lsn == lsn
        again.close()

    def test_compaction_preserves_state_and_bounds_bytes(
            self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue)
        expected = {j.id: j.as_dict() for j in queue.jobs()}
        before = queue.journal_stats()
        reclaimed = queue.compact()
        assert reclaimed > 0
        stats = queue.journal_stats()
        assert stats["compactions"] == 1
        assert stats["compacted_through"] == queue.lsn
        assert len(segment_paths(tmp_path / "q")) == 1
        assert {j.id: j.as_dict() for j in queue.jobs()} == expected
        assert stats["sealed_bytes"] + stats["active_bytes"] < \
            before["sealed_bytes"] + before["active_bytes"]
        queue.close()
        # And the compacted journal recovers identically.
        again = JobQueue(tmp_path / "q")
        assert {j.id: j.as_dict() for j in again.jobs()} == expected
        assert again.compacted_through == stats["compacted_through"]
        again.close()

    def test_automatic_compaction_at_threshold(self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=2)
        fill_queue(queue, jobs=60)
        stats = queue.journal_stats()
        assert stats["compactions"] >= 1
        # Compaction keeps the sealed count below the threshold.
        assert len(segment_paths(tmp_path / "q")) <= 2
        queue.close()

    def test_retain_terminal_drops_oldest_finished(self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000, retain_terminal=3)
        fill_queue(queue, jobs=20)  # 10 finished
        queue.compact()
        terminal = [j for j in queue.jobs() if j.terminal]
        assert len(terminal) == 3
        # Live jobs are never dropped.
        assert len(queue.jobs(state=STATE_QUEUED)) == 10
        queue.close()
        again = JobQueue(tmp_path / "q")
        assert len([j for j in again.jobs() if j.terminal]) == 3
        again.close()

    def test_read_journal_dir_filters_meta_records(self, tmp_path):
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue, jobs=10)
        queue.compact()
        queue.submit("t", "record", {"post": 1}, HASH_A, 500.0)
        queue.close()
        records, compacted = read_journal_dir(tmp_path / "q")
        assert compacted > 0
        assert all("job" in r for r in records)
        lsns = [r["lsn"] for r in records]
        assert lsns == sorted(lsns)

    def test_kill_at_any_byte_of_a_rotated_journal(self, tmp_path):
        """The exhaustive sweep, multi-segment edition.

        Sealed segments are immutable (only the active file can
        tear), so the crash surface is: every truncation point of the
        active segment, atop the full set of sealed segments.  Every
        prefix must recover to exactly newest-wins over (sealed +
        valid active prefix) -- and a re-open after recovery must
        append cleanly.
        """
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue, jobs=24)
        queue.close()
        data_dir = tmp_path / "q"
        assert len(segment_paths(data_dir)) >= 1
        active = (data_dir / JOURNAL_NAME).read_bytes()
        sealed_records, _ = read_journal_dir(data_dir)

        sealed_only: dict = {}
        for path in segment_paths(data_dir):
            for record in read_journal(path)[0]:
                if "job" in record:
                    sealed_only[record["job"]["id"]] = record["job"]

        for cut in range(len(active) + 1):
            target = tmp_path / f"cut-{cut}"
            target.mkdir()
            for path in segment_paths(data_dir):
                (target / path.name).write_bytes(path.read_bytes())
            (target / JOURNAL_NAME).write_bytes(active[:cut])

            expected = dict(sealed_only)
            valid, _good = read_journal(target / JOURNAL_NAME)
            for record in valid:
                if "job" in record:
                    expected[record["job"]["id"]] = record["job"]

            recovered = JobQueue(target, segment_bytes=4096,
                                 compact_after=10_000)
            state = {j.id: j.as_dict() for j in recovered.jobs()}
            assert state == expected, f"divergence at byte {cut}"
            # The queue must stay writable after any recovery.
            recovered.submit("t", "record", {"probe": cut},
                             HASH_C, 999.0)
            recovered.close()
            reread = JobQueue(target, segment_bytes=4096,
                              compact_after=10_000)
            assert len(reread.jobs()) == len(expected) + 1
            reread.close()

    def test_kill_during_compaction_window(self, tmp_path):
        """Crash between "compacted segment durable" and "old
        segments deleted": recovery must converge on newest-wins
        (duplicates across segments are harmless)."""
        queue = JobQueue(tmp_path / "q", segment_bytes=4096,
                         compact_after=10_000)
        fill_queue(queue, jobs=16)
        expected = {j.id: j.as_dict() for j in queue.jobs()}
        old_segments = [p.read_bytes()
                        for p in segment_paths(tmp_path / "q")]
        old_names = [p.name for p in segment_paths(tmp_path / "q")]
        queue.compact()
        queue.close()
        # Resurrect the superseded segments alongside the compacted
        # one: the on-disk state of a crash mid-deletion.
        for name, blob in zip(old_names, old_segments):
            (tmp_path / "q" / name).write_bytes(blob)
        recovered = JobQueue(tmp_path / "q")
        assert {j.id: j.as_dict()
                for j in recovered.jobs()} == expected
        recovered.close()


class TestEventLogCompactionResume:
    def test_resume_older_than_horizon_gets_full_snapshot(self):
        async def scenario():
            log = EventLog(asyncio.get_running_loop(),
                           compacted_through=50)
            for lsn in (50, 55, 60):
                log.seed(lsn, _job_stub(lsn))
            # A cursor inside the dissolved range cannot resume:
            # full snapshot instead of a silent gap.
            assert [lsn for lsn, _ in log.replay(10)] == [50, 55, 60]
            # At or past the horizon, normal resume.
            assert [lsn for lsn, _ in log.replay(50)] == [55, 60]
            assert [lsn for lsn, _ in log.replay(55)] == [60]
            # A fresh client (after=0) is unaffected.
            assert [lsn for lsn, _ in log.replay(0)] == [50, 55, 60]

        asyncio.run(scenario())


def _job_stub(lsn):
    from repro.serve.model import Job

    return Job(id=f"j{lsn}", seq=lsn, tenant="t", kind="record",
               params={}, spec_hash=HASH_A, submitted_at=0.0)
