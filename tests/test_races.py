"""Cross-writer contention mining (analysis.races)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.analysis.races import (
    DMA_WRITER,
    ContendedLine,
    RaceReport,
    WriteEvent,
    _closest_cross_pair,
    find_contended_lines,
    replay_window_for,
)
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.workloads.program_builder import shared_address
from repro.workloads.stress import racey_program

from conftest import (
    counter_program,
    racy_increment_program,
    small_config,
    straight_line_program,
)


def _record(program, **kwargs):
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            machine_config=small_config(), **kwargs)
    return system, system.record(program)


def _event(index, writer, value=1):
    return WriteEvent(commit_index=index, writer=writer, value=value)


class TestClosestCrossPair:
    def test_single_writer_has_no_pair(self):
        events = [_event(0, 1), _event(5, 1), _event(9, 1)]
        assert _closest_cross_pair(events) is None

    def test_two_writers_adjacent(self):
        events = [_event(3, 0), _event(4, 1)]
        distance, (first, second) = _closest_cross_pair(events)
        assert distance == 1
        assert (first.writer, second.writer) == (0, 1)

    def test_minimum_over_many_pairs(self):
        events = [_event(0, 0), _event(100, 1), _event(103, 0),
                  _event(200, 2)]
        distance, (first, second) = _closest_cross_pair(events)
        assert distance == 3
        assert (first.commit_index, second.commit_index) == (100, 103)

    def test_same_writer_runs_do_not_count(self):
        # Writer 0 writes densely; writer 1 appears once, far away.
        events = [_event(i, 0) for i in range(10)]
        events.append(_event(50, 1))
        distance, _ = _closest_cross_pair(events)
        assert distance == 41  # 50 - 9

    def test_dma_counts_as_distinct_writer(self):
        events = [_event(2, 0), _event(3, DMA_WRITER)]
        distance, (_, second) = _closest_cross_pair(events)
        assert distance == 1
        assert second.writer == DMA_WRITER


class TestClosestCrossPairProperty:
    """Hypothesis: the linear scan equals the O(n^2) brute force."""

    @staticmethod
    def _brute_force(events):
        best = None
        for i, first in enumerate(events):
            for second in events[i + 1:]:
                if second.writer == first.writer:
                    continue
                distance = second.commit_index - first.commit_index
                if best is None or distance < best:
                    best = distance
        return best

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=30),
                              st.integers(min_value=0, max_value=4)),
                    max_size=60))
    def test_matches_brute_force(self, steps):
        # Build strictly increasing commit indices from positive gaps.
        events, index = [], 0
        for gap, writer in steps:
            index += gap
            events.append(_event(index, writer))
        expected = self._brute_force(events)
        actual = _closest_cross_pair(events)
        if expected is None:
            assert actual is None
        else:
            distance, (first, second) = actual
            assert distance == expected
            assert first.writer != second.writer
            assert second.commit_index - first.commit_index == distance


class TestFindContendedLines:
    def test_no_sharing_no_contention(self):
        _, recording = _record(straight_line_program())
        report = find_contended_lines(recording)
        assert report.lines == []
        assert report.total_lines_written > 0
        assert "single agent" in report.summary()

    def test_locked_counter_is_contended(self):
        _, recording = _record(counter_program(threads=4,
                                               increments=10))
        report = find_contended_lines(recording)
        addresses = {line.address for line in report.lines}
        assert shared_address(0) in addresses
        counter = next(line for line in report.lines
                       if line.address == shared_address(0))
        assert len(counter.writers) >= 2
        # Every write event points at a real commit.
        for event in counter.events:
            assert 0 <= event.commit_index < report.total_commits

    def test_racy_counter_has_tight_pairs(self):
        _, recording = _record(racy_increment_program(threads=4,
                                                      increments=30))
        report = find_contended_lines(recording)
        assert report.lines, "racy counter must show contention"
        # Lines sort tightest-first.
        distances = [line.min_distance for line in report.lines]
        assert distances == sorted(distances)

    def test_events_are_commit_ordered(self):
        _, recording = _record(racey_program(threads=4, rounds=40,
                                             seed=3))
        report = find_contended_lines(recording)
        for line in report.lines:
            indices = [event.commit_index for event in line.events]
            assert indices == sorted(indices)

    def test_include_dma_toggle(self):
        from repro.workloads.commercial import commercial_program
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
        recording = system.record(
            commercial_program("sjbb2k", scale=0.25, seed=2))
        with_dma = find_contended_lines(recording, include_dma=True)
        without = find_contended_lines(recording, include_dma=False)
        dma_lines = [line for line in with_dma.lines
                     if DMA_WRITER in line.writers]
        clean = {line.address for line in without.lines}
        # Lines contended *only* through DMA disappear when excluded.
        for line in dma_lines:
            cpu_writers = [w for w in line.writers if w != DMA_WRITER]
            if len(cpu_writers) < 2:
                assert line.address not in clean

    def test_summary_formats_writers(self):
        _, recording = _record(counter_program(threads=2,
                                               increments=6))
        report = find_contended_lines(recording)
        text = report.summary(top=3)
        assert "cpu" in text
        assert "min distance" in text

    def test_summary_truncation_note(self):
        lines = [
            ContendedLine(address=i, events=[_event(0, 0), _event(1, 1)],
                          min_distance=1,
                          closest_pair=(_event(0, 0), _event(1, 1)))
            for i in range(12)]
        report = RaceReport(lines=lines, total_commits=2,
                            total_lines_written=12)
        assert "more contended lines" in report.summary(top=5)
        assert len(report.tight) == 12


class TestReplayWindow:
    def test_window_brackets_the_pair(self):
        line = ContendedLine(
            address=0x200000,
            events=[_event(10, 0), _event(13, 1)],
            min_distance=3,
            closest_pair=(_event(10, 0), _event(13, 1)))
        start, length = replay_window_for(line, margin=2)
        assert start == 8
        assert start + length - 1 == 15

    def test_window_clamps_at_zero(self):
        line = ContendedLine(
            address=0x200000,
            events=[_event(1, 0), _event(2, 1)],
            min_distance=1,
            closest_pair=(_event(1, 0), _event(2, 1)))
        start, length = replay_window_for(line, margin=4)
        assert start == 0
        assert length == 7

    def test_window_replays_deterministically(self):
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                machine_config=small_config(),
                                chunk_size=64)
        recording = system.record(
            racy_increment_program(threads=4, increments=120),
            checkpoint_every=5)
        report = find_contended_lines(recording)
        assert report.lines
        store = recording.interval_checkpoints
        start, length = replay_window_for(report.lines[0])
        end = start + length - 1
        if store.checkpoints[0].commit_index <= start:
            checkpoint = store.at_or_before(start)
            result = system.replay_interval(
                recording, checkpoint=checkpoint,
                length=end - checkpoint.commit_index + 1)
        else:
            result = system.replay(recording)
        assert result.determinism.matches
