"""Tests for the FDR baseline: dependence detection and Netzer TR."""

from hypothesis import given, settings, strategies as st

from repro.baselines.consistency import AccessRecord
from repro.baselines.fdr import FDRRecorder, verify_reduction


def trace_from(tuples) -> list[AccessRecord]:
    """(proc, line, is_write) tuples -> a well-formed trace."""
    records = []
    counters = {}
    for index, (proc, line, is_write) in enumerate(tuples):
        instr = counters.get(proc, 0) + 1
        counters[proc] = instr
        records.append(AccessRecord(
            index=index, processor=proc, line=line, is_write=is_write,
            instruction=instr, operation=instr))
    return records


class TestDependenceDetection:
    def test_raw_logged(self):
        trace = trace_from([(0, 5, True), (1, 5, False)])
        recorder = FDRRecorder(2)
        recorder.process(trace)
        assert len(recorder.dependences) == 1
        dep = recorder.dependences[0]
        assert (dep.src_proc, dep.dst_proc) == (0, 1)

    def test_waw_logged(self):
        recorder = FDRRecorder(2)
        recorder.process(trace_from([(0, 5, True), (1, 5, True)]))
        assert len(recorder.dependences) == 1

    def test_war_logged(self):
        recorder = FDRRecorder(2)
        recorder.process(trace_from([(0, 5, False), (1, 5, True)]))
        assert len(recorder.dependences) == 1

    def test_war_can_be_ignored(self):
        recorder = FDRRecorder(2, log_wars=False)
        recorder.process(trace_from([(0, 5, False), (1, 5, True)]))
        assert len(recorder.dependences) == 0

    def test_same_proc_not_logged(self):
        recorder = FDRRecorder(2)
        recorder.process(trace_from([(0, 5, True), (0, 5, False)]))
        assert recorder.raw_dependences == 0

    def test_disjoint_lines_no_dependence(self):
        recorder = FDRRecorder(2)
        recorder.process(trace_from([(0, 1, True), (1, 2, True)]))
        assert recorder.raw_dependences == 0


class TestTransitiveReduction:
    def test_figure_1a_case(self):
        """The paper's Figure 1(a): 1:Wa 1:Wb 2:Wb 2:Ra -- the Wa->Ra
        dependence is implied and must not be logged."""
        trace = trace_from([
            (0, 10, True),    # 1:Wa
            (0, 11, True),    # 1:Wb
            (1, 11, True),    # 2:Wb   (logged: Wb->Wb)
            (1, 10, False),   # 2:Ra   (implied transitively)
        ])
        recorder = FDRRecorder(2)
        recorder.process(trace)
        assert recorder.raw_dependences == 2
        assert len(recorder.dependences) == 1

    def test_repeated_dependence_reduced(self):
        trace = trace_from([
            (0, 5, True), (1, 5, False),
            (1, 6, True),  # keeps proc 1 moving
            (1, 5, False),  # same source write: implied
        ])
        recorder = FDRRecorder(2)
        recorder.process(trace)
        assert len(recorder.dependences) == 1

    def test_reduction_never_unsound(self):
        trace = trace_from([
            (0, 1, True), (1, 1, False), (1, 2, True),
            (2, 2, False), (2, 1, False), (0, 2, True),
        ])
        recorder = FDRRecorder(3)
        recorder.process(trace)
        assert verify_reduction(trace, recorder.dependences)


class TestSizeAccounting:
    def test_encode_bits_match_entry_count(self):
        recorder = FDRRecorder(2)
        recorder.process(trace_from([(0, 5, True), (1, 5, False)]))
        _, bits = recorder.encode()
        assert bits == 48  # 4+4 proc + 20+20 delta bits

    def test_compressed_not_larger(self):
        recorder = FDRRecorder(4)
        trace = trace_from([(i % 2, 5, i % 2 == 0) for i in range(100)])
        recorder.process(trace)
        assert recorder.compressed_size_bits() <= recorder.size_bits

    def test_metric_zero_for_empty(self):
        assert FDRRecorder(2).bits_per_proc_per_kiloinst(0) == 0.0


_access = st.tuples(
    st.integers(min_value=0, max_value=3),     # proc
    st.integers(min_value=0, max_value=7),     # line
    st.booleans(),                             # is_write
)


@settings(max_examples=80, deadline=None)
@given(st.lists(_access, max_size=120))
def test_reduction_soundness_property(tuples):
    """For arbitrary traces, the reduced log still orders every
    conflicting pair (the paper's correctness requirement for TR)."""
    trace = trace_from(tuples)
    recorder = FDRRecorder(4)
    recorder.process(trace)
    assert verify_reduction(trace, recorder.dependences)
    assert len(recorder.dependences) <= recorder.raw_dependences
