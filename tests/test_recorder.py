"""Unit tests for the Recorder's log-producing hooks."""

import pytest

from conftest import small_config

from repro.chunks.chunk import Chunk, TruncationReason
from repro.chunks.signature import Signature
from repro.core.modes import ExecutionMode, preferred_config
from repro.core.recorder import Recorder
from repro.machine.events import InterruptEvent
from repro.machine.program import ThreadState


def make_recorder(mode=ExecutionMode.ORDER_ONLY, procs=4, stratify=False,
                  chunks_per_stratum=1):
    config = small_config(num_processors=procs)
    mode_config = preferred_config(mode)
    if stratify:
        mode_config = mode_config.with_stratification(chunks_per_stratum)
    return Recorder(config, mode_config), config


def make_chunk(proc, seq, instructions=100,
               truncation=TruncationReason.SIZE_LIMIT,
               piece=0, handler_event=None):
    chunk = Chunk(processor=proc, logical_seq=seq,
                  start_state=ThreadState(thread_id=proc),
                  signature_config=small_config().signature,
                  piece_index=piece,
                  is_handler=handler_event is not None)
    chunk.instructions = instructions
    chunk.truncation = truncation
    chunk.handler_event = handler_event
    chunk.record_read(seq * 100 + proc)
    chunk.record_write(seq * 100 + proc + 1)
    return chunk


class TestPIHook:
    def test_grant_appends_pi_entry(self):
        recorder, _ = make_recorder()
        recorder.on_grant(make_chunk(2, 1))
        recorder.on_grant(make_chunk(0, 1))
        assert recorder.pi_log.entries == [2, 0]

    def test_picolog_appends_nothing(self):
        recorder, _ = make_recorder(ExecutionMode.PICOLOG)
        recorder.on_grant(make_chunk(2, 1))
        assert len(recorder.pi_log) == 0
        assert recorder.stratifier is None

    def test_continuation_pieces_share_entry(self):
        recorder, _ = make_recorder()
        recorder.on_grant(make_chunk(1, 1, piece=0))
        recorder.on_grant(make_chunk(1, 1, piece=1))
        assert recorder.pi_log.entries == [1]

    def test_stratifiers_track_all_caps(self):
        recorder, _ = make_recorder()
        assert set(recorder.stratifiers) == {1, 3, 7}
        for index in range(6):
            recorder.on_grant(make_chunk(index % 4, index // 4 + 1))
        recorder.finish()
        assert recorder.stratifiers[1].total_chunks == 6
        assert recorder.stratifiers[7].total_chunks == 6

    def test_configured_cap_is_authoritative(self):
        recorder, _ = make_recorder(stratify=True, chunks_per_stratum=3)
        assert recorder.stratifier.chunks_per_stratum == 3


class TestCSHook:
    def test_orderonly_logs_only_nondeterministic(self):
        recorder, _ = make_recorder()
        recorder.on_commit(make_chunk(0, 1))
        recorder.on_commit(make_chunk(
            0, 2, truncation=TruncationReason.CACHE_OVERFLOW,
            instructions=37))
        recorder.on_commit(make_chunk(
            0, 3, truncation=TruncationReason.IO_BOUNDARY))
        log = recorder.cs_logs[0]
        assert len(log) == 1
        assert log.truncations_by_seq() == {2: 37}

    def test_ordersize_logs_everything(self):
        recorder, _ = make_recorder(ExecutionMode.ORDER_AND_SIZE)
        recorder.on_commit(make_chunk(1, 1, instructions=2000))
        recorder.on_commit(make_chunk(1, 2, instructions=88))
        assert recorder.cs_logs[1].sizes_in_order() == [2000, 88]


class TestInterruptHook:
    def _event(self):
        return InterruptEvent(time=0, processor=1, vector=9,
                              payload=5, handler_ops=32)

    def test_handler_commit_logged(self):
        recorder, _ = make_recorder()
        chunk = make_chunk(1, 4, handler_event=self._event())
        chunk.grant_slot = 7
        recorder.on_commit(chunk)
        entries = recorder.interrupt_logs[1].entries
        assert len(entries) == 1
        assert entries[0].chunk_id == 4
        assert entries[0].vector == 9
        assert entries[0].commit_slot == 0  # slots only in PicoLog

    def test_picolog_records_commit_slot(self):
        recorder, _ = make_recorder(ExecutionMode.PICOLOG)
        chunk = make_chunk(1, 4, handler_event=self._event())
        chunk.grant_slot = 7
        recorder.on_commit(chunk)
        assert recorder.interrupt_logs[1].entries[0].commit_slot == 7

    def test_io_values_copied(self):
        recorder, _ = make_recorder()
        chunk = make_chunk(2, 1)
        chunk.io_values = [111, 222]
        recorder.on_commit(chunk)
        assert recorder.io_logs[2].values == [111, 222]


class TestDMAHooks:
    def _signature(self, lines):
        sig = Signature(small_config().signature)
        for line in lines:
            sig.insert(line)
        return sig

    def test_dma_grant_appends_pi_and_strata(self):
        recorder, config = make_recorder()
        recorder.on_dma_grant(self._signature([9]))
        assert recorder.pi_log.entries == [config.dma_proc_id]

    def test_dma_commit_logs_data(self):
        recorder, _ = make_recorder()
        recorder.on_dma_commit({5: 50}, grant_slot=3)
        assert len(recorder.dma_log) == 1
        assert recorder.dma_log.commit_slots == []  # PI mode: no slots

    def test_picolog_dma_records_slot(self):
        recorder, _ = make_recorder(ExecutionMode.PICOLOG)
        recorder.on_dma_commit({5: 50}, grant_slot=3)
        assert recorder.dma_log.commit_slots == [3]


class TestMemoryOrderingAssembly:
    def test_log_carries_stratified_sizes(self):
        recorder, _ = make_recorder()
        for index in range(8):
            recorder.on_grant(make_chunk(index % 4, index // 4 + 1))
            recorder.on_commit(make_chunk(index % 4, index // 4 + 1))
        recorder.finish()
        ordering = recorder.memory_ordering_log()
        assert ordering.pi_size_bits(False) == 8 * 4
        assert set(ordering.stratified_by_cap) == {1, 3, 7}
        assert ordering.stratified_pi_bits == \
            ordering.stratified_by_cap[1][0]
