"""Tests for the repro.runner execution engine.

Covers the canonical spec hashing (including stability across
interpreter processes), the content-addressed cache round-trip and its
determinism guard, the pool's timeout -> retry -> structured-failure
path, worker-crash recovery, and the wave scheduling that lets a
replay job reuse its cached recording.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.baselines import ConsistencyModel
from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.runner import (
    ResultCache,
    Runner,
    RunnerError,
    RunSpec,
    execute_spec,
)
from repro.runner.cache import encode_artifact
from repro.runner.figures import resolve_figures, specs_for
from repro.runner.jobs import (
    recording_from_artifact,
    result_from_artifact,
)
from repro.runner.reporting import Reporter
from repro.runner.retry import RetryPolicy

SCALE = 0.05
SEED = 3


def record_spec(app="fft", mode=ExecutionMode.ORDER_ONLY, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("seed", SEED)
    return RunSpec.record(app, mode, **kwargs)


def fresh_cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache", salt="test-salt")


# -- specs ------------------------------------------------------------


class TestRunSpec:
    def test_equal_specs_equal_hash(self):
        assert record_spec().content_hash() == \
            record_spec().content_hash()

    def test_any_field_changes_hash(self):
        base = record_spec()
        variants = [
            record_spec(app="lu"),
            record_spec(mode=ExecutionMode.PICOLOG),
            record_spec(chunk_size=1000),
            record_spec(scale=0.06),
            record_spec(seed=4),
            record_spec(num_threads=4),
            record_spec(simultaneous=4),
        ]
        hashes = {spec.content_hash() for spec in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_machine_override_order_is_canonical(self):
        one = RunSpec(kind="record", app="fft", mode="order_only",
                      machine_overrides=(("num_processors", 4),
                                         ("simultaneous_chunks", 4)))
        two = RunSpec(kind="record", app="fft", mode="order_only",
                      machine_overrides=(("simultaneous_chunks", 4),
                                         ("num_processors", 4)))
        assert one.content_hash() == two.content_hash()

    def test_canonical_includes_full_machine_config(self):
        canonical = record_spec(num_threads=4).canonical()
        assert canonical["machine"]["num_processors"] == 4
        # Defaults are resolved in, so changing a default in code
        # invalidates cached artifacts automatically.
        assert "standard_chunk_size" in canonical["machine"]

    def test_replay_depends_on_its_record(self):
        replay = RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                                scale=SCALE, seed=SEED)
        (dependency,) = replay.dependencies()
        assert dependency == record_spec()
        assert record_spec().dependencies() == ()

    def test_replay_default_perturb_seed_derives_from_seed(self):
        replay = RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                                seed=11)
        assert replay.perturb_seed == 11 * 13 + 7

    def test_kind_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec(kind="bogus", app="fft")
        with pytest.raises(ConfigurationError):
            RunSpec(kind="record", app="fft")   # mode missing
        with pytest.raises(ConfigurationError):
            RunSpec(kind="consistency", app="fft")  # model missing

    def test_hash_stable_across_processes(self):
        spec = record_spec()
        code = (
            "from repro.runner import RunSpec\n"
            "from repro.core.modes import ExecutionMode\n"
            f"spec = RunSpec.record('fft', ExecutionMode.ORDER_ONLY, "
            f"scale={SCALE!r}, seed={SEED})\n"
            "print(spec.content_hash())\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + \
            env.get("PYTHONPATH", "")
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code], env=env, check=True,
                capture_output=True, text=True).stdout.strip()
            for _ in range(2)
        }
        assert outputs == {spec.content_hash()}


# -- cache ------------------------------------------------------------


class TestResultCache:
    def test_miss_store_hit_round_trip(self, tmp_path):
        cache = fresh_cache(tmp_path)
        spec = record_spec()
        assert cache.load(spec) is None
        artifact = execute_spec(spec)
        path = cache.store(spec, artifact)
        assert path.is_file()
        loaded = cache.load(spec)
        assert loaded == artifact
        assert cache.counters() == {"hits": 1, "misses": 1,
                                    "stores": 1, "evictions": 0}
        assert cache.hit_rate == 0.5

    def test_corrupt_artifact_is_dropped(self, tmp_path):
        cache = fresh_cache(tmp_path)
        spec = record_spec()
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load(spec) is None
        assert not path.exists()

    def test_foreign_artifact_is_rejected(self, tmp_path):
        cache = fresh_cache(tmp_path)
        spec = record_spec()
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"spec_hash": "somebody-else"}))
        assert cache.load(spec) is None

    def test_salt_partitions_namespaces(self, tmp_path):
        spec = record_spec()
        artifact = execute_spec(spec)
        old = ResultCache(tmp_path / "cache", salt="code-v1")
        old.store(spec, artifact)
        new = ResultCache(tmp_path / "cache", salt="code-v2")
        assert new.load(spec) is None   # code changed: no stale hits

    def test_same_spec_yields_byte_identical_artifacts(self):
        # The determinism guard: same spec hash => byte-identical
        # artifact, for every job kind.
        specs = [
            record_spec(),
            RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                           scale=SCALE, seed=SEED),
            RunSpec.consistency("fft", ConsistencyModel.SC,
                                scale=SCALE, seed=SEED),
        ]
        for spec in specs:
            first = encode_artifact(execute_spec(spec))
            second = encode_artifact(execute_spec(spec))
            assert first == second, spec.label()


# -- jobs -------------------------------------------------------------


class TestJobs:
    def test_record_artifact_materializes_recording(self):
        artifact = execute_spec(record_spec())
        recording = recording_from_artifact(artifact)
        assert recording.stats.cycles == \
            artifact["metrics"]["cycles"]
        # Fresh object per materialization: no shared mutable state.
        assert recording is not recording_from_artifact(artifact)

    def test_replay_artifact_materializes_result(self, tmp_path):
        cache = fresh_cache(tmp_path)
        spec = RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                              scale=SCALE, seed=SEED)
        artifact = execute_spec(spec, cache)
        result = result_from_artifact(artifact)
        assert result.determinism.matches
        assert artifact["metrics"]["matches"] is True
        # The record dependency went through the cache.
        assert cache.load(spec.record_spec()) is not None

    def test_consistency_artifact(self):
        spec = RunSpec.consistency("fft", ConsistencyModel.RC,
                                   scale=SCALE, seed=SEED)
        artifact = execute_spec(spec)
        assert artifact["metrics"]["cycles"] > 0
        assert artifact["metrics"]["trace_length"] == 0  # no trace


# -- runner: success paths -------------------------------------------


class _Events(Reporter):
    def __init__(self):
        self.started = 0
        self.done = []
        self.retries = []
        self.failed = []
        self.finished = None

    def on_start(self, total_jobs):
        self.started = total_jobs

    def on_job_done(self, spec, *, from_cache, wall_time, metrics):
        self.done.append((spec.label(), from_cache))

    def on_retry(self, spec, attempt, delay, error):
        self.retries.append((spec.label(), attempt, error))

    def on_job_failed(self, spec, error, metrics):
        self.failed.append((spec.label(), error))

    def on_finish(self, metrics):
        self.finished = metrics.snapshot()


class TestRunnerSuccess:
    def test_inline_run_and_cache_hit(self, tmp_path):
        cache = fresh_cache(tmp_path)
        events = _Events()
        runner = Runner(jobs=1, cache=cache, reporter=events)
        spec = record_spec()
        first = runner.run_one(spec)
        assert runner.metrics.cache_hits == 0
        again = Runner(jobs=1, cache=cache).run_one(spec)
        assert encode_artifact(first) == encode_artifact(again)
        assert events.finished["done"] == 1

    def test_dedupes_requested_specs(self, tmp_path):
        runner = Runner(jobs=1, cache=fresh_cache(tmp_path))
        outcomes = runner.run([record_spec(), record_spec()])
        assert len(outcomes) == 1
        assert runner.metrics.done == 1

    def test_pool_runs_sweep(self, tmp_path):
        cache = fresh_cache(tmp_path)
        runner = Runner(jobs=2, cache=cache)
        specs = [record_spec(app=app) for app in ("fft", "lu")]
        outcomes = runner.run(specs)
        assert all(outcome.ok for outcome in outcomes)
        assert runner.metrics.done == 2
        # Second sweep: pure cache.
        rerun = Runner(jobs=2, cache=fresh_cache(tmp_path))
        rerun_outcomes = rerun.run(specs)
        assert all(outcome.from_cache for outcome in rerun_outcomes)
        assert rerun.metrics.cache_hit_rate == 1.0

    def test_replay_wave_reuses_cached_record(self, tmp_path):
        cache = fresh_cache(tmp_path)
        runner = Runner(jobs=2, cache=cache)
        replays = [
            RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                           scale=SCALE, seed=SEED),
            RunSpec.replay("fft", ExecutionMode.ORDER_ONLY,
                           use_strata=True, scale=SCALE, seed=SEED),
        ]
        outcomes = runner.run(replays)
        assert all(outcome.ok for outcome in outcomes)
        # The shared record dependency ran as its own (cached) job.
        assert cache.load(replays[0].record_spec()) is not None
        # 2 replays + 1 injected dependency.
        assert runner.metrics.done == 3


# -- runner: failure paths -------------------------------------------

_COUNTER = "attempts.count"


def _tally(cache) -> int:
    # The runner always passes a ResultCache when caching is on; its
    # root directory doubles as scratch space for these fault jobs.
    counter = Path(str(cache.root)) / _COUNTER
    counter.parent.mkdir(parents=True, exist_ok=True)
    with open(counter, "a") as handle:
        handle.write("x")
    return counter.stat().st_size


def _always_failing_job(spec, cache):
    raise RuntimeError("synthetic job failure")


def _sleepy_job(spec, cache):
    time.sleep(30)
    return {"never": "returned"}


def _flaky_job(spec, cache):
    if _tally(cache) < 2:
        raise RuntimeError("transient flake")
    return {"schema": 1, "kind": spec.kind, "spec": spec.canonical(),
            "spec_hash": spec.content_hash(), "metrics": {"ok": 1}}


def _crashy_job(spec, cache):
    if _tally(cache) < 2:
        os._exit(13)   # hard worker death: exercises pool rebuild
    return {"schema": 1, "kind": spec.kind, "spec": spec.canonical(),
            "spec_hash": spec.content_hash(), "metrics": {"ok": 1}}


FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base=0.01,
                         backoff_max=0.01)


class TestRunnerFailure:
    def test_exception_retries_then_structured_failure(self, tmp_path):
        events = _Events()
        runner = Runner(jobs=1, cache=fresh_cache(tmp_path),
                        retry=FAST_RETRY, reporter=events,
                        job_fn=_always_failing_job)
        outcome = runner.run([record_spec()])[0]
        assert not outcome.ok
        assert outcome.attempts == 2
        record = outcome.failure
        assert record.error_type == "RuntimeError"
        assert [a.attempt for a in record.attempts] == [1, 2]
        assert "synthetic job failure" in record.summary()
        assert events.retries and events.failed
        assert runner.metrics.failed == 1

    def test_run_one_raises_runner_error(self, tmp_path):
        runner = Runner(jobs=1, cache=fresh_cache(tmp_path),
                        retry=RetryPolicy(max_attempts=1),
                        job_fn=_always_failing_job)
        with pytest.raises(RunnerError, match="synthetic"):
            runner.run_one(record_spec())

    @pytest.mark.skipif(not hasattr(__import__("signal"), "SIGALRM"),
                        reason="needs SIGALRM")
    def test_timeout_retries_then_structured_failure(self, tmp_path):
        events = _Events()
        runner = Runner(jobs=1, cache=fresh_cache(tmp_path),
                        timeout=0.2, retry=FAST_RETRY,
                        reporter=events, job_fn=_sleepy_job)
        started = time.perf_counter()
        outcome = runner.run([record_spec()])[0]
        assert time.perf_counter() - started < 10
        assert not outcome.ok
        assert outcome.failure.error_type == "JobTimeout"
        assert "0.2s budget" in outcome.failure.last.message
        assert len(outcome.failure.attempts) == 2

    def test_flaky_job_recovers_on_retry(self, tmp_path):
        runner = Runner(jobs=1, cache=fresh_cache(tmp_path),
                        retry=FAST_RETRY, job_fn=_flaky_job)
        outcome = runner.run([record_spec()])[0]
        assert outcome.ok
        assert outcome.attempts == 2
        assert runner.metrics.retries == 1

    def test_crashed_worker_does_not_kill_the_sweep(self, tmp_path):
        # One job hard-kills its worker once; the pool is rebuilt, the
        # job retried, and an innocent sibling job still completes.
        runner = Runner(jobs=2, cache=fresh_cache(tmp_path),
                        retry=RetryPolicy(max_attempts=3,
                                          backoff_base=0.01,
                                          backoff_max=0.01),
                        job_fn=_crashy_job)
        outcomes = runner.run([record_spec(app="fft"),
                               record_spec(app="lu")])
        assert all(outcome.ok for outcome in outcomes)
        assert any(outcome.attempts > 1 for outcome in outcomes)

    def test_failure_degrades_sweep_not_kills_it(self, tmp_path):
        # A sweep mixing a doomed job with good ones finishes, with
        # the failure reported alongside the successes.
        cache = fresh_cache(tmp_path)
        good = record_spec()
        cache.store(good, execute_spec(good))
        runner = Runner(jobs=1, cache=cache, retry=FAST_RETRY,
                        job_fn=_always_failing_job)
        outcomes = runner.run([good, record_spec(app="lu")])
        assert outcomes[0].ok and outcomes[0].from_cache
        assert not outcomes[1].ok
        assert runner.metrics.done == 1
        assert runner.metrics.failed == 1


# -- figures ----------------------------------------------------------


class TestFigures:
    def test_specs_for_dedupes_shared_runs(self):
        figures = resolve_figures(["fig10", "fig11"])
        apps = ("fft", "lu")
        union = specs_for(figures, apps=apps, scale=SCALE, seed=SEED)
        separate = sum(len(fig.specs(apps, SCALE, SEED))
                       for fig in figures)
        assert len(union) < separate   # RC baselines shared
        assert len({spec.content_hash() for spec in union}) == \
            len(union)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            resolve_figures(["fig99"])

    def test_default_resolves_all(self):
        assert {fig.name for fig in resolve_figures([])} >= \
            {"fig06", "fig07", "fig10", "fig11"}
