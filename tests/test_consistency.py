"""Tests for the interleaved SC/PC/RC executor."""

import pytest

from conftest import counter_program, straight_line_program, \
    two_phase_program, small_config

from repro.baselines.consistency import (
    ConsistencyModel,
    InterleavedExecutor,
)
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.workloads.program_builder import ProgramBuilder, shared_address


def run(program, model=ConsistencyModel.SC, collect=True):
    return InterleavedExecutor(
        program, small_config(), model, collect_trace=collect).run()


class TestExecutionSemantics:
    def test_locked_counter_exact(self):
        result = run(counter_program(4, 15))
        assert result.final_memory[shared_address(0)] == 60

    def test_barrier_copy(self):
        result = run(two_phase_program())
        for index in range(8):
            assert result.final_memory[
                shared_address(256) + index] == 100 + index

    def test_instruction_accounting(self):
        result = run(straight_line_program(threads=2, length=25))
        assert result.total_instructions == 2 * 25 * 7
        assert result.per_proc_instructions[0] == 25 * 7

    def test_runs_are_deterministic(self):
        a = run(counter_program(3, 12))
        b = run(counter_program(3, 12))
        assert a.cycles == b.cycles
        assert a.final_memory == b.final_memory
        assert [t.index for t in a.trace] == [t.index for t in b.trace]

    def test_interrupt_handler_executes(self):
        program = counter_program(2, 20)
        program.interrupts.append(InterruptEvent(
            time=100.0, processor=0, vector=2, handler_ops=16))
        result = run(program)
        from repro.machine.events import INTERRUPT_CONTROLLER_BASE
        touched = [a for a in result.final_memory
                   if a >= INTERRUPT_CONTROLLER_BASE]
        assert touched

    def test_dma_applies(self):
        program = counter_program(2, 20)
        program.dma_transfers.append(DmaTransfer(
            time=50.0, writes={shared_address(700): 5}))
        result = run(program)
        assert result.final_memory[shared_address(700)] == 5


class TestTimingModels:
    @staticmethod
    def _spin_free_shared_program():
        """Shared traffic but no spins, so dynamic instruction counts
        are identical under every timing model."""
        builder = ProgramBuilder(4, name="spinfree")
        for thread in range(4):
            with builder.thread(thread) as t:
                for index in range(40):
                    t.compute(4)
                    t.store(shared_address(4096 + thread * 512 + index),
                            value=index)
                    t.load(shared_address(4096 + ((thread + 1) % 4)
                                          * 512 + index))
        return builder.build()

    def test_rc_fastest_sc_slowest(self):
        program = self._spin_free_shared_program()
        sc = run(program, ConsistencyModel.SC, collect=False)
        pc = run(program, ConsistencyModel.PC, collect=False)
        rc = run(program, ConsistencyModel.RC, collect=False)
        assert rc.cycles < pc.cycles < sc.cycles

    def test_models_agree_on_architecture(self):
        """Timing models may not change computed state (for spin-free
        programs; spin counts legitimately vary with timing)."""
        program = self._spin_free_shared_program()
        sc = run(program, ConsistencyModel.SC)
        rc = run(program, ConsistencyModel.RC)
        assert sc.final_memory == rc.final_memory
        assert sc.total_instructions == rc.total_instructions

    def test_locked_programs_agree_on_final_state(self):
        """Even with spins, the architectural outcome is the same."""
        program = counter_program(3, 10)
        sc = run(program, ConsistencyModel.SC)
        rc = run(program, ConsistencyModel.RC)
        assert sc.final_memory == rc.final_memory

    def test_ipc_positive(self):
        result = run(straight_line_program())
        assert result.ipc > 0


class TestTrace:
    def test_trace_is_globally_ordered(self):
        result = run(counter_program(3, 10))
        assert [a.index for a in result.trace] == list(
            range(len(result.trace)))

    def test_per_proc_counts_monotonic(self):
        result = run(counter_program(3, 10))
        last: dict[int, tuple] = {}
        for access in result.trace:
            key = (access.instruction, access.operation)
            if access.processor in last:
                assert key >= last[access.processor]
            last[access.processor] = key

    def test_writes_flagged(self):
        result = run(two_phase_program())
        data_line = shared_address(128) >> 3
        writes = [a for a in result.trace
                  if a.line == data_line and a.is_write]
        assert writes and all(a.processor == 0 for a in writes)

    def test_collect_trace_off(self):
        result = run(counter_program(2, 5), collect=False)
        assert result.trace == []

    def test_spin_reads_appear_in_trace(self):
        """Failed lock acquires are reads in the trace -- the WAR/RAW
        structure conventional recorders must see."""
        builder = ProgramBuilder(2, name="contended")
        from repro.workloads.program_builder import lock_address
        lock = lock_address(0)
        for thread in range(2):
            with builder.thread(thread) as t:
                for _ in range(4):
                    t.lock(lock)
                    t.compute(30)
                    t.unlock(lock)
        result = run(builder.build())
        lock_line = lock >> 3
        reads = [a for a in result.trace
                 if a.line == lock_line and not a.is_write]
        assert reads
