"""Tests for repro.debugger: time-travel replay debugging."""

import io
import json

import pytest

from conftest import counter_program, racy_increment_program

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.debugger import (
    CheckpointIndex,
    DebuggerShell,
    ReplayController,
    load_recording_artifact,
)
from repro.errors import ConfigurationError, ReproError
from repro.telemetry.tracer import EventTracer
from repro.workloads import commercial_program


def record(mode=ExecutionMode.ORDER_ONLY, program=None,
           checkpoint_every=0):
    # Small chunks so a modest program yields a few dozen commits.
    system = DeLoreanSystem(mode=mode, chunk_size=40)
    return system.record(program or counter_program(2, 40),
                         checkpoint_every=checkpoint_every)


def record_sweb(mode=ExecutionMode.ORDER_ONLY, scale=0.5, seed=1,
                checkpoint_every=0):
    """A DMA- and interrupt-carrying recording."""
    system = DeLoreanSystem(mode=mode)
    return system.record(
        commercial_program("sweb2005", scale=scale, seed=seed),
        checkpoint_every=checkpoint_every)


class TestStepping:
    def test_step_advances_exactly_one_commit(self):
        controller = ReplayController(record())
        for expected in range(1, 6):
            stop = controller.step()
            assert stop.reason == "step"
            assert controller.gcc == expected
            assert stop.commit.gcc == expected

    def test_step_many(self):
        controller = ReplayController(record())
        controller.step(7)
        assert controller.gcc == 7

    def test_commit_views_match_recording_fingerprints(self):
        recording = record()
        controller = ReplayController(recording)
        for index in range(4):
            stop = controller.step()
            assert (stop.commit.fingerprint
                    == recording.fingerprints[index])

    def test_cont_runs_to_end(self):
        recording = record()
        controller = ReplayController(recording)
        stop = controller.cont()
        assert stop.reason == "end"
        assert controller.finished
        assert controller.gcc == len(recording.fingerprints)
        assert stop.message == "replay complete"

    def test_committed_memory_is_prefix_exact(self):
        """Paused at GCC = n, memory holds exactly the first n
        commits' writes over the initial image."""
        recording = record()
        controller = ReplayController(recording)
        expected = dict(recording.program.initial_memory)
        for index in range(6):
            controller.step()
            expected.update(dict(recording.fingerprints[index][5]))
            view = {a: v for a, v in expected.items() if v}
            got = {a: v for a, v
                   in controller.memory_view().items() if v}
            assert got == view

    def test_step_past_end_returns_last_stop(self):
        controller = ReplayController(record())
        end = controller.cont()
        assert controller.step() is end


class TestReverseAndGoto:
    def test_rstep_lands_exactly_one_commit_back(self):
        recording = record(checkpoint_every=5)
        controller = ReplayController(recording, checkpoint_every=5)
        controller.step(9)
        fingerprint_at_8 = None
        probe = ReplayController(recording, checkpoint_every=5)
        probe.step(8)
        fingerprint_at_8 = probe.state_fingerprint()
        stop = controller.rstep()
        assert stop.gcc == 8
        assert controller.gcc == 8
        assert controller.state_fingerprint() == fingerprint_at_8

    def test_goto_backward_across_checkpoint_boundary(self):
        recording = record(checkpoint_every=6)
        controller = ReplayController(recording, checkpoint_every=6)
        controller.cont()
        total = controller.gcc
        target = 7  # between the checkpoints at 6 and 12
        probe = ReplayController(recording)
        probe.step(target)
        stop = controller.goto(target)
        assert stop.gcc == target
        assert controller.gcc == target
        assert controller.state_fingerprint() \
            == probe.state_fingerprint()
        assert 0 < controller.last_reexecuted <= 6
        assert controller.last_reexecuted < total

    def test_goto_reexecution_is_checkpoint_bounded(self):
        """O(N / interval): after one forward pass, every backward
        jump re-executes fewer commits than the checkpoint interval."""
        interval = 4
        recording = record(checkpoint_every=0)
        controller = ReplayController(recording,
                                      checkpoint_every=interval)
        controller.cont()
        total = controller.gcc
        assert total > 2 * interval
        for target in range(total - 1, interval, -3):
            controller.goto(target)
            assert controller.last_reexecuted < interval, (
                f"goto {target} re-executed "
                f"{controller.last_reexecuted} commits")

    def test_goto_forward_does_not_rebuild(self):
        controller = ReplayController(record())
        controller.step(2)
        stop = controller.goto(5)
        assert stop.gcc == 5
        assert controller.last_reexecuted == 0

    def test_goto_zero_restores_initial_state(self):
        recording = record()
        controller = ReplayController(recording)
        controller.step(5)
        controller.goto(0)
        assert controller.gcc == 0
        initial = {a: v for a, v
                   in recording.program.initial_memory.items() if v}
        got = {a: v for a, v
               in controller.memory_view().items() if v}
        assert got == initial

    def test_goto_out_of_range_rejected(self):
        recording = record()
        controller = ReplayController(recording)
        with pytest.raises(ConfigurationError):
            controller.goto(len(recording.fingerprints) + 1)
        with pytest.raises(ConfigurationError):
            controller.goto(-1)

    def test_state_matches_straight_line_replay_everywhere(self):
        """The acceptance check: debugger state at any GCC equals a
        fresh straight-line replay paused at the same GCC."""
        recording = record(checkpoint_every=5)
        controller = ReplayController(recording, checkpoint_every=5)
        controller.cont()
        total = controller.gcc
        for target in (total // 2, 3, total - 1):
            controller.goto(target)
            probe = ReplayController(recording)
            probe.step(target)
            assert controller.state_fingerprint() \
                == probe.state_fingerprint()
            assert controller.log_cursors() == probe.log_cursors()


class TestBreakpoints:
    def test_write_watchpoint_stops_on_writing_commit(self):
        recording = record()
        # Pick an address some commit actually writes.
        address = None
        for fingerprint in recording.fingerprints:
            if fingerprint[0] != "dma" and fingerprint[5]:
                address = fingerprint[5][0][0]
                break
        assert address is not None
        controller = ReplayController(recording)
        controller.breakpoints.add("write", address=address)
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert address in stop.commit.writes
        # The first writing commit, not a later one.
        for fingerprint in recording.fingerprints[:stop.gcc - 1]:
            writes = dict(fingerprint[5]) if fingerprint[0] != "dma" \
                else dict(fingerprint[2])
            assert address not in writes

    def test_commit_breakpoint_filters_by_processor(self):
        recording = record()
        target_proc = recording.fingerprints[3][0]
        controller = ReplayController(recording)
        controller.breakpoints.add("commit", proc=target_proc)
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert stop.commit.proc == target_proc

    def test_when_predicate_composes(self):
        recording = record()
        controller = ReplayController(recording)
        controller.breakpoints.add(
            "commit", when=lambda view: view.gcc >= 4)
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert stop.gcc == 4

    def test_dma_breakpoint(self):
        recording = record_sweb()
        assert len(recording.dma_log.entries) > 0
        controller = ReplayController(recording)
        controller.breakpoints.add("dma")
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert stop.commit.is_dma
        assert stop.commit.writes

    def test_interrupt_breakpoint(self):
        recording = record_sweb()
        assert any(log.entries
                   for log in recording.interrupt_logs.values())
        controller = ReplayController(recording)
        controller.breakpoints.add("interrupt")
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert stop.commit.interrupts

    def test_read_watchpoint_uses_line_granularity(self):
        recording = record()
        controller = ReplayController(recording)
        probe = ReplayController(recording)
        probe.step()
        lines = probe.current.read_lines
        assert lines
        line = sorted(lines)[0]
        words_per_line = probe.machine.config.line_words
        controller.breakpoints.add(
            "read", address=line * words_per_line)
        stop = controller.cont()
        assert stop.reason == "breakpoint"
        assert line in stop.commit.read_lines

    def test_delete_and_clear(self):
        controller = ReplayController(record())
        bp = controller.breakpoints.add("commit")
        assert controller.breakpoints.remove(bp.number)
        assert not controller.breakpoints.remove(bp.number)
        controller.breakpoints.add("commit")
        controller.breakpoints.clear()
        stop = controller.cont()
        assert stop.reason == "end"

    def test_disabled_breakpoint_does_not_fire(self):
        controller = ReplayController(record())
        bp = controller.breakpoints.add("commit")
        bp.enabled = False
        stop = controller.cont()
        assert stop.reason == "end"

    def test_hit_counting(self):
        controller = ReplayController(record())
        bp = controller.breakpoints.add("commit")
        controller.cont()
        controller.cont()
        assert bp.hits == 2


class TestDivergence:
    def test_tampered_fingerprint_stops_with_divergence(self):
        recording = record()
        recording.fingerprints[4] = ("tampered",)
        controller = ReplayController(recording)
        stop = controller.cont()
        assert stop.reason == "divergence"
        assert stop.gcc == 5
        assert "tampered" in stop.message

    def test_forward_motion_blocked_after_divergence(self):
        recording = record()
        recording.fingerprints[4] = ("tampered",)
        controller = ReplayController(recording)
        controller.cont()
        with pytest.raises(ConfigurationError):
            controller.cont()

    def test_reverse_from_divergence_rebuilds_clean(self):
        recording = record()
        good = list(recording.fingerprints)
        recording.fingerprints[4] = ("tampered",)
        controller = ReplayController(recording, checkpoint_every=3)
        controller.cont()
        stop = controller.rstep()
        assert stop.gcc == 4
        # State at gcc 4 is still the converged prefix.
        expected = dict(recording.program.initial_memory)
        for fingerprint in good[:4]:
            expected.update(dict(fingerprint[5]))
        got = {a: v for a, v in controller.memory_view().items() if v}
        assert got == {a: v for a, v in expected.items() if v}

    def test_no_verify_skips_fingerprint_check(self):
        recording = record()
        recording.fingerprints[4] = ("tampered",)
        controller = ReplayController(recording, verify=False)
        stop = controller.cont()
        assert stop.reason == "end"


class TestCheckpointIndex:
    def test_at_or_before(self):
        index = CheckpointIndex(interval=10)
        assert index.at_or_before(99) is None
        recording = record(checkpoint_every=5)
        adopted = index.seed_from_recording(recording)
        assert adopted == len(index)
        assert adopted > 0
        checkpoint = index.at_or_before(7)
        assert checkpoint is not None
        assert checkpoint.commit_index == 5

    def test_dedupe(self):
        index = CheckpointIndex()
        recording = record(checkpoint_every=5)
        index.seed_from_recording(recording)
        before = len(index)
        assert index.seed_from_recording(recording) == 0
        assert len(index) == before

    def test_debug_checkpoints_taken_while_running(self):
        controller = ReplayController(record(), checkpoint_every=4)
        controller.cont()
        positions = controller.checkpoints.positions()
        assert positions
        assert all(gcc % 4 == 0 for gcc in positions)


class TestTelemetry:
    def test_debugger_track_events(self):
        tracer = EventTracer()
        controller = ReplayController(record(), checkpoint_every=8,
                                      tracer=tracer)
        controller.breakpoints.add("commit")
        controller.cont()
        controller.rstep()
        names = [e.name for e in tracer.events
                 if e.track == "debugger"]
        assert any(n.startswith("stop breakpoint") for n in names)
        assert any(n.startswith("goto") for n in names)
        reexec = [e.args.get("reexecuted") for e in tracer.events
                  if e.track == "debugger"
                  and e.name.startswith("goto")]
        assert all(r is not None for r in reexec)


class TestShell:
    def run_script(self, recording, script, session_log=None,
                   checkpoint_every=8):
        controller = ReplayController(recording,
                                      checkpoint_every=checkpoint_every)
        out = io.StringIO()
        shell = DebuggerShell(controller, session_log=session_log,
                              stdin=io.StringIO(script), stdout=out)
        shell.cmdloop()
        return controller, out.getvalue()

    def test_scripted_session(self, tmp_path):
        recording = record()
        log = tmp_path / "session.jsonl"
        controller, output = self.run_script(
            recording,
            "break commit\nrun\nstep\nrstep\nwhere\nprint 0x10\n"
            "threads\nlogs\nquit\n",
            session_log=str(log))
        assert "[gcc 1] breakpoint #1" in output
        assert "[gcc 2] step" in output
        assert "[gcc 1] goto" in output
        assert "gcc 1 of" in output
        assert "0x10 = " in output
        entries = [json.loads(line)
                   for line in log.read_text().splitlines()]
        kinds = {entry["event"] for entry in entries}
        assert {"command", "stop", "print", "threads",
                "logs", "quit"} <= kinds
        stops = [e for e in entries if e["event"] == "stop"]
        assert stops[0]["reason"] == "breakpoint"
        assert stops[0]["gcc"] == 1

    def test_watch_hits_contended_address(self):
        recording = record(program=racy_increment_program(2, 20))
        address = None
        for fingerprint in recording.fingerprints:
            if fingerprint[0] != "dma" and fingerprint[5]:
                address = fingerprint[5][0][0]
                break
        controller, output = self.run_script(
            recording, f"watch 0x{address:x}\nrun\nprint 0x{address:x}"
                       f"\nquit\n")
        assert f"watchpoint #1 write 0x{address:x}" in output
        assert "breakpoint #1" in output
        value = controller.read_word(address)
        assert f"0x{address:x} = {value}" in output

    def test_unknown_command_reported(self):
        _, output = self.run_script(record(), "frobnicate\nquit\n")
        assert "unknown command" in output

    def test_errors_do_not_kill_session(self):
        _, output = self.run_script(
            record(), "goto 999999\nstep\nquit\n")
        assert "error:" in output
        assert "[gcc 1] step" in output

    def test_trace_on_writes_perfetto(self, tmp_path):
        path = tmp_path / "dbg.json"
        _, output = self.run_script(
            record(), f"trace on {path}\nstep\nrstep\nquit\n")
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestLoading:
    def serializable_recording(self):
        # The .dlrn container packs CS entries at the standard chunk
        # size's bit width, so serialize a default-config recording.
        return DeLoreanSystem().record(counter_program(2, 12))

    def test_dlrn_file(self, tmp_path):
        from repro.core.serialization import save_recording
        recording = self.serializable_recording()
        path = tmp_path / "app.dlrn"
        path.write_bytes(save_recording(recording))
        loaded = load_recording_artifact(str(path))
        assert loaded.fingerprints == recording.fingerprints

    def test_runner_record_artifact(self, tmp_path):
        import base64
        from repro.core.serialization import save_recording
        recording = self.serializable_recording()
        artifact = {
            "payload_codec": "dlrn",
            "payload": base64.b64encode(
                save_recording(recording)).decode("ascii"),
        }
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps(artifact))
        loaded = load_recording_artifact(str(path))
        assert loaded.fingerprints == recording.fingerprints

    def test_non_record_artifact_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"payload_codec": "pickle",
                                    "payload": ""}))
        with pytest.raises(ReproError):
            load_recording_artifact(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ReproError):
            load_recording_artifact(str(path))


class TestAllModes:
    @pytest.mark.parametrize("mode", [ExecutionMode.ORDER_AND_SIZE,
                                      ExecutionMode.ORDER_ONLY,
                                      ExecutionMode.PICOLOG])
    def test_time_travel_under_every_mode(self, mode):
        recording = record_sweb(mode=mode, scale=0.4,
                                checkpoint_every=10)
        controller = ReplayController(recording, checkpoint_every=10)
        controller.step(15)
        probe = ReplayController(recording)
        probe.step(15)
        fingerprint = probe.state_fingerprint()
        controller.cont()
        assert controller.finished
        controller.goto(15)
        assert controller.state_fingerprint() == fingerprint
        assert controller.last_reexecuted <= 10
