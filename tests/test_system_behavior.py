"""Behavioral system tests: edge configurations and exceptional paths."""

import pytest

from conftest import counter_program, small_config, \
    straight_line_program

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode, preferred_config
from repro.core.replayer import ReplayPerturbation
from repro.chunks.chunk import TruncationReason
from repro.machine.program import Op, OpKind, Program
from repro.machine.system import ChunkMachine
from repro.workloads.program_builder import (
    ProgramBuilder,
    lock_address,
    shared_address,
)


def machine_for(program, **overrides):
    config = small_config(**overrides)
    mode = preferred_config(ExecutionMode.ORDER_ONLY).with_chunk_size(
        config.standard_chunk_size)
    return ChunkMachine(program, config, mode)


class TestDegenerateConfigurations:
    def test_single_processor_machine(self):
        program = straight_line_program(threads=1, length=40)
        config = small_config(num_processors=1)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording, result = system.record_and_verify(program)
        assert result.determinism.matches

    def test_idle_processors_tolerated(self):
        """Two threads on an eight-processor machine."""
        program = counter_program(2, 10)
        config = small_config(num_processors=8)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording, result = system.record_and_verify(program)
        assert result.determinism.matches

    def test_empty_thread_in_program(self):
        program = Program(threads=[
            [Op(OpKind.COMPUTE, count=20)],
            [],
        ])
        machine = machine_for(program)
        result = machine.run()
        assert result.stats.total_committed_chunks == 1

    def test_single_chunk_window_machine(self):
        program = counter_program(3, 12)
        config = small_config(simultaneous_chunks=1)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording, result = system.record_and_verify(program)
        assert result.determinism.matches

    def test_serial_commit_machine(self):
        program = counter_program(3, 12)
        config = small_config(max_concurrent_commits=1)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording, result = system.record_and_verify(program)
        assert result.determinism.matches

    def test_sixteen_processor_picolog(self):
        from repro.workloads import splash2_program
        program = splash2_program("water-sp", scale=0.05, seed=3,
                                  num_threads=16)
        from repro.machine.timing import MachineConfig
        system = DeLoreanSystem(
            mode=ExecutionMode.PICOLOG,
            machine_config=MachineConfig(num_processors=16))
        recording, result = system.record_and_verify(program)
        assert result.determinism.matches


class TestCollisionReduction:
    def test_repeated_collisions_shrink_chunks(self):
        """With a retry limit of 1, contended chunks shrink and their
        sizes land in the CS log (Section 4.2.3)."""
        builder = ProgramBuilder(4, name="hot")
        hot = shared_address(0)
        for thread in range(4):
            writer = builder.writer(thread)
            for _ in range(60):
                writer.rmw(hot, 1)
                writer.compute(8)
        config = small_config(squash_retry_limit=1)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(builder.build())
        assert recording.stats.collision_truncations > 0
        cs_entries = sum(len(log) for log in
                         recording.cs_logs.values())
        assert cs_entries >= recording.stats.collision_truncations
        result = system.replay(recording,
                               perturbation=ReplayPerturbation(seed=2))
        assert result.determinism.matches
        assert recording.final_memory[hot] == 4 * 60

    def test_picolog_never_reduces(self):
        """Repeated chunk collision cannot occur in PicoLog (Table 4)."""
        builder = ProgramBuilder(4, name="hot")
        hot = shared_address(0)
        for thread in range(4):
            writer = builder.writer(thread)
            for _ in range(60):
                writer.rmw(hot, 1)
                writer.compute(8)
        config = small_config(squash_retry_limit=1)
        system = DeLoreanSystem(mode=ExecutionMode.PICOLOG,
                                machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(builder.build())
        assert recording.stats.collision_truncations == 0


class TestStallAccounting:
    def test_stalls_recorded_under_commit_pressure(self):
        """A one-chunk window with slow arbitration forces stalls."""
        program = straight_line_program(threads=4, length=200)
        config = small_config(simultaneous_chunks=1,
                              arbitration_roundtrip=400,
                              commit_propagation_cycles=400)
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(program)
        assert recording.stats.stall_cycles_total > 0
        assert 0 < recording.stats.stall_fraction < 1


class TestBoundaryChunks:
    def test_leading_io_creates_empty_chunk(self):
        """An I/O load as a thread's first op yields a zero-instruction
        chunk carrying only the boundary op."""
        program = Program(threads=[
            [Op(OpKind.IO_LOAD, address=1),
             Op(OpKind.STORE, address=shared_address(8))],
            [Op(OpKind.COMPUTE, count=30)],
        ])
        machine = machine_for(program)
        result = machine.run()
        sizes = [f[4] for f in result.per_proc_fingerprints[0]]
        assert sizes[0] == 0
        assert result.final_memory.get(shared_address(8)) is not None

    def test_consecutive_specials(self):
        program = Program(threads=[
            [Op(OpKind.SPECIAL), Op(OpKind.SPECIAL),
             Op(OpKind.COMPUTE, count=5)],
        ])
        machine = machine_for(program)
        result = machine.run()
        assert result.stats.total_committed_instructions == 7

    def test_handler_spanning_chunks(self):
        """A handler longer than the chunk size spans chunks and still
        replays (the in-handler continuation state)."""
        from repro.machine.events import InterruptEvent
        program = Program(threads=[
            [Op(OpKind.COMPUTE, count=400)],
            [Op(OpKind.COMPUTE, count=400)],
        ])
        program.interrupts.append(InterruptEvent(
            time=10.0, processor=0, vector=2, handler_ops=200))
        config = small_config()  # 64-instruction chunks
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording, result = system.record_and_verify(program)
        assert recording.stats.handler_chunks == 1  # initiating chunk
        handler_instructions = sum(
            f[4] for f in recording.per_proc_fingerprints[0])
        assert handler_instructions == 400 + 200


class TestTruncationReporting:
    def test_io_truncation_counted(self):
        builder = ProgramBuilder(1, name="io")
        builder.writer(0).compute(20).io_load(1).compute(20)
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(builder.build())
        assert recording.stats.io_truncations == 1

    def test_deterministic_truncations_not_in_cs_log(self):
        builder = ProgramBuilder(1, name="io")
        builder.writer(0).compute(20).io_load(1).special().compute(20)
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(builder.build())
        assert len(recording.cs_logs[0]) == 0  # reoccur in replay


class TestLockFairnessAcrossChunks:
    def test_contended_lock_makes_progress_every_mode(self):
        builder = ProgramBuilder(4, name="contended")
        lock = lock_address(0)
        cell = shared_address(64)
        for thread in range(4):
            writer = builder.writer(thread)
            for _ in range(8):
                writer.lock(lock)
                writer.load(cell)
                writer.compute(30)
                writer.rmw(cell, 1)
                writer.unlock(lock)
        for mode in list(ExecutionMode):
            config = small_config()
            system = DeLoreanSystem(
                mode=mode, machine_config=config,
                chunk_size=config.standard_chunk_size)
            recording, result = system.record_and_verify(
                builder.build())
            assert recording.final_memory[cell] == 32, mode
