"""Tests for the Bloom-filter address signatures.

The load-bearing property is *no false negatives*: if two signatures
report disjoint, the underlying address sets truly are disjoint -- a
missed conflict would silently break chunk atomicity.
"""

import pytest
from hypothesis import given, strategies as st

from repro.chunks.signature import Signature, SignatureConfig
from repro.errors import ConfigurationError


class TestSignatureBasics:
    def test_empty_signature(self):
        sig = Signature()
        assert sig.is_empty()
        assert sig.population == 0
        assert sig.inserted_lines == 0

    def test_insert_and_membership(self):
        sig = Signature()
        sig.insert(0x1234)
        assert sig.may_contain(0x1234)
        assert not sig.is_empty()
        assert sig.inserted_lines == 1

    def test_clear(self):
        sig = Signature()
        sig.insert(1)
        sig.insert(2)
        sig.clear()
        assert sig.is_empty()
        assert sig.population == 0

    def test_copy_is_independent(self):
        sig = Signature()
        sig.insert(10)
        dup = sig.copy()
        dup.insert(20)
        assert dup.may_contain(20)
        assert sig.population < dup.population

    def test_union_update(self):
        a, b = Signature(), Signature()
        a.insert(1)
        b.insert(2)
        a.union_update(b)
        assert a.may_contain(1)
        assert a.may_contain(2)

    def test_self_intersection(self):
        sig = Signature()
        sig.insert(99)
        assert sig.intersects(sig)

    def test_empty_never_intersects(self):
        a, b = Signature(), Signature()
        b.insert(5)
        assert not a.intersects(b)
        assert not b.intersects(a)

    def test_repr_mentions_population(self):
        sig = Signature()
        sig.insert(1)
        assert "population" in repr(sig)


class TestSignatureConfig:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureConfig(size_bits=1000)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureConfig(size_bits=0)

    def test_too_many_hashes_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureConfig(num_hashes=9)

    def test_multi_hash_membership(self):
        config = SignatureConfig(size_bits=4096, num_hashes=3)
        sig = Signature(config)
        sig.insert(7)
        assert sig.may_contain(7)


@given(st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=60),
       st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=60))
def test_no_false_negative_intersection(lines_a, lines_b):
    """If the address sets overlap, the signatures must intersect."""
    a, b = Signature(), Signature()
    for line in lines_a:
        a.insert(line)
    for line in lines_b:
        b.insert(line)
    if lines_a & lines_b:
        assert a.intersects(b)
        assert b.intersects(a)


@given(st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=60))
def test_no_false_negative_membership(lines):
    """Every inserted line tests as possibly-present."""
    sig = Signature()
    for line in lines:
        sig.insert(line)
    for line in lines:
        assert sig.may_contain(line)


def test_false_positives_exist_when_space_is_tiny():
    """Aliasing is real: a tiny hash space must collide eventually."""
    config = SignatureConfig(size_bits=16, num_hashes=1)
    a = Signature(config)
    for line in range(40):
        a.insert(line)
    b = Signature(config)
    b.insert(123456789)
    assert a.intersects(b)  # pigeonhole: 40 keys in 16 slots


def test_default_space_keeps_aliasing_rare():
    """With the default hash space, two modest disjoint sets should
    rarely alias (this specific pair must not)."""
    a, b = Signature(), Signature()
    for line in range(0, 50):
        a.insert(line)
    for line in range(1000, 1050):
        b.insert(line)
    assert not a.intersects(b)
