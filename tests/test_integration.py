"""Cross-module integration tests: the paper's qualitative claims at
miniature scale.

These check *shape* relationships between modes and against baselines
(who is smaller/faster than whom), leaving the full-scale numbers to
the benchmark harness.
"""

import pytest

from repro.analysis.report import geometric_mean
from repro.baselines import (
    ConsistencyModel,
    FDRRecorder,
    InterleavedExecutor,
    RTRRecorder,
    StrataRecorder,
)
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.workloads import splash2_program


SCALE = 0.25
SEED = 5


def record_app(app, mode, **kwargs):
    system = DeLoreanSystem(mode=mode, **kwargs)
    return system, system.record(splash2_program(app, scale=SCALE,
                                                 seed=SEED))


class TestLogSizeOrdering:
    """Section 6.1: PicoLog << OrderOnly < Order&Size."""

    @pytest.mark.parametrize("app", ["fft", "barnes"])
    def test_mode_ordering(self, app):
        sizes = {}
        for mode in list(ExecutionMode):
            _, recording = record_app(app, mode)
            sizes[mode] = recording.log_bits_per_proc_per_kiloinst(
                compressed=False)
        assert sizes[ExecutionMode.PICOLOG] < sizes[
            ExecutionMode.ORDER_ONLY]
        assert sizes[ExecutionMode.ORDER_ONLY] <= sizes[
            ExecutionMode.ORDER_AND_SIZE] * 1.01

    def test_picolog_log_is_tiny(self):
        """At miniature scale a single truncation entry dominates, so
        the bound is loose; the Figure 7 bench shows the real numbers
        (< 0.4 bits uncompressed at full scale)."""
        _, recording = record_app("water-sp", ExecutionMode.PICOLOG)
        assert recording.log_bits_per_proc_per_kiloinst(
            compressed=False) < 1.0

    def test_larger_chunks_shrink_pi_log(self):
        small_sys = DeLoreanSystem(chunk_size=1000)
        big_sys = DeLoreanSystem(chunk_size=3000)
        program = lambda: splash2_program("fft", scale=SCALE, seed=SEED)
        small = small_sys.record(program())
        big = big_sys.record(program())
        assert (big.memory_ordering.pi_size_bits()
                < small.memory_ordering.pi_size_bits())

    def test_stratification_shrinks_pi_log(self):
        _, plain = record_app("fft", ExecutionMode.ORDER_ONLY)
        ordering = plain.memory_ordering
        assert ordering.stratified_pi_bits is not None
        assert ordering.stratified_pi_bits < ordering.pi_size_bits()


class TestAgainstConventionalRecorders:
    def test_orderonly_log_smaller_than_fdr_and_rtr(self):
        """The headline claim, at miniature scale: the chunk-commit log
        undercuts dependence-based logs on sharing-heavy workloads."""
        program = splash2_program("fft", scale=1.0, seed=SEED)
        sc = InterleavedExecutor(program, model=ConsistencyModel.SC).run()
        fdr = FDRRecorder(8)
        fdr.process(sc.trace)
        rtr = RTRRecorder(8)
        rtr.process(sc.trace)
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
        recording = system.record(
            splash2_program("fft", scale=1.0, seed=SEED))
        oo_bits = recording.log_bits_per_proc_per_kiloinst()
        instructions = sc.total_instructions
        assert oo_bits < fdr.bits_per_proc_per_kiloinst(instructions)
        assert oo_bits < rtr.bits_per_proc_per_kiloinst(instructions)

    def test_strata_recorder_runs_on_real_trace(self):
        program = splash2_program("barnes", scale=SCALE, seed=SEED)
        sc = InterleavedExecutor(program,
                                 model=ConsistencyModel.SC).run()
        strata = StrataRecorder(8)
        strata.process(sc.trace)
        strata.finish()
        assert strata.verify_separation(sc.trace)


class TestPerformanceOrdering:
    def test_delorean_faster_than_sc(self):
        """Figure 10: every DeLorean mode outruns aggressive SC."""
        program = lambda: splash2_program("ocean", scale=SCALE,
                                          seed=SEED)
        sc = InterleavedExecutor(program(), model=ConsistencyModel.SC,
                                 collect_trace=False).run()
        for mode in list(ExecutionMode):
            _, recording = record_app("ocean", mode)
            assert recording.stats.cycles < sc.cycles, mode

    def test_picolog_slower_than_orderonly(self):
        results = {}
        for mode in (ExecutionMode.ORDER_ONLY, ExecutionMode.PICOLOG):
            cycles = []
            for app in ("fft", "radix"):
                _, recording = record_app(app, mode)
                cycles.append(recording.stats.cycles)
            results[mode] = geometric_mean(cycles)
        assert results[ExecutionMode.PICOLOG] > results[
            ExecutionMode.ORDER_ONLY]

    def test_replay_slower_than_record(self):
        system, recording = record_app("fft", ExecutionMode.ORDER_ONLY)
        replay = system.replay(recording,
                               perturbation=ReplayPerturbation())
        assert replay.cycles > recording.stats.cycles


class TestPicologCharacterization:
    def test_token_metrics_populated(self):
        """Table 6 inputs exist and are plausible."""
        _, recording = record_app("fft", ExecutionMode.PICOLOG)
        summary = recording.stats.token_summary
        assert summary["token_roundtrip_cycles"] > 0
        assert 0 <= summary["proc_ready_pct"] <= 100
        assert recording.stats.avg_ready_procs > 0

    def test_traffic_counters_populated(self):
        _, recording = record_app("fft", ExecutionMode.ORDER_ONLY)
        traffic = recording.stats.traffic
        assert traffic["signature_bytes"] > 0
        assert traffic["data_bytes"] > 0
