"""End-to-end replay tests: determinism under every mode and noise."""

import pytest

from conftest import counter_program, small_config, two_phase_program

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.errors import ReplayDivergenceError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.workloads.program_builder import ProgramBuilder, shared_address


def make_system(mode=ExecutionMode.ORDER_ONLY, **kwargs):
    config = small_config()
    return DeLoreanSystem(mode=mode, machine_config=config,
                          chunk_size=config.standard_chunk_size, **kwargs)


class TestDeterminism:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_noise_free_replay_matches(self, mode):
        system = make_system(mode)
        recording = system.record(counter_program(4, 15))
        result = system.replay(recording)
        assert result.determinism.matches, result.determinism.summary()

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_perturbed_replay_matches(self, mode):
        system = make_system(mode)
        recording = system.record(counter_program(4, 15))
        for seed in (1, 99):
            result = system.replay(
                recording, perturbation=ReplayPerturbation(seed=seed))
            assert result.determinism.matches, (
                seed, result.determinism.summary())

    def test_single_chunk_window_replay_matches(self):
        system = make_system()
        recording = system.record(counter_program(4, 15))
        result = system.replay(recording, perturbation=ReplayPerturbation(
            seed=5, single_chunk_window=True))
        assert result.determinism.matches

    def test_record_and_verify_helper(self):
        system = make_system()
        recording, result = system.record_and_verify(
            counter_program(2, 10))
        assert result.determinism.matches
        assert recording.total_commits > 0

    def test_require_determinism_raises_on_corruption(self):
        system = make_system()
        recording = system.record(counter_program(2, 10))
        # Corrupt the recording: swap two PI entries of different procs.
        entries = recording.pi_log.entries
        for index in range(len(entries) - 1):
            if entries[index] != entries[index + 1]:
                entries[index], entries[index + 1] = (
                    entries[index + 1], entries[index])
                break
        with pytest.raises(ReplayDivergenceError):
            system.replay(recording, require_determinism=True)


class TestInputReplay:
    def test_io_replays_from_log_not_device(self):
        """Replay must take I/O values from the log: re-seeding the
        device differently must not matter."""
        builder = ProgramBuilder(2, name="io")
        with builder.thread(0) as t:
            t.compute(10).io_load(port=2).store(shared_address(16))
        with builder.thread(1) as t:
            t.compute(20)
        program = builder.build()
        system = make_system()
        recording = system.record(program)
        # A different device seed would change the value if consulted.
        recording.program.io_seed  # exists; replay ignores the device
        object.__setattr__(recording.program, "io_seed",
                           recording.program.io_seed + 123)
        result = system.replay(recording)
        assert result.determinism.matches

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_interrupts_replay_at_logged_chunks(self, mode):
        program = counter_program(4, 20)
        program.interrupts.extend([
            InterruptEvent(time=300.0, processor=0, vector=1,
                           handler_ops=16),
            InterruptEvent(time=600.0, processor=2, vector=5,
                           handler_ops=24, high_priority=True),
        ])
        system = make_system(mode)
        recording = system.record(program)
        result = system.replay(
            recording, perturbation=ReplayPerturbation(seed=4))
        assert result.determinism.matches
        assert recording.stats.handler_chunks >= 2

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_dma_replays_from_log(self, mode):
        program = counter_program(4, 20)
        program.dma_transfers.append(DmaTransfer(
            time=250.0, writes={shared_address(640): 31337}))
        system = make_system(mode)
        recording = system.record(program)
        result = system.replay(
            recording, perturbation=ReplayPerturbation(seed=9))
        assert result.determinism.matches
        assert result.final_memory[shared_address(640)] == 31337

    def test_interrupt_on_finished_processor_replays(self):
        """A handler that re-activated an idle processor must replay
        (including in PicoLog, via its recorded commit slot)."""
        builder = ProgramBuilder(2, name="short")
        with builder.thread(0) as t:
            t.compute(30)
        with builder.thread(1) as t:
            t.compute(3000)
        program = builder.build()
        program.interrupts.append(InterruptEvent(
            time=2000.0, processor=0, vector=7, handler_ops=20))
        for mode in list(ExecutionMode):
            system = make_system(mode)
            recording = system.record(program)
            assert len(recording.interrupt_logs[0].entries) == 1
            result = system.replay(recording)
            assert result.determinism.matches, mode


class TestStratifiedReplay:
    @pytest.mark.parametrize("chunks_per_stratum", [1, 3, 7])
    def test_stratified_replay_matches(self, chunks_per_stratum):
        config = small_config()
        system = DeLoreanSystem(
            mode=ExecutionMode.ORDER_ONLY, machine_config=config,
            chunk_size=config.standard_chunk_size, stratify=True,
            chunks_per_stratum=chunks_per_stratum)
        recording = system.record(counter_program(4, 15))
        assert recording.stratified
        result = system.replay(recording, use_strata=True)
        assert result.determinism.matches

    def test_plain_replay_of_stratified_recording(self):
        """The full PI log is still present and usable."""
        config = small_config()
        system = DeLoreanSystem(
            mode=ExecutionMode.ORDER_ONLY, machine_config=config,
            chunk_size=config.standard_chunk_size, stratify=True)
        recording = system.record(counter_program(3, 12))
        result = system.replay(recording, use_strata=False)
        assert result.determinism.matches


class TestReplayTiming:
    def test_perturbed_replay_is_slower(self):
        system = make_system()
        recording = system.record(counter_program(4, 40))
        clean = system.replay(recording)
        noisy = system.replay(recording,
                              perturbation=ReplayPerturbation(seed=2))
        assert noisy.cycles > clean.cycles

    def test_replay_result_fields(self):
        system = make_system()
        recording = system.record(counter_program(2, 10))
        result = system.replay(recording,
                               perturbation=ReplayPerturbation(seed=1))
        assert result.cycles == result.stats.cycles
        assert result.perturbation.seed == 1
        assert "deterministic" in result.determinism.summary()


class TestSplitChunkReplay:
    """Unexpected replay-time cache overflow splits a logical chunk
    into back-to-back pieces (Section 4.2.3); crank the stochastic
    overflow rate so the path is exercised heavily."""

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_high_overflow_replay_matches(self, mode):
        config = small_config()
        system = DeLoreanSystem(
            mode=mode, machine_config=config,
            chunk_size=config.standard_chunk_size,
            stochastic_overflow_rate=0.25)
        recording = system.record(counter_program(4, 20))
        for seed in (1, 2, 3):
            result = system.replay(
                recording, perturbation=ReplayPerturbation(seed=seed))
            assert result.determinism.matches, (
                mode, seed, result.determinism.summary())

    def test_pieces_share_one_pi_entry(self):
        """Split pieces consume a single ordering entry: the replayed
        commit count equals the recorded one even when splits happen."""
        config = small_config()
        system = DeLoreanSystem(
            mode=ExecutionMode.ORDER_ONLY, machine_config=config,
            chunk_size=config.standard_chunk_size,
            stochastic_overflow_rate=0.3)
        recording = system.record(counter_program(3, 25))
        result = system.replay(
            recording, perturbation=ReplayPerturbation(seed=9))
        assert result.determinism.matches
        assert (result.determinism.compared_chunks
                == len(recording.fingerprints))
