"""Failure injection: corrupted logs must be *detected*, not absorbed.

A replay system that silently produces a plausible-but-different
execution from a damaged log is worse than one that fails loudly.  For
each log the recorder produces, these tests corrupt exactly one entry
of a recording of an interleaving-sensitive workload and assert the
replay either reports non-determinism or raises a divergence error --
never a silent pass.
"""

import pytest

from conftest import small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.logs import CSEntry, InterruptEntry
from repro.core.modes import ExecutionMode
from repro.errors import DeadlockError, ReplayDivergenceError, ReproError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.workloads.program_builder import shared_address
from repro.workloads.stress import handoff_program, racey_program


def record_stress(mode=ExecutionMode.ORDER_ONLY, with_events=True):
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    program = racey_program(threads=4, rounds=40, seed=9)
    if with_events:
        program.interrupts.append(InterruptEvent(
            time=500.0, processor=2, vector=6, handler_ops=20))
        program.dma_transfers.append(DmaTransfer(
            time=300.0, writes={shared_address(0x3000): 99}))
    return system, system.record(program)


def replay_detects(system, recording) -> bool:
    """True when the corruption is detected (report or exception)."""
    try:
        result = system.replay(recording)
    except (ReplayDivergenceError, DeadlockError, ReproError):
        return True
    return not result.determinism.matches


class TestStressWorkloadsAreSensitive:
    """Preconditions: the stress kernels really are
    interleaving-sensitive and replay cleanly when untouched."""

    def test_racey_replays_cleanly(self):
        system, recording = record_stress()
        assert system.replay(recording).determinism.matches

    def test_handoff_replays_cleanly(self):
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(handoff_program(threads=4, laps=5))
        assert system.replay(recording).determinism.matches
        # The token made laps * threads hops through the mix chain.
        token = shared_address(0x2000)
        assert recording.final_memory.get(token, 0) != 7

    def test_handoff_spins_are_real(self):
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(handoff_program(threads=4, laps=5))
        spin = sum(stats.spin_instructions for stats in
                   recording.stats.per_processor.values())
        assert spin > 0


class TestPILogCorruption:
    def test_swapped_entries_detected(self):
        system, recording = record_stress()
        entries = recording.pi_log.entries
        for index in range(len(entries) - 1):
            if entries[index] != entries[index + 1]:
                entries[index], entries[index + 1] = (
                    entries[index + 1], entries[index])
                break
        assert replay_detects(system, recording)

    def test_dropped_entry_detected(self):
        system, recording = record_stress()
        recording.pi_log.entries.pop(3)
        assert replay_detects(system, recording)

    def test_duplicated_entry_detected(self):
        system, recording = record_stress()
        recording.pi_log.entries.insert(
            2, recording.pi_log.entries[2])
        assert replay_detects(system, recording)


class TestCSLogCorruption:
    def test_forged_truncation_detected(self):
        """An extra CS entry forces a chunk to a wrong size."""
        system, recording = record_stress()
        recording.cs_logs[1].entries.append(CSEntry(distance=0,
                                                    size=17))
        assert replay_detects(system, recording)

    def test_ordersize_size_corruption_detected(self):
        system, recording = record_stress(ExecutionMode.ORDER_AND_SIZE)
        log = recording.cs_logs[0]
        for index, entry in enumerate(log.entries):
            if entry.size > 20:
                log.entries[index] = CSEntry(entry.distance,
                                             entry.size - 9)
                break
        assert replay_detects(system, recording)


class TestInputLogCorruption:
    def test_io_value_corruption_detected(self):
        config = small_config()
        system = DeLoreanSystem(machine_config=config,
                                chunk_size=config.standard_chunk_size)
        program = racey_program(threads=3, rounds=30, seed=4)
        # An I/O value that a later store propagates into memory.
        from repro.machine.program import Op, OpKind
        program.threads[0].extend([
            Op(OpKind.IO_LOAD, address=1),
            Op(OpKind.STORE, address=shared_address(0x4000)),
        ])
        recording = system.record(program)
        recording.io_logs[0].values[0] ^= 0xFFFF
        assert replay_detects(system, recording)

    def test_interrupt_entry_shift_detected(self):
        system, recording = record_stress()
        entries = recording.interrupt_logs[2].entries
        assert entries, "precondition: an interrupt was recorded"
        old = entries[0]
        entries[0] = InterruptEntry(
            chunk_id=old.chunk_id + 1, vector=old.vector,
            payload=old.payload, handler_ops=old.handler_ops,
            high_priority=old.high_priority,
            commit_slot=old.commit_slot)
        assert replay_detects(system, recording)

    def test_dma_data_corruption_detected(self):
        system, recording = record_stress()
        entry = recording.dma_log.entries[0]
        from repro.core.logs import DMAEntry
        corrupted = tuple((address, value ^ 1)
                          for address, value in entry.writes)
        recording.dma_log.entries[0] = DMAEntry(corrupted)
        assert replay_detects(system, recording)


class TestPicologCorruption:
    def test_dma_slot_corruption_detected(self):
        system, recording = record_stress(ExecutionMode.PICOLOG)
        assert recording.dma_log.commit_slots
        recording.dma_log.commit_slots[0] += 3
        assert replay_detects(system, recording)

    def test_cs_forgery_detected(self):
        system, recording = record_stress(ExecutionMode.PICOLOG)
        recording.cs_logs[3].entries.append(CSEntry(distance=1,
                                                    size=21))
        assert replay_detects(system, recording)


class TestCheckpointCorruption:
    """A damaged interval checkpoint must surface as a detected
    divergence of the replayed window, never as a silent pass."""

    def _record_with_checkpoints(self):
        config = small_config()
        system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                                machine_config=config,
                                chunk_size=config.standard_chunk_size)
        recording = system.record(
            racey_program(threads=4, rounds=60, seed=9),
            checkpoint_every=5)
        store = recording.interval_checkpoints
        assert len(store) >= 2
        return system, recording, store.by_index(1)

    def _interval_detects(self, system, recording, checkpoint):
        try:
            result = system.replay_interval(recording,
                                            checkpoint=checkpoint)
        except (ReplayDivergenceError, DeadlockError, ReproError):
            return True
        return not result.determinism.matches

    def test_clean_checkpoint_baseline(self):
        system, recording, checkpoint = self._record_with_checkpoints()
        result = system.replay_interval(recording,
                                        checkpoint=checkpoint)
        assert result.determinism.matches

    def test_memory_image_corruption_detected(self):
        system, recording, checkpoint = self._record_with_checkpoints()
        # Flip one committed value the interval's chunks will read:
        # the racey kernel folds every cell into its accumulators.
        address = next(iter(checkpoint.memory_image))
        checkpoint.memory_image[address] ^= 0x5A
        assert self._interval_detects(system, recording, checkpoint)

    def test_thread_state_corruption_detected(self):
        system, recording, checkpoint = self._record_with_checkpoints()
        # Corrupt the *live* part of the state -- the program
        # position.  (The accumulator is architecturally dead at a
        # round boundary: the racey kernel's next LOAD overwrites it.)
        proc, state = next(iter(checkpoint.thread_states.items()))
        state.op_index += 1
        assert self._interval_detects(system, recording, checkpoint)

    def test_dead_accumulator_corruption_is_invisible(self):
        # The dual of the test above, pinning the semantics: at a
        # commit boundary where the next op is a LOAD, the
        # checkpointed accumulator is dead state and corrupting it
        # must NOT diverge the replay.
        system, recording, checkpoint = self._record_with_checkpoints()
        proc, state = next(iter(checkpoint.thread_states.items()))
        state.accumulator ^= 0x77
        result = system.replay_interval(recording,
                                        checkpoint=checkpoint)
        assert result.determinism.matches

    def test_committed_count_corruption_detected(self):
        system, recording, checkpoint = self._record_with_checkpoints()
        proc = next(iter(checkpoint.committed_counts))
        checkpoint.committed_counts[proc] += 1
        assert self._interval_detects(system, recording, checkpoint)
