"""Unit tests for the replay cursor machinery (core.replayer).

The system suites (test_system_replay, test_interval) exercise the
replayer end-to-end; these tests pin down the ReplaySource /
verify_determinism contracts in isolation, on hand-built recordings,
so a cursor regression fails here with a one-line cause instead of as
an opaque whole-machine divergence.
"""

from __future__ import annotations

import pytest

from repro.core.interval import IntervalCheckpoint
from repro.core.logs import (
    ChunkSizeLog,
    DMALog,
    InterruptEntry,
    InterruptLog,
    IOLog,
    PILog,
)
from repro.core.modes import ExecutionMode, preferred_config
from repro.core.recorder import Recording
from repro.core.replayer import (
    DeterminismReport,
    ReplayPerturbation,
    ReplaySource,
    make_perturbation_rng,
    verify_determinism,
)
from repro.chunks.chunk import TruncationReason
from repro.errors import ReplayDivergenceError

from conftest import small_config


def make_recording(mode: ExecutionMode = ExecutionMode.ORDER_ONLY,
                   procs: int = 2, **fields) -> Recording:
    """A minimal hand-built recording (logs empty unless overridden)."""
    mode_config = preferred_config(mode)
    defaults = dict(
        mode_config=mode_config,
        machine_config=small_config(num_processors=procs),
        program=None,
        pi_log=PILog(),
        cs_logs={p: ChunkSizeLog(mode_config) for p in range(procs)},
        interrupt_logs={p: InterruptLog() for p in range(procs)},
        io_logs={p: IOLog() for p in range(procs)},
        dma_log=DMALog(),
    )
    defaults.update(fields)
    return Recording(**defaults)


def make_checkpoint(commit_index: int = 0, **fields):
    defaults = dict(
        commit_index=commit_index,
        memory_image={},
        thread_states={},
        committed_counts={},
        io_consumed={},
        dma_consumed=0,
    )
    defaults.update(fields)
    return IntervalCheckpoint(**defaults)


class TestChunkTarget:
    def test_order_and_size_replays_each_size(self):
        recording = make_recording(ExecutionMode.ORDER_AND_SIZE)
        log = recording.cs_logs[0]
        for size in (64, 17, 40):
            log.note_commit(size=size, truncated=False)
        source = ReplaySource(recording)
        assert source.chunk_target(0, 1) == \
            (64, TruncationReason.CS_FORCED)
        assert source.chunk_target(0, 2) == \
            (17, TruncationReason.CS_FORCED)
        assert source.chunk_target(0, 3) == \
            (40, TruncationReason.CS_FORCED)

    def test_order_and_size_past_end_is_standard(self):
        recording = make_recording(ExecutionMode.ORDER_AND_SIZE)
        recording.cs_logs[0].note_commit(size=10, truncated=False)
        source = ReplaySource(recording)
        size, reason = source.chunk_target(0, 2)
        assert size == recording.mode_config.standard_chunk_size
        assert reason is TruncationReason.SIZE_LIMIT

    def test_order_only_forces_logged_truncations_only(self):
        recording = make_recording(ExecutionMode.ORDER_ONLY)
        log = recording.cs_logs[1]
        # Chunks 1-2 full size, chunk 3 truncated at 23.
        log.note_commit(size=64, truncated=False)
        log.note_commit(size=64, truncated=False)
        log.note_commit(size=23, truncated=True)
        source = ReplaySource(recording)
        standard = recording.mode_config.standard_chunk_size
        assert source.chunk_target(1, 1) == \
            (standard, TruncationReason.SIZE_LIMIT)
        assert source.chunk_target(1, 3) == \
            (23, TruncationReason.CS_FORCED)
        assert source.chunk_target(1, 4) == \
            (standard, TruncationReason.SIZE_LIMIT)

    def test_unknown_processor_gets_standard_size(self):
        source = ReplaySource(make_recording())
        recording = make_recording()
        source = ReplaySource(recording)
        size, reason = source.chunk_target(7, 1)
        assert size == recording.mode_config.standard_chunk_size
        assert reason is TruncationReason.SIZE_LIMIT


def _interrupt(chunk_id: int, slot: int = 0) -> InterruptEntry:
    return InterruptEntry(chunk_id=chunk_id, vector=3, payload=99,
                          handler_ops=4, high_priority=False,
                          commit_slot=slot)


class TestInterruptCursor:
    def test_injects_exactly_at_logged_chunk(self):
        recording = make_recording()
        recording.interrupt_logs[0].append(_interrupt(chunk_id=5))
        source = ReplaySource(recording)
        assert source.maybe_interrupt(0, 4) is None
        event = source.maybe_interrupt(0, 5)
        assert event is not None
        assert event.vector == 3
        assert event.replay_chunk_id == 5
        # Consumed: asking again finds nothing.
        assert source.maybe_interrupt(0, 5) is None

    def test_passing_a_handler_chunk_is_a_divergence(self):
        recording = make_recording()
        recording.interrupt_logs[0].append(_interrupt(chunk_id=2))
        source = ReplaySource(recording)
        with pytest.raises(ReplayDivergenceError):
            source.maybe_interrupt(0, 3)

    def test_has_pending_interrupts(self):
        recording = make_recording()
        recording.interrupt_logs[1].append(_interrupt(chunk_id=1))
        source = ReplaySource(recording)
        assert source.has_pending_interrupts(1)
        assert not source.has_pending_interrupts(0)
        source.maybe_interrupt(1, 1)
        assert not source.has_pending_interrupts(1)


class TestPicoLogGate:
    def test_gate_is_stateless_until_commit(self):
        recording = make_recording(ExecutionMode.PICOLOG)
        recording.interrupt_logs[0].append(
            _interrupt(chunk_id=3, slot=17))
        source = ReplaySource(recording)
        # The gate holds while committed_count == 2, however often the
        # arbiter asks -- injection must not release it.
        source.maybe_interrupt(0, 3)
        for _ in range(3):
            assert source.gate_for(0, committed_count=2) == 17
        assert source.gate_for(0, committed_count=3) is None

    def test_no_gate_for_non_handler_chunks(self):
        recording = make_recording(ExecutionMode.PICOLOG)
        recording.interrupt_logs[0].append(
            _interrupt(chunk_id=5, slot=9))
        source = ReplaySource(recording)
        assert source.gate_for(0, committed_count=0) is None
        assert source.gate_for(0, committed_count=4) == 9

    def test_pi_modes_never_gate(self):
        recording = make_recording(ExecutionMode.ORDER_ONLY)
        recording.interrupt_logs[0].append(
            _interrupt(chunk_id=1, slot=4))
        source = ReplaySource(recording)
        assert source.gate_for(0, committed_count=0) is None


class TestIOAndDMACursors:
    def test_io_values_replay_in_order(self):
        recording = make_recording()
        for value in (11, 22, 33):
            recording.io_logs[0].append(value)
        source = ReplaySource(recording)
        assert [source.io_load(0, port=0) for _ in range(3)] == \
            [11, 22, 33]

    def test_io_underflow_is_a_divergence(self):
        source = ReplaySource(make_recording())
        with pytest.raises(ReplayDivergenceError):
            source.io_load(0, port=0)

    def test_dma_bursts_consume_in_order(self):
        recording = make_recording()
        recording.dma_log.append({0x10: 1})
        recording.dma_log.append({0x20: 2})
        source = ReplaySource(recording)
        assert source.next_dma_writes() == {0x10: 1}
        assert source.next_dma_writes() == {0x20: 2}
        with pytest.raises(ReplayDivergenceError):
            source.next_dma_writes()

    def test_dma_slot_gating(self):
        recording = make_recording(ExecutionMode.PICOLOG)
        recording.dma_log.append({0x10: 1}, commit_slot=4)
        recording.dma_log.append({0x20: 2}, commit_slot=9)
        source = ReplaySource(recording)
        assert not source.dma_due_at_slot(3)
        assert source.dma_due_at_slot(4)
        source.consume_dma_slot()
        assert not source.dma_due_at_slot(5)
        assert source.dma_due_at_slot(9)


class TestStartCheckpointFastForward:
    def test_cursors_skip_the_consumed_prefix(self):
        recording = make_recording()
        for value in (1, 2, 3, 4):
            recording.io_logs[0].append(value)
        recording.dma_log.append({0x10: 1})
        recording.dma_log.append({0x20: 2})
        recording.interrupt_logs[1].append(_interrupt(chunk_id=2))
        recording.interrupt_logs[1].append(_interrupt(chunk_id=8))
        checkpoint = make_checkpoint(
            commit_index=10,
            committed_counts={0: 6, 1: 5},
            io_consumed={0: 3},
            dma_consumed=1,
        )
        source = ReplaySource(recording, start_checkpoint=checkpoint)
        assert source.io_load(0, port=0) == 4
        assert source.next_dma_writes() == {0x20: 2}
        # The chunk-2 handler committed inside the prefix; only the
        # chunk-8 entry remains pending.
        assert source.has_pending_interrupts(1)
        assert source.maybe_interrupt(1, 8) is not None
        assert not source.has_pending_interrupts(1)

    def test_verify_fully_consumed_after_fast_forward(self):
        recording = make_recording()
        recording.io_logs[0].append(5)
        checkpoint = make_checkpoint(commit_index=3,
                                     io_consumed={0: 1},
                                     dma_consumed=0)
        source = ReplaySource(recording, start_checkpoint=checkpoint)
        assert source.verify_fully_consumed() == []


class TestVerifyFullyConsumed:
    def test_reports_every_leftover_kind(self):
        recording = make_recording()
        recording.io_logs[0].append(5)
        recording.interrupt_logs[1].append(_interrupt(chunk_id=1))
        recording.dma_log.append({0x10: 1})
        problems = ReplaySource(recording).verify_fully_consumed()
        text = " / ".join(problems)
        assert "I/O values" in text
        assert "interrupt" in text
        assert "DMA" in text

    def test_clean_when_everything_consumed(self):
        recording = make_recording()
        recording.io_logs[0].append(5)
        source = ReplaySource(recording)
        source.io_load(0, port=0)
        assert source.verify_fully_consumed() == []


def _chunk_fp(proc: int, seq: int, writes=(), instructions: int = 10,
              handler: bool = False):
    return (proc, seq, 0, handler, instructions, tuple(writes),
            ("key", proc, seq))


class TestVerifyDeterminism:
    def test_exact_match(self):
        fps = [_chunk_fp(0, 1), _chunk_fp(1, 1), _chunk_fp(0, 2)]
        recording = make_recording(
            fingerprints=list(fps),
            per_proc_fingerprints={0: [fps[0], fps[2]], 1: [fps[1]]},
            final_memory={0x10: 7},
            final_thread_keys={0: ("t",)},
        )
        report = verify_determinism(
            recording, list(fps),
            {0: [fps[0], fps[2]], 1: [fps[1]]},
            {0x10: 7}, {0: ("t",)}, ordered=True)
        assert report.matches
        assert report.compared_chunks == 3

    def test_ordered_mismatch_names_the_commit(self):
        fps = [_chunk_fp(0, 1), _chunk_fp(1, 1)]
        swapped = [fps[1], fps[0]]
        recording = make_recording(
            fingerprints=list(fps),
            per_proc_fingerprints={},
            final_memory={}, final_thread_keys={})
        report = verify_determinism(
            recording, swapped, {}, {}, {}, ordered=True)
        assert not report.matches
        assert any("commit #0" in m for m in report.mismatches)

    def test_count_mismatch_detected(self):
        fps = [_chunk_fp(0, 1), _chunk_fp(0, 2)]
        recording = make_recording(
            fingerprints=list(fps), per_proc_fingerprints={},
            final_memory={}, final_thread_keys={})
        report = verify_determinism(
            recording, fps[:1], {}, {}, {}, ordered=True)
        assert not report.matches
        assert any("count differs" in m for m in report.mismatches)

    def test_unordered_compares_per_processor_streams(self):
        a1, a2 = _chunk_fp(0, 1), _chunk_fp(0, 2)
        b1 = _chunk_fp(1, 1)
        recording = make_recording(
            fingerprints=[a1, b1, a2],
            per_proc_fingerprints={0: [a1, a2], 1: [b1]},
            final_memory={}, final_thread_keys={})
        # Global order differs (legal within a stratum), per-proc same.
        report = verify_determinism(
            recording, [b1, a1, a2], {0: [a1, a2], 1: [b1]},
            {}, {}, ordered=False)
        assert report.matches
        # A reordered *per-proc* stream is a real divergence.
        report = verify_determinism(
            recording, [a1, b1, a2], {0: [a2, a1], 1: [b1]},
            {}, {}, ordered=False)
        assert not report.matches

    def test_final_memory_mismatch(self):
        fp = _chunk_fp(0, 1)
        recording = make_recording(
            fingerprints=[fp], per_proc_fingerprints={0: [fp]},
            final_memory={0x10: 7}, final_thread_keys={})
        report = verify_determinism(
            recording, [fp], {0: [fp]}, {0x10: 8}, {}, ordered=True)
        assert not report.matches
        assert any("final memory" in m for m in report.mismatches)

    def test_stop_after_ignores_overrun_and_final_state(self):
        fps = [_chunk_fp(0, i) for i in range(1, 6)]
        recording = make_recording(
            fingerprints=list(fps), per_proc_fingerprints={},
            final_memory={0x10: 7}, final_thread_keys={})
        # Replay produced one extra in-flight commit and no final
        # memory: both are legal for a bounded window.
        report = verify_determinism(
            recording, fps[:4], {}, {}, {}, ordered=True,
            stop_after=3)
        assert report.matches

    def test_start_checkpoint_slices_the_prefix(self):
        dma_fp = ("dma", 1, ((0x10, 1),))
        fps = [_chunk_fp(0, 1), dma_fp, _chunk_fp(0, 2),
               _chunk_fp(1, 1)]
        machine = small_config()
        recording = make_recording(
            fingerprints=list(fps),
            per_proc_fingerprints={
                0: [fps[0], fps[2]], 1: [fps[3]],
                machine.dma_proc_id: [dma_fp]},
            final_memory={}, final_thread_keys={},
            machine_config=machine)
        checkpoint = make_checkpoint(
            commit_index=2, committed_counts={0: 1, 1: 0},
            dma_consumed=1)
        # Replaying from the checkpoint produces only the suffix.
        report = verify_determinism(
            recording, [fps[2], fps[3]],
            {0: [fps[2]], 1: [fps[3]], machine.dma_proc_id: []},
            {}, {}, ordered=True, start_checkpoint=checkpoint,
            stop_after=2)
        assert report.matches

    def test_summary_strings(self):
        clean = DeterminismReport(matches=True, compared_chunks=12)
        assert "12" in clean.summary()
        dirty = DeterminismReport(
            matches=False, compared_chunks=3,
            mismatches=["a", "b", "c", "d"])
        assert "DIVERGED (4" in dirty.summary()


class TestPerturbation:
    def test_none_disables_all_noise(self):
        quiet = ReplayPerturbation.none()
        assert quiet.commit_stall_probability == 0.0
        assert quiet.cache_flip_rate == 0.0
        assert quiet.chunk_validation_cycles == 0.0

    def test_rng_is_reproducible_per_seed(self):
        first = make_perturbation_rng(ReplayPerturbation(seed=42))
        second = make_perturbation_rng(ReplayPerturbation(seed=42))
        other = make_perturbation_rng(ReplayPerturbation(seed=43))
        draws = [first.random() for _ in range(8)]
        assert draws == [second.random() for _ in range(8)]
        assert draws != [other.random() for _ in range(8)]
