"""Whole-system property tests (hypothesis).

The crown-jewel property is Appendix B's theorem: for *any* program and
*any* replay-timing perturbation, replay reproduces the recorded
execution exactly.  Programs here are generated structurally random --
mixed compute/load/store/RMW/lock/barrier/IO traffic over a small hot
address space to maximize interleaving sensitivity -- and each one is
recorded once and replayed under perturbed timing.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import apply_fingerprint_writes, small_config

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.machine.program import Op, OpKind, Program
from repro.workloads.program_builder import lock_address, shared_address


# A small, hot address space: collisions are likely, which is the point.
_ADDRESSES = [shared_address(offset * 8) for offset in range(6)]
_LOCKS = [lock_address(index) for index in range(2)]


def _op_strategy():
    return st.one_of(
        st.builds(Op, st.just(OpKind.COMPUTE),
                  count=st.integers(min_value=1, max_value=30)),
        st.builds(Op, st.just(OpKind.LOAD),
                  address=st.sampled_from(_ADDRESSES)),
        st.builds(Op, st.just(OpKind.STORE),
                  address=st.sampled_from(_ADDRESSES),
                  value=st.one_of(st.none(),
                                  st.integers(min_value=0,
                                              max_value=1000))),
        st.builds(Op, st.just(OpKind.RMW),
                  address=st.sampled_from(_ADDRESSES),
                  value=st.integers(min_value=1, max_value=5)),
        st.builds(Op, st.just(OpKind.IO_LOAD),
                  address=st.integers(min_value=0, max_value=3)),
        st.builds(Op, st.just(OpKind.TRAP),
                  count=st.integers(min_value=1, max_value=10)),
    )


def _critical_section():
    return st.tuples(
        st.sampled_from(_LOCKS),
        st.lists(_op_strategy(), min_size=1, max_size=3),
    ).map(lambda pair: [Op(OpKind.LOCK, address=pair[0]), *pair[1],
                        Op(OpKind.UNLOCK, address=pair[0])])


def _thread_strategy():
    segment = st.one_of(
        st.lists(_op_strategy(), min_size=1, max_size=4),
        _critical_section(),
    )
    return st.lists(segment, min_size=1, max_size=6).map(
        lambda segments: [op for segment in segments for op in segment])


_programs = st.builds(
    lambda threads: Program(threads=threads, name="hypothesis"),
    st.lists(_thread_strategy(), min_size=2, max_size=3))

_slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)


def run_roundtrip(program, mode, perturbation):
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(program)
    result = system.replay(recording, perturbation=perturbation)
    return recording, result


@_slow_settings
@given(program=_programs, seed=st.integers(min_value=0, max_value=9999))
def test_order_only_replay_deterministic(program, seed):
    recording, result = run_roundtrip(
        program, ExecutionMode.ORDER_ONLY,
        ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()


@_slow_settings
@given(program=_programs, seed=st.integers(min_value=0, max_value=9999))
def test_picolog_replay_deterministic(program, seed):
    recording, result = run_roundtrip(
        program, ExecutionMode.PICOLOG, ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()


@_slow_settings
@given(program=_programs, seed=st.integers(min_value=0, max_value=9999))
def test_order_and_size_replay_deterministic(program, seed):
    recording, result = run_roundtrip(
        program, ExecutionMode.ORDER_AND_SIZE,
        ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()


@_slow_settings
@given(program=_programs)
def test_recording_is_serializable(program):
    """Final memory always equals the commit-ordered application of the
    committed chunks' write sets (atomicity/serializability)."""
    config = small_config()
    system = DeLoreanSystem(machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(program)
    rebuilt = apply_fingerprint_writes(program.initial_memory,
                                       recording.fingerprints)
    assert rebuilt == recording.final_memory


@_slow_settings
@given(program=_programs,
       chunks_per_stratum=st.sampled_from([1, 3, 7]),
       seed=st.integers(min_value=0, max_value=999))
def test_stratified_replay_deterministic(program, chunks_per_stratum,
                                         seed):
    config = small_config()
    system = DeLoreanSystem(
        mode=ExecutionMode.ORDER_ONLY, machine_config=config,
        chunk_size=config.standard_chunk_size, stratify=True,
        chunks_per_stratum=chunks_per_stratum)
    recording = system.record(program)
    result = system.replay(recording, use_strata=True,
                           perturbation=ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()


@_slow_settings
@given(threads=st.integers(min_value=2, max_value=4),
       increments=st.integers(min_value=1, max_value=12),
       mode=st.sampled_from(list(ExecutionMode)))
def test_mutual_exclusion_holds(threads, increments, mode):
    """Lock-protected counters are always exact in every mode."""
    from conftest import counter_program
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(counter_program(threads, increments))
    assert recording.final_memory[shared_address(0)] == (
        threads * increments)


@_slow_settings
@given(program=_programs,
       interval=st.integers(min_value=3, max_value=12),
       seed=st.integers(min_value=0, max_value=999))
def test_interval_replay_deterministic(program, interval, seed):
    """Appendix B's actual theorem: I(n, m) replays deterministically
    from any commit-boundary checkpoint, for arbitrary programs."""
    config = small_config()
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY,
                            machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(program, checkpoint_every=interval)
    for checkpoint in recording.interval_checkpoints:
        result = system.replay_interval(
            recording, checkpoint=checkpoint,
            perturbation=ReplayPerturbation(seed=seed))
        assert result.determinism.matches, (
            checkpoint.commit_index, result.determinism.summary())


@_slow_settings
@given(program=_programs, seed=st.integers(min_value=0, max_value=999))
def test_serialization_roundtrip_replays(program, seed):
    """Any recording survives the binary wire format and still
    replays deterministically afterwards."""
    from repro.core.serialization import load_recording, save_recording
    config = small_config()
    system = DeLoreanSystem(machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(program)
    loaded = load_recording(save_recording(recording))
    result = system.replay(loaded,
                           perturbation=ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()


@_slow_settings
@given(threads=st.integers(min_value=2, max_value=4),
       phases=st.integers(min_value=1, max_value=4),
       work=st.integers(min_value=5, max_value=40),
       mode=st.sampled_from(list(ExecutionMode)),
       seed=st.integers(min_value=0, max_value=999))
def test_barrier_phases_replay(threads, phases, work, mode, seed):
    """Barrier-synchronized phase programs (every thread, same
    barrier) record and replay deterministically in every mode."""
    from repro.workloads.program_builder import (
        ProgramBuilder, barrier_address)
    builder = ProgramBuilder(threads, name="phases")
    for thread in range(threads):
        writer = builder.writer(thread)
        for phase_index in range(phases):
            writer.compute(work + thread)
            writer.store(shared_address(512 + 8 * (
                phase_index * threads + thread)))
            writer.barrier(barrier_address(0), threads)
            writer.load(shared_address(512 + 8 * (
                phase_index * threads + (thread + 1) % threads)))
    config = small_config()
    system = DeLoreanSystem(mode=mode, machine_config=config,
                            chunk_size=config.standard_chunk_size)
    recording = system.record(builder.build())
    result = system.replay(recording,
                           perturbation=ReplayPerturbation(seed=seed))
    assert result.determinism.matches, result.determinism.summary()
