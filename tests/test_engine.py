"""Tests for the deterministic discrete-event engine."""

import pytest

from repro.errors import DeadlockError
from repro.machine.engine import EventEngine


class TestEventOrdering:
    def test_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(5, lambda: order.append("b"))
        engine.schedule(1, lambda: order.append("a"))
        engine.schedule(9, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        engine = EventEngine()
        order = []
        engine.schedule(3, lambda: order.append("low"), priority=1)
        engine.schedule(3, lambda: order.append("high"), priority=0)
        engine.run()
        assert order == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        engine = EventEngine()
        order = []
        for index in range(5):
            engine.schedule(1, lambda i=index: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        engine = EventEngine()
        seen = []
        engine.schedule(4, lambda: seen.append(engine.now))
        engine.schedule(10, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4, 10]

    def test_schedule_at_absolute(self):
        engine = EventEngine()
        seen = []
        engine.schedule(5, lambda: engine.schedule_at(
            3, lambda: seen.append(engine.now)))
        engine.run()
        # schedule_at(3) from time 5 clamps to "now".
        assert seen == [5]

    def test_negative_delay_rejected(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)


class TestEngineBehaviour:
    def test_events_can_spawn_events(self):
        engine = EventEngine()
        seen = []
        def fire(depth):
            seen.append(depth)
            if depth < 3:
                engine.schedule(1, lambda: fire(depth + 1))
        engine.schedule(0, lambda: fire(0))
        engine.run()
        assert seen == [0, 1, 2, 3]

    def test_max_events_guard(self):
        engine = EventEngine()
        def forever():
            engine.schedule(1, forever)
        engine.schedule(0, forever)
        with pytest.raises(DeadlockError):
            engine.run(max_events=100)

    def test_events_processed_counter(self):
        engine = EventEngine()
        for _ in range(7):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_processed == 7

    def test_pending_count(self):
        engine = EventEngine()
        engine.schedule(1, lambda: None)
        engine.schedule(2, lambda: None)
        assert engine.pending() == 2
        engine.run()
        assert engine.pending() == 0


class TestDeterminismAcrossRuns:
    def test_identical_event_programs_identical_traces(self):
        """Two engines fed the same schedule produce the same trace --
        the reproducibility floor everything else stands on."""
        def run_one():
            engine = EventEngine()
            trace = []
            def spawn(depth, tag):
                trace.append((engine.now, tag))
                if depth:
                    engine.schedule(depth, lambda: spawn(depth - 1,
                                                         tag + 1))
                    engine.schedule(depth / 2, lambda: spawn(0,
                                                             tag + 100))
            for index in range(5):
                engine.schedule(index * 1.5, lambda i=index: spawn(3, i))
            engine.run()
            return trace
        assert run_one() == run_one()

    def test_float_time_ties_stable(self):
        engine = EventEngine()
        order = []
        for index in range(20):
            engine.schedule(0.1 + 0.2, lambda i=index: order.append(i))
        engine.run()
        assert order == list(range(20))
