"""Tests for the chunk-building processor (the interpreter).

These drive :class:`ChunkProcessor` directly -- no arbiter, no engine --
so each op's chunk semantics can be pinned down precisely.
"""

import pytest

from conftest import small_config

from repro.chunks.cache import CacheConfig, SpeculativeCache
from repro.chunks.chunk import TruncationReason
from repro.chunks.processor import ChunkProcessor
from repro.errors import ExecutionError
from repro.machine.events import InterruptEvent
from repro.machine.memory import MainMemory
from repro.machine.program import (
    LOCK_SPIN_COST,
    Op,
    OpKind,
    compute_mix,
)


class _NullIO:
    def __init__(self, values=None):
        self.values = list(values or [])
        self.stores = []

    def io_load(self, proc, port):
        return self.values.pop(0) if self.values else 0xDEAD

    def io_store(self, proc, port, value):
        self.stores.append((proc, port, value))


def make_processor(ops, config=None, memory=None):
    config = config or small_config()
    cache = SpeculativeCache(CacheConfig(config.l1_sets, config.l1_ways))
    proc = ChunkProcessor(0, ops, config, cache)
    return proc, (memory or MainMemory())


def build(proc, memory, target=64, reason=TruncationReason.SIZE_LIMIT,
          forced=None):
    return proc.build_chunk(0.0, target, reason, forced, memory)


def commit_head(proc, io=None):
    chunk = proc.outstanding[0]
    proc.on_commit(chunk, io or _NullIO())
    return chunk


class TestBasicInterpretation:
    def test_load_sets_accumulator(self):
        proc, memory = make_processor([Op(OpKind.LOAD, address=4)])
        memory.write(4, 77)
        chunk = build(proc, memory)
        assert proc.spec_state.accumulator == 77
        assert chunk.instructions == 1
        assert chunk.truncation is TruncationReason.PROGRAM_END

    def test_store_literal_buffers_value(self):
        proc, memory = make_processor([Op(OpKind.STORE, address=8,
                                          value=5)])
        chunk = build(proc, memory)
        assert chunk.write_buffer == {8: 5}
        assert memory.read(8) == 0  # not visible until commit

    def test_store_accumulator(self):
        proc, memory = make_processor([
            Op(OpKind.LOAD, address=1),
            Op(OpKind.STORE, address=2),
        ])
        memory.write(1, 42)
        chunk = build(proc, memory)
        assert chunk.write_buffer[2] == 42

    def test_compute_updates_accumulator(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=10)])
        build(proc, memory)
        assert proc.spec_state.accumulator == compute_mix(0, 10)

    def test_rmw_returns_old_value(self):
        proc, memory = make_processor([Op(OpKind.RMW, address=3,
                                          value=5)])
        memory.write(3, 10)
        chunk = build(proc, memory)
        assert proc.spec_state.accumulator == 10
        assert chunk.write_buffer[3] == 15

    def test_chunk_reads_own_writes(self):
        proc, memory = make_processor([
            Op(OpKind.STORE, address=9, value=123),
            Op(OpKind.LOAD, address=9),
        ])
        build(proc, memory)
        assert proc.spec_state.accumulator == 123

    def test_instruction_count_accumulates(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=7),
            Op(OpKind.LOAD, address=1),
            Op(OpKind.STORE, address=2, value=1),
        ])
        chunk = build(proc, memory)
        assert chunk.instructions == 9


class TestChunkSizing:
    def test_size_limit_truncation(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=500)])
        chunk = build(proc, memory, target=64)
        assert chunk.instructions == 64
        assert chunk.truncation is TruncationReason.SIZE_LIMIT

    def test_compute_splits_across_chunks(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=100),
            Op(OpKind.STORE, address=1),
        ])
        first = build(proc, memory, target=64)
        assert first.instructions == 64
        commit_head(proc)
        second = build(proc, memory, target=64)
        assert second.instructions == 37  # 36 compute + 1 store
        # The split must not perturb the accumulator value.
        assert second.write_buffer[1] == compute_mix(0, 100)

    def test_forced_limit_reports_overflow(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=500)])
        chunk = build(proc, memory, target=64, forced=20)
        assert chunk.instructions == 20
        assert chunk.truncation is TruncationReason.CACHE_OVERFLOW

    def test_program_end(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=5)])
        chunk = build(proc, memory, target=64)
        assert chunk.truncation is TruncationReason.PROGRAM_END
        assert proc.spec_state.finished

    def test_footprint_overflow_truncates_before_write(self):
        config = small_config(l1_sets=2, l1_ways=2)  # 2 spec ways/set
        sets = 2
        ops = [Op(OpKind.STORE, address=(i * sets) * 8, value=i)
               for i in range(3)]  # three lines, all set 0
        proc, memory = make_processor(ops, config)
        chunk = build(proc, memory, target=64)
        assert chunk.truncation is TruncationReason.CACHE_OVERFLOW
        assert chunk.instructions == 2  # the third store overflows

    def test_cannot_build_when_window_full(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=1000)])
        build(proc, memory, target=16)
        build(proc, memory, target=16)
        assert not proc.can_build()  # simultaneous_chunks == 2
        with pytest.raises(ExecutionError):
            build(proc, memory, target=16)


class TestLocks:
    def test_free_lock_acquired(self):
        proc, memory = make_processor([Op(OpKind.LOCK, address=40)])
        chunk = build(proc, memory)
        assert chunk.write_buffer[40] == 1
        assert chunk.instructions == LOCK_SPIN_COST

    def test_held_lock_spins_to_budget(self):
        proc, memory = make_processor([Op(OpKind.LOCK, address=40),
                                       Op(OpKind.COMPUTE, count=5)])
        memory.write(40, 1)
        chunk = build(proc, memory, target=64)
        assert chunk.truncation is TruncationReason.SIZE_LIMIT
        assert chunk.instructions == 64 - 64 % LOCK_SPIN_COST
        assert 40 not in chunk.write_buffer
        # Next chunk spins again (state unchanged).
        commit_head(proc)
        assert proc.spec_state.op_index == 0

    def test_spin_then_acquire_after_release(self):
        proc, memory = make_processor([Op(OpKind.LOCK, address=40),
                                       Op(OpKind.UNLOCK, address=40)])
        memory.write(40, 1)
        first = build(proc, memory, target=32)
        commit_head(proc)
        memory.write(40, 0)  # remote release becomes visible
        second = build(proc, memory, target=32)
        assert second.write_buffer[40] == 0  # acquired then released
        assert proc.spec_state.finished

    def test_lock_unlock_within_chunk_nets_to_free(self):
        proc, memory = make_processor([
            Op(OpKind.LOCK, address=40),
            Op(OpKind.RMW, address=48, value=1),
            Op(OpKind.UNLOCK, address=40),
        ])
        chunk = build(proc, memory)
        assert chunk.write_buffer[40] == 0
        assert chunk.write_buffer[48] == 1


class TestBarriers:
    def test_last_arrival_passes_immediately(self):
        proc, memory = make_processor([Op(OpKind.BARRIER, address=80,
                                          count=2)])
        memory.write(80, 1)  # one thread already arrived
        chunk = build(proc, memory)
        assert proc.spec_state.finished
        assert chunk.write_buffer[80] == 2

    def test_early_arrival_spins(self):
        proc, memory = make_processor([Op(OpKind.BARRIER, address=80,
                                          count=2)])
        chunk = build(proc, memory, target=32)
        assert not proc.spec_state.finished
        assert proc.spec_state.barrier_target == 2
        assert chunk.write_buffer[80] == 1

    def test_spinner_passes_once_count_reached(self):
        proc, memory = make_processor([Op(OpKind.BARRIER, address=80,
                                          count=2)])
        build(proc, memory, target=32)
        commit_head(proc)
        memory.write(80, 2)  # the other thread's increment commits
        build(proc, memory, target=32)
        assert proc.spec_state.finished

    def test_barrier_reusable(self):
        """The counting barrier works across generations."""
        proc, memory = make_processor([
            Op(OpKind.BARRIER, address=80, count=2),
            Op(OpKind.BARRIER, address=80, count=2),
        ])
        memory.write(80, 1)
        build(proc, memory, target=16)   # passes gen 1, spins on gen 2
        commit_head(proc)
        memory.write(80, 4)  # the other thread reaches generation 2
        build(proc, memory, target=16)
        assert proc.spec_state.finished


class TestBoundaryOps:
    def test_io_load_truncates_and_blocks(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=3),
            Op(OpKind.IO_LOAD, address=2),
            Op(OpKind.STORE, address=1),
        ])
        chunk = build(proc, memory)
        assert chunk.truncation is TruncationReason.IO_BOUNDARY
        assert chunk.pending_boundary_op is not None
        assert chunk.instructions == 3
        assert not proc.can_build()  # blocked until the IO executes

    def test_io_load_value_lands_in_accumulator(self):
        proc, memory = make_processor([
            Op(OpKind.IO_LOAD, address=2),
            Op(OpKind.STORE, address=1),
        ])
        chunk = build(proc, memory)
        commit_head(proc, _NullIO(values=[4242]))
        assert proc.spec_state.accumulator == 4242
        assert chunk.io_values == [4242]
        follow = build(proc, memory)
        assert follow.write_buffer[1] == 4242

    def test_io_store_sends_accumulator(self):
        proc, memory = make_processor([
            Op(OpKind.LOAD, address=1),
            Op(OpKind.IO_STORE, address=6),
        ])
        memory.write(1, 55)
        build(proc, memory)
        io = _NullIO()
        commit_head(proc, io)
        assert io.stores == [(0, 6, 55)]

    def test_special_truncates(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=2),
            Op(OpKind.SPECIAL),
        ])
        chunk = build(proc, memory)
        assert chunk.truncation is TruncationReason.SPECIAL
        commit_head(proc)
        assert proc.spec_state.finished

    def test_trap_runs_inline(self):
        """Traps do NOT truncate (Section 4.2.1)."""
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=2),
            Op(OpKind.TRAP, count=8),
            Op(OpKind.STORE, address=1, value=1),
        ])
        chunk = build(proc, memory, target=64)
        assert chunk.truncation is TruncationReason.PROGRAM_END
        assert chunk.instructions == 11


class TestSquash:
    def test_squash_restores_state(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=30),
            Op(OpKind.STORE, address=1),
        ])
        build(proc, memory, target=16)
        saved_key = proc.outstanding[0].start_state.architectural_key()
        victims = proc.squash_from(0, 10.0)
        assert len(victims) == 1
        assert proc.spec_state.architectural_key() == saved_key
        assert proc.next_seq == 1

    def test_squash_suffix_only(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=200)])
        build(proc, memory, target=16)
        build(proc, memory, target=16)
        victims = proc.squash_from(1, 5.0)
        assert len(victims) == 1
        assert len(proc.outstanding) == 1
        assert proc.next_seq == 2

    def test_rebuild_after_squash_is_identical(self):
        proc, memory = make_processor([
            Op(OpKind.COMPUTE, count=30),
            Op(OpKind.STORE, address=1),
        ])
        first = build(proc, memory, target=16)
        fingerprint = (first.instructions,
                       dict(first.write_buffer),
                       first.end_state.architectural_key())
        proc.squash_from(0, 1.0)
        rebuilt = build(proc, memory, target=16)
        assert (rebuilt.instructions, dict(rebuilt.write_buffer),
                rebuilt.end_state.architectural_key()) == fingerprint

    def test_squash_counts_tracked(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        build(proc, memory, target=16)
        proc.squash_from(0, 1.0)
        assert proc.squash_count_for(1) == 1
        build(proc, memory, target=16)
        proc.squash_from(0, 2.0)
        assert proc.squash_count_for(1) == 2

    def test_commit_clears_squash_count(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        build(proc, memory, target=16)
        proc.squash_from(0, 1.0)
        build(proc, memory, target=16)
        commit_head(proc)
        assert proc.squash_count_for(1) == 0


class TestInterrupts:
    def test_handler_injected_at_next_build(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        event = InterruptEvent(time=0, processor=0, vector=3,
                               handler_ops=16)
        proc.receive_interrupt(event, 0.0)
        chunk = build(proc, memory, target=64)
        assert chunk.is_handler
        assert chunk.handler_event is event

    def test_low_priority_does_not_squash(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        build(proc, memory, target=16)
        event = InterruptEvent(time=0, processor=0, vector=1,
                               high_priority=False)
        victims = proc.receive_interrupt(event, 1.0)
        assert victims == []
        assert len(proc.outstanding) == 1

    def test_high_priority_squashes_outstanding(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        build(proc, memory, target=16)
        event = InterruptEvent(time=0, processor=0, vector=1,
                               high_priority=True)
        victims = proc.receive_interrupt(event, 1.0)
        assert len(victims) == 1
        next_chunk = build(proc, memory, target=64)
        assert next_chunk.is_handler

    def test_squashed_handler_requeued_once(self):
        """A squashed handler chunk re-injects exactly once (the
        double-execution regression test)."""
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        event = InterruptEvent(time=0, processor=0, vector=3,
                               handler_ops=16)
        proc.receive_interrupt(event, 0.0)
        first = build(proc, memory, target=64)
        assert first.is_handler
        proc.squash_from(0, 1.0)
        assert len(proc.pending_handlers) == 1
        rebuilt = build(proc, memory, target=64)
        assert rebuilt.is_handler
        assert not rebuilt.start_state.in_handler  # pre-injection state
        assert not proc.pending_handlers

    def test_handler_on_finished_thread(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=4)])
        build(proc, memory, target=64)
        commit_head(proc)
        assert not proc.can_build()
        event = InterruptEvent(time=0, processor=0, vector=2,
                               handler_ops=12)
        proc.receive_interrupt(event, 5.0)
        assert proc.can_build()
        chunk = build(proc, memory, target=64)
        assert chunk.is_handler
        assert chunk.instructions == 12

    def test_replay_pinned_handler_waits_for_its_seq(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        event = InterruptEvent(time=0, processor=0, vector=3,
                               handler_ops=16, replay_chunk_id=2)
        proc.pending_handlers.append(event)
        first = build(proc, memory, target=16)
        assert not first.is_handler  # seq 1 != pinned chunkID 2
        second = build(proc, memory, target=64)
        assert second.is_handler


class TestCommitDiscipline:
    def test_out_of_order_commit_rejected(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=100)])
        build(proc, memory, target=16)
        newer = build(proc, memory, target=16)
        with pytest.raises(ExecutionError):
            proc.on_commit(newer, _NullIO())

    def test_commit_updates_counters(self):
        proc, memory = make_processor([Op(OpKind.COMPUTE, count=10)])
        build(proc, memory, target=64)
        commit_head(proc)
        assert proc.committed_count == 1
        assert proc.stats.chunks_committed == 1
        assert proc.stats.instructions_committed == 10


class TestZeroInstructionTruncation:
    def test_stochastic_floor_prevents_empty_truncated_chunks(self):
        """The machine clamps stochastic truncation points to one op
        unit, so no zero-instruction CACHE_OVERFLOW chunk (whose CS
        entry is unencodable) can be recorded."""
        from repro.machine.system import ChunkMachine
        from repro.core.modes import ExecutionMode, preferred_config
        import sys
        from conftest import counter_program, small_config
        config = small_config()
        machine = ChunkMachine(
            counter_program(3, 30), config,
            preferred_config(ExecutionMode.ORDER_ONLY).with_chunk_size(
                config.standard_chunk_size),
            stochastic_overflow_rate=1.0)  # truncate every chunk
        result = machine.run()
        for fingerprint in result.fingerprints:
            if fingerprint[0] != "dma":
                assert fingerprint[4] >= 1  # no empty committed chunks
        # And the CS logs encode cleanly.
        for log in machine.recorder.cs_logs.values():
            log.encode()
