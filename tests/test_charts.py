"""Tests for the terminal bar-chart renderer."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart(["a", "b"], [1.0, 0.5], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.00" in lines[1]
        assert "0.50" in lines[2]

    def test_bar_lengths_proportional(self):
        text = bar_chart(["big", "half"], [2.0, 1.0], width=40)
        big, half = text.splitlines()
        assert big.count("█") == 40
        assert abs(half.count("█") - 20) <= 1

    def test_zero_value_empty_bar(self):
        text = bar_chart(["z"], [0.0])
        assert "█" not in text

    def test_reference_line(self):
        text = bar_chart(["a"], [1.0], reference=2.0,
                         reference_label="paper")
        assert "paper" in text
        assert "╌" in text
        # Reference sets the scale: the value bar is half width.
        value_line = text.splitlines()[0]
        assert value_line.count("█") <= 21

    def test_unit_suffix(self):
        assert "3.00x" in bar_chart(["a"], [3.0], unit="x")

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert bar_chart([], []) == ""


class TestGroupedBarChart:
    def test_groups_and_series(self):
        text = grouped_bar_chart(
            ["fft", "lu"],
            {"RC": [1.0, 1.0], "SC": [0.8, 0.79]},
            title="fig")
        lines = text.splitlines()
        assert lines[0] == "fig"
        assert "fft:" in text and "lu:" in text
        assert text.count("RC") == 2
        assert "0.79" in text

    def test_shared_scale_across_groups(self):
        text = grouped_bar_chart(
            ["g1", "g2"], {"s": [4.0, 1.0]}, width=32)
        rows = [line for line in text.splitlines() if "█" in line or
                ("s" in line and ":" not in line)]
        long = rows[0].count("█")
        short = rows[1].count("█")
        assert long == 32
        assert abs(short - 8) <= 1

    def test_ragged_series_tolerated(self):
        text = grouped_bar_chart(["a", "b"], {"x": [1.0]})
        assert "b:" in text
