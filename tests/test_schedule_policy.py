"""Tests for schedule plans and the SchedulePolicy arbiter plug-in."""

import pytest

from repro.core.arbiter import SchedulePlan
from repro.core.modes import ExecutionMode, preferred_config
from repro.core.serialization import save_recording
from repro.errors import ConfigurationError
from repro.machine.system import (
    ChunkMachine,
    ReplaySource,
    record_execution,
    replay_execution,
)
from repro.machine.timing import MachineConfig
from repro.workloads.bugzoo import zoo_specimen

#: A grant-order prescription known (from the DPOR frontier) to drop
#: thread 1's commit into thread 0's split-update window.
RACY_PREFIX = (0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1)


def record_zoo(name="lost-update", mode=ExecutionMode.ORDER_ONLY,
               schedule=None):
    return record_execution(
        zoo_specimen(name).build(),
        machine_config=MachineConfig(),
        mode_config=preferred_config(mode),
        schedule=schedule)


def grant_order(recording):
    return [fp[0] for fp in recording.fingerprints]


class TestSchedulePlan:
    def test_normalization(self):
        plan = SchedulePlan(seed=3, prefix=[1, 0, 2],
                            change_points=[9, 4])
        assert plan.prefix == (1, 0, 2)
        assert plan.change_points == (4, 9)
        assert not plan.is_natural

    def test_natural(self):
        assert SchedulePlan().is_natural
        assert not SchedulePlan(seed=0).is_natural
        assert not SchedulePlan(prefix=(1,)).is_natural

    def test_wire_round_trip(self):
        plan = SchedulePlan(seed=42, prefix=(0, 1), change_points=(3,))
        assert SchedulePlan.from_dict(plan.as_dict()) == plan

    def test_priorities_are_a_seeded_permutation(self):
        first = SchedulePlan(seed=7).priorities(8)
        again = SchedulePlan(seed=7).priorities(8)
        other = SchedulePlan(seed=8).priorities(8)
        assert first == again
        assert sorted(first.values()) == list(range(1, 9))
        assert first != other


class TestSchedulePolicyRecording:
    def test_prefix_prescribes_grant_order(self):
        recording = record_zoo(
            schedule=SchedulePlan(prefix=RACY_PREFIX))
        got = tuple(grant_order(recording)[:len(RACY_PREFIX)])
        assert got == RACY_PREFIX

    def test_same_seed_byte_identical_schedule(self):
        plan = SchedulePlan(seed=19, change_points=(3, 7))
        first = record_zoo(schedule=plan)
        second = record_zoo(schedule=plan)
        assert grant_order(first) == grant_order(second)
        assert save_recording(first) == save_recording(second)

    def test_same_seed_identical_failure(self):
        plan = SchedulePlan(prefix=RACY_PREFIX)
        check = zoo_specimen("lost-update").check
        first = record_zoo(schedule=plan)
        second = record_zoo(schedule=plan)
        assert not check(first.final_memory).ok
        assert first.final_memory == second.final_memory

    def test_seeded_schedule_perturbs_grant_order(self):
        natural = record_zoo()
        seeded = record_zoo(schedule=SchedulePlan(seed=5,
                                                  change_points=(3,)))
        # Different commit order, same program: both complete.
        assert len(grant_order(seeded)) == len(grant_order(natural))

    @pytest.mark.parametrize("plan", [
        SchedulePlan(prefix=RACY_PREFIX),
        SchedulePlan(seed=5, change_points=(3, 9)),
    ])
    def test_explored_schedule_replays_deterministically(self, plan):
        recording = record_zoo(schedule=plan)
        result = replay_execution(recording)
        assert result.determinism.matches, result.determinism.summary()


class TestScheduleRejection:
    def test_predefined_order_mode_rejects_plans(self):
        with pytest.raises(ConfigurationError):
            record_zoo(mode=ExecutionMode.PICOLOG,
                       schedule=SchedulePlan(seed=1))

    def test_replay_rejects_plans(self):
        recording = record_zoo()
        with pytest.raises(ConfigurationError):
            ChunkMachine(
                recording.program,
                recording.machine_config,
                recording.mode_config,
                replay_source=ReplaySource(recording),
                schedule=SchedulePlan(seed=1),
            )

    def test_natural_plan_is_a_no_op(self):
        natural = record_zoo()
        explicit = record_zoo(schedule=SchedulePlan())
        assert save_recording(natural) == save_recording(explicit)
