"""A self-contained LZ77 codec for estimating compressed log sizes.

The paper states that "all log buffers are enhanced with compression
hardware that uses the LZ77 algorithm" (Section 5).  This module
implements a classic sliding-window LZ77 with greedy longest-match
parsing and a compact token encoding, which is what a small hardware
compressor would plausibly implement.  The codec is lossless and
round-trip tested; its purpose here is the *compressed size* of
bit-packed logs, reported by :func:`compressed_size_bits`.

Token format (bit-level, written with :class:`BitWriter`):

* literal:  flag ``0`` + 8-bit byte
* match:    flag ``1`` + ``offset_bits``-bit backward offset (>= 1)
            + ``length_bits``-bit match length (>= MIN_MATCH)
"""

from __future__ import annotations

from repro.compression.bitstream import BitReader, BitWriter
from repro.errors import LogFormatError

_MIN_MATCH = 3


class LZ77Codec:
    """Sliding-window LZ77 with a hash-chained greedy matcher."""

    def __init__(self, window_bits: int = 12, length_bits: int = 6) -> None:
        if not 4 <= window_bits <= 20:
            raise LogFormatError(
                f"window_bits must be in [4, 20], got {window_bits}")
        if not 2 <= length_bits <= 12:
            raise LogFormatError(
                f"length_bits must be in [2, 12], got {length_bits}")
        self.window_bits = window_bits
        self.length_bits = length_bits
        self.window_size = 1 << window_bits
        self.max_match = _MIN_MATCH + (1 << length_bits) - 1

    def compress(self, data: bytes) -> tuple[bytes, int]:
        """Compress ``data``; returns ``(payload, bit_length)``."""
        writer = BitWriter()
        table: dict[bytes, list[int]] = {}
        position = 0
        n = len(data)
        while position < n:
            match_offset, match_length = self._find_match(
                data, position, table)
            if match_length >= _MIN_MATCH:
                writer.write_flag(True)
                writer.write(match_offset - 1, self.window_bits)
                writer.write(match_length - _MIN_MATCH, self.length_bits)
                end = position + match_length
            else:
                writer.write_flag(False)
                writer.write(data[position], 8)
                end = position + 1
            while position < end:
                if position + _MIN_MATCH <= n:
                    key = data[position:position + _MIN_MATCH]
                    table.setdefault(key, []).append(position)
                position += 1
        return writer.to_bytes(), writer.bit_length

    def _find_match(
        self,
        data: bytes,
        position: int,
        table: dict[bytes, list[int]],
    ) -> tuple[int, int]:
        """Return (offset, length) of the best match before ``position``."""
        n = len(data)
        if position + _MIN_MATCH > n:
            return 0, 0
        key = data[position:position + _MIN_MATCH]
        candidates = table.get(key)
        if not candidates:
            return 0, 0
        window_start = max(0, position - self.window_size)
        best_offset = 0
        best_length = 0
        # Walk recent candidates first; cap the chain to bound work.
        for candidate in reversed(candidates[-32:]):
            if candidate < window_start:
                break
            limit = min(self.max_match, n - position)
            length = 0
            while (length < limit
                   and data[candidate + length] == data[position + length]):
                length += 1
            if length > best_length:
                best_length = length
                best_offset = position - candidate
                if length == limit:
                    break
        return best_offset, best_length

    def decompress(self, payload: bytes, bit_length: int) -> bytes:
        """Invert :meth:`compress`."""
        reader = BitReader(payload, bit_length)
        out = bytearray()
        # A token needs at least 1 + min(8, window_bits) bits; stop when
        # fewer bits remain (they are final-byte padding).
        min_token = 1 + min(8, self.window_bits + self.length_bits)
        while reader.bits_remaining >= min_token:
            if reader.read_flag():
                offset = reader.read(self.window_bits) + 1
                length = reader.read(self.length_bits) + _MIN_MATCH
                if offset > len(out):
                    raise LogFormatError(
                        f"match offset {offset} exceeds output size "
                        f"{len(out)}")
                start = len(out) - offset
                for index in range(length):
                    out.append(out[start + index])
            else:
                out.append(reader.read(8))
        return bytes(out)


def compressed_size_bits(
    data: bytes,
    codec: LZ77Codec | None = None,
    raw_bits: int | None = None,
) -> int:
    """Compressed size of ``data`` in bits under LZ77.

    Convenience wrapper used throughout the log-size benchmarks.
    ``raw_bits`` is the payload's true bit length (the final byte of a
    packed log is zero-padded); the result is capped at it, mirroring a
    hardware compressor's bypass path.
    """
    if not data:
        return 0
    if codec is None:
        codec = LZ77Codec()
    _, bit_length = codec.compress(data)
    cap = len(data) * 8 if raw_bits is None else raw_bits
    return min(bit_length, cap)
