"""A move-to-front entropy codec for low-cardinality symbol streams.

The paper compresses all log buffers with LZ77 hardware (Section 5),
and at the authors' scale (billions of committed chunks) that works
well.  At simulation scale the LZ77 window rarely sees the long exact
repeats it needs, so EXPERIMENTS.md reports compression as largely
ineffective.  The PI log, however, is not random: commit grants cluster
by processor (a processor granted now is disproportionately likely to
be granted again soon, and idle processors disappear for long
stretches), which is exactly the locality a move-to-front transform
converts into small ranks.

This codec chains three classic stages, all bit-level and lossless:

1. **Move-to-front** over the symbol alphabet: each symbol is replaced
   by its rank in a recency list, then moved to the front.  Repeats
   become rank 0; recently-seen symbols become small ranks.
2. **Zero run-length**: runs of rank 0 collapse to a single run token.
3. **Elias gamma** for the variable-length integers (run lengths and
   non-zero ranks), so frequent small values cost few bits.

Token format (written with :class:`BitWriter`):

* zero run:       flag ``0`` + gamma(run length)
* non-zero rank:  flag ``1`` + gamma(rank)

Like the LZ77 wrapper, :func:`mtf_compressed_size_bits` caps the
result at the raw packed size, mirroring a hardware bypass path.
"""

from __future__ import annotations

from repro.compression.bitstream import BitReader, BitWriter
from repro.errors import LogFormatError


def write_elias_gamma(writer: BitWriter, value: int) -> None:
    """Append the Elias-gamma code of ``value`` (>= 1).

    Gamma codes a positive integer as ``N`` zero bits followed by the
    ``N + 1``-bit binary form of the value, where ``N`` is the number
    of bits below the leading one: 1 -> ``1``, 2 -> ``010``,
    5 -> ``00101``.
    """
    if value < 1:
        raise LogFormatError(
            f"Elias gamma codes positive integers, got {value}")
    width = value.bit_length()
    if width > 1:
        writer.write(0, width - 1)
    writer.write(value, width)


def read_elias_gamma(reader: BitReader) -> int:
    """Consume one Elias-gamma code; inverse of
    :func:`write_elias_gamma`."""
    zeros = 0
    while True:
        if reader.bits_remaining < 1:
            raise LogFormatError("truncated Elias-gamma code")
        if reader.read(1):
            break
        zeros += 1
    if reader.bits_remaining < zeros:
        raise LogFormatError("truncated Elias-gamma code")
    rest = reader.read(zeros) if zeros else 0
    return (1 << zeros) | rest


class MTFCodec:
    """Move-to-front + zero-RLE + Elias gamma over a fixed alphabet."""

    def __init__(self, num_symbols: int) -> None:
        if num_symbols < 1:
            raise LogFormatError("the alphabet needs at least 1 symbol")
        self.num_symbols = num_symbols

    def compress(self, symbols: list[int]) -> tuple[bytes, int]:
        """Compress a symbol stream; returns ``(payload, bit_length)``."""
        recency = list(range(self.num_symbols))
        writer = BitWriter()
        zero_run = 0
        for symbol in symbols:
            if not 0 <= symbol < self.num_symbols:
                raise LogFormatError(
                    f"symbol {symbol} outside alphabet of size "
                    f"{self.num_symbols}")
            rank = recency.index(symbol)
            if rank:
                recency.pop(rank)
                recency.insert(0, symbol)
                if zero_run:
                    writer.write_flag(False)
                    write_elias_gamma(writer, zero_run)
                    zero_run = 0
                writer.write_flag(True)
                write_elias_gamma(writer, rank)
            else:
                zero_run += 1
        if zero_run:
            writer.write_flag(False)
            write_elias_gamma(writer, zero_run)
        return writer.to_bytes(), writer.bit_length

    def decompress(self, payload: bytes, bit_length: int) -> list[int]:
        """Invert :meth:`compress`."""
        recency = list(range(self.num_symbols))
        reader = BitReader(payload, bit_length)
        out: list[int] = []
        # A token costs at least flag + gamma(1) = 2 bits; anything
        # shorter is final-byte padding.
        while reader.bits_remaining >= 2:
            if reader.read_flag():
                rank = read_elias_gamma(reader)
                if rank >= self.num_symbols:
                    raise LogFormatError(
                        f"rank {rank} outside alphabet of size "
                        f"{self.num_symbols}")
                symbol = recency.pop(rank)
                recency.insert(0, symbol)
                out.append(symbol)
            else:
                run = read_elias_gamma(reader)
                out.extend([recency[0]] * run)
        return out


class LRURankCodec:
    """Least-recently-used rank coding for fair-arbitration streams.

    Move-to-front assumes *recency* locality; the PI log of a chunked
    machine has the opposite structure.  Fair commit arbitration
    rotates grants over the ready processors, so the most likely next
    committer is the one granted *longest ago* -- under MTF that is
    the deepest rank, the most expensive code.  This codec inverts the
    prediction: each symbol is coded by its rank from the *rear* of
    the recency list (0 = least recently used), Elias-gamma'd, so a
    fair rotation costs ~1 bit per entry.

    The recency list is learned, not preset: a symbol's first
    occurrence is escaped as rank ``len(seen)`` (unambiguous -- real
    ranks stop at ``len(seen) - 1``) followed by its fixed-width ID,
    so sparse alphabets (a 4-bit procID field naming only 9 agents)
    cost nothing.

    Token format: gamma(rank + 1); an escape is gamma(len(seen) + 1)
    plus ``symbol_bits`` raw bits.
    """

    def __init__(self, num_symbols: int) -> None:
        if num_symbols < 1:
            raise LogFormatError("the alphabet needs at least 1 symbol")
        self.num_symbols = num_symbols
        self.symbol_bits = max(1, (num_symbols - 1).bit_length())

    def compress(self, symbols: list[int]) -> tuple[bytes, int]:
        """Compress a symbol stream; returns ``(payload, bit_length)``."""
        seen: list[int] = []  # front = most recently used
        writer = BitWriter()
        for symbol in symbols:
            if not 0 <= symbol < self.num_symbols:
                raise LogFormatError(
                    f"symbol {symbol} outside alphabet of size "
                    f"{self.num_symbols}")
            if symbol in seen:
                index = seen.index(symbol)
                rank = len(seen) - 1 - index
                write_elias_gamma(writer, rank + 1)
                seen.pop(index)
            else:
                write_elias_gamma(writer, len(seen) + 1)
                writer.write(symbol, self.symbol_bits)
            seen.insert(0, symbol)
        return writer.to_bytes(), writer.bit_length

    def decompress(self, payload: bytes, bit_length: int) -> list[int]:
        """Invert :meth:`compress`."""
        seen: list[int] = []
        reader = BitReader(payload, bit_length)
        out: list[int] = []
        while reader.bits_remaining >= 1:
            code = read_elias_gamma(reader)
            if code == len(seen) + 1:
                if reader.bits_remaining < self.symbol_bits:
                    raise LogFormatError("truncated escape token")
                symbol = reader.read(self.symbol_bits)
                if symbol >= self.num_symbols or symbol in seen:
                    raise LogFormatError(
                        f"invalid escaped symbol {symbol}")
            elif code <= len(seen):
                rank = code - 1
                symbol = seen.pop(len(seen) - 1 - rank)
            else:
                raise LogFormatError(
                    f"rank code {code} exceeds the {len(seen)} symbols "
                    f"seen")
            seen.insert(0, symbol)
            out.append(symbol)
        return out


def lru_compressed_size_bits(
    symbols: list[int],
    num_symbols: int,
    raw_bits: int | None = None,
) -> int:
    """Compressed size of a symbol stream under LRU-rank coding,
    capped at ``raw_bits`` (the hardware bypass path)."""
    if not symbols:
        return 0
    _, bit_length = LRURankCodec(num_symbols).compress(symbols)
    if raw_bits is not None:
        return min(bit_length, raw_bits)
    return bit_length


def mtf_compressed_size_bits(
    symbols: list[int],
    num_symbols: int,
    raw_bits: int | None = None,
) -> int:
    """Compressed size of a symbol stream in bits under the MTF codec.

    ``raw_bits`` is the stream's packed size (entries times entry
    width); the result is capped at it, mirroring a hardware bypass.
    """
    if not symbols:
        return 0
    _, bit_length = MTFCodec(num_symbols).compress(symbols)
    if raw_bits is not None:
        return min(bit_length, raw_bits)
    return bit_length
