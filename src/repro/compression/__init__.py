"""Bit-level log packing and LZ77 compression.

The paper's log-size results are reported in bits per processor per
kilo-instruction, both raw and after compression with "compression
hardware that uses the LZ77 algorithm" (Section 5).  This subpackage
provides the two pieces needed to reproduce those numbers: a
:class:`~repro.compression.bitstream.BitWriter`/
:class:`~repro.compression.bitstream.BitReader` pair for the exact
bit-level entry formats of Table 5, and an
:class:`~repro.compression.lz77.LZ77Codec` for the compressed sizes.
An :class:`~repro.compression.entropy.MTFCodec` (move-to-front +
zero-RLE + Elias gamma) is provided as an alternative better matched
to the PI log's low-cardinality symbol stream at simulation scale; see
``benchmarks/bench_codec_comparison.py``.
"""

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.entropy import (
    LRURankCodec,
    MTFCodec,
    lru_compressed_size_bits,
    mtf_compressed_size_bits,
    read_elias_gamma,
    write_elias_gamma,
)
from repro.compression.lz77 import LZ77Codec, compressed_size_bits

__all__ = [
    "BitReader",
    "BitWriter",
    "LZ77Codec",
    "compressed_size_bits",
    "MTFCodec",
    "LRURankCodec",
    "mtf_compressed_size_bits",
    "lru_compressed_size_bits",
    "read_elias_gamma",
    "write_elias_gamma",
]
