"""Bit-granular serialization for hardware log formats.

DeLorean's logs use odd-sized fields (4-bit processor IDs, 21-bit
distances, 11-bit chunk sizes, 1-bit flags -- Table 5), so byte-oriented
serialization would distort the log-size results.  ``BitWriter`` packs
fields MSB-first into a growing byte buffer; ``BitReader`` reads them
back.  Round-tripping is exact: for any sequence of (value, width)
writes, reading the same widths returns the same values.
"""

from __future__ import annotations

from repro.errors import LogFormatError


class BitWriter:
    """Accumulates integer fields of arbitrary bit width, MSB-first."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_position = 0  # bits already used in the last byte

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit unsigned field.

        Raises :class:`LogFormatError` if the value does not fit.
        """
        if width <= 0:
            raise LogFormatError(f"field width must be positive, got {width}")
        if value < 0 or value >= (1 << width):
            raise LogFormatError(
                f"value {value} does not fit in {width} bits")
        remaining = width
        while remaining > 0:
            if self._bit_position == 0:
                self._buffer.append(0)
            free = 8 - self._bit_position
            take = min(free, remaining)
            shift = remaining - take
            bits = (value >> shift) & ((1 << take) - 1)
            self._buffer[-1] |= bits << (free - take)
            self._bit_position = (self._bit_position + take) % 8
            remaining -= take

    def write_flag(self, flag: bool) -> None:
        """Append a single-bit boolean field."""
        self.write(1 if flag else 0, 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        if not self._buffer:
            return 0
        partial = self._bit_position if self._bit_position else 8
        return (len(self._buffer) - 1) * 8 + partial

    def to_bytes(self) -> bytes:
        """Return the packed buffer (final byte zero-padded)."""
        return bytes(self._buffer)


class BitReader:
    """Reads integer fields of arbitrary bit width, MSB-first."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._bit_length = (
            len(data) * 8 if bit_length is None else bit_length)
        if self._bit_length > len(data) * 8:
            raise LogFormatError(
                "declared bit length exceeds the buffer size")
        self._position = 0

    def read(self, width: int) -> int:
        """Read the next ``width``-bit unsigned field."""
        if width <= 0:
            raise LogFormatError(f"field width must be positive, got {width}")
        if self._position + width > self._bit_length:
            raise LogFormatError(
                f"read of {width} bits at position {self._position} "
                f"overruns a {self._bit_length}-bit stream")
        value = 0
        remaining = width
        while remaining > 0:
            byte_index, bit_index = divmod(self._position, 8)
            available = 8 - bit_index
            take = min(available, remaining)
            chunk = self._data[byte_index] >> (available - take)
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            self._position += take
            remaining -= take
        return value

    def read_flag(self) -> bool:
        """Read a single-bit boolean field."""
        return self.read(1) == 1

    @property
    def bits_remaining(self) -> int:
        """Bits left before the declared end of the stream."""
        return self._bit_length - self._position

    def at_end(self) -> bool:
        """True when the declared bit length has been consumed."""
        return self._position >= self._bit_length
