"""SPLASH-2 stand-in presets.

The paper runs every SPLASH-2 application except Volrend, "without
system references" (Section 5) -- so these presets have no interrupts,
DMA or I/O.  Each preset encodes the qualitative sharing behaviour the
SPLASH-2 characterization literature reports for that application, which
is what drives DeLorean's logs and performance:

============  =============================================================
barnes        octree updates under many fine-grain locks, moderate sharing
cholesky      task-queue (lock) driven, irregular sharing
fft           all-to-all transpose phases separated by barriers
fmm           tree + list traversal, moderate locking, mild imbalance
lu            blocked factorization, barrier phases, producer-consumer
ocean         nearest-neighbour grids, barrier-heavy, low conflict
radiosity     task stealing with a hot queue lock, irregular
radix         permutation phase with heavy all-to-all writes + barriers
raytrace      work stealing with a hot lock and strong load imbalance
water-ns      mostly-private molecule updates, light locking
water-sp      like water-ns with sparser sharing
============  =============================================================

Calibration note: in a chunk-based machine *any* two concurrently
in-flight chunks that take the same lock conflict (both write the lock
line), so per-chunk lock-acquire counts here are kept well below one --
matching real SPLASH-2 codes, where critical sections are thousands of
instructions apart.  ``radix`` (all-to-all permutation writes) and
``raytrace`` (hot work-stealing lock plus load imbalance) are
deliberately the conflict-heavy outliers the paper's Table 6 singles
out.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.program import Program
from repro.workloads.synthetic import SyntheticSpec, build_program

_BASE_ITEMS = 700

SPLASH2_APPS: dict[str, SyntheticSpec] = {
    "barnes": SyntheticSpec(
        name="barnes", work_items=_BASE_ITEMS, sharing_fraction=0.25,
        hot_fraction=0.01, remote_read_fraction=0.30,
        shared_lines=8192, lock_count=64, lock_probability=0.006,
        critical_accesses=3, write_fraction=0.35),
    "cholesky": SyntheticSpec(
        name="cholesky", work_items=_BASE_ITEMS, sharing_fraction=0.30,
        hot_fraction=0.008, remote_read_fraction=0.30,
        shared_lines=8192, lock_count=32, lock_probability=0.004,
        hot_lock_fraction=0.1, critical_accesses=4, write_fraction=0.40),
    "fft": SyntheticSpec(
        name="fft", work_items=_BASE_ITEMS, sharing_fraction=0.30,
        hot_fraction=0.008, remote_read_fraction=0.35,
        shared_lines=16384, lock_count=64, lock_probability=0.002,
        barrier_every=600, write_fraction=0.45, compute_per_item=30),
    "fmm": SyntheticSpec(
        name="fmm", work_items=_BASE_ITEMS, sharing_fraction=0.22,
        hot_fraction=0.008, remote_read_fraction=0.30,
        shared_lines=8192, lock_count=32, lock_probability=0.003,
        write_fraction=0.30),
    "lu": SyntheticSpec(
        name="lu", work_items=_BASE_ITEMS, sharing_fraction=0.28,
        hot_fraction=0.005, remote_read_fraction=0.25,
        shared_lines=16384, lock_count=64, lock_probability=0.002,
        barrier_every=600, write_fraction=0.40, compute_per_item=32),
    "ocean": SyntheticSpec(
        name="ocean", work_items=_BASE_ITEMS, sharing_fraction=0.15,
        hot_fraction=0.005, remote_read_fraction=0.35,
        shared_lines=16384, lock_count=64, lock_probability=0.002,
        barrier_every=600, write_fraction=0.45, compute_per_item=28),
    "radiosity": SyntheticSpec(
        name="radiosity", work_items=_BASE_ITEMS, sharing_fraction=0.30,
        hot_fraction=0.010, remote_read_fraction=0.25,
        shared_lines=8192, lock_count=32, lock_probability=0.004,
        hot_lock_fraction=0.12, critical_accesses=3,
        write_fraction=0.35),
    "radix": SyntheticSpec(
        name="radix", work_items=_BASE_ITEMS, sharing_fraction=0.40,
        hot_fraction=0.01, remote_read_fraction=0.10,
        remote_write_fraction=0.06,
        shared_lines=8192, lock_count=64, lock_probability=0.002,
        barrier_every=600, write_fraction=0.65,
        shared_accesses_per_item=3, compute_per_item=18),
    "raytrace": SyntheticSpec(
        name="raytrace", work_items=_BASE_ITEMS, sharing_fraction=0.30,
        hot_fraction=0.012, remote_read_fraction=0.20,
        shared_lines=6144, lock_count=16, lock_probability=0.005,
        hot_lock_fraction=0.15, critical_accesses=4,
        imbalance=0.8, write_fraction=0.35),
    "water-ns": SyntheticSpec(
        name="water-ns", work_items=_BASE_ITEMS, sharing_fraction=0.15,
        hot_fraction=0.008, remote_read_fraction=0.30,
        shared_lines=8192, lock_count=64, lock_probability=0.003,
        write_fraction=0.30, compute_per_item=34),
    "water-sp": SyntheticSpec(
        name="water-sp", work_items=_BASE_ITEMS, sharing_fraction=0.12,
        hot_fraction=0.005, remote_read_fraction=0.35,
        shared_lines=8192, lock_count=64, lock_probability=0.002,
        write_fraction=0.30, compute_per_item=34),
}


def splash2_spec(app: str, scale: float = 1.0, seed: int = 1,
                 num_threads: int = 8) -> SyntheticSpec:
    """The (possibly rescaled) spec for a SPLASH-2 application."""
    if app not in SPLASH2_APPS:
        raise ConfigurationError(
            f"unknown SPLASH-2 app {app!r}; choose from "
            f"{sorted(SPLASH2_APPS)}")
    spec = SPLASH2_APPS[app].scaled(scale).with_seed(seed)
    if num_threads != spec.num_threads:
        spec = spec.with_threads(num_threads)
    return spec


def splash2_program(app: str, scale: float = 1.0, seed: int = 1,
                    num_threads: int = 8) -> Program:
    """A ready-to-run SPLASH-2 stand-in program."""
    return build_program(splash2_spec(app, scale, seed, num_threads))
