"""Determinism-stress workloads (in the spirit of the `racey` kernel).

Record/replay papers validate determinism with programs whose final
state is maximally sensitive to the memory interleaving: every
reordered pair of accesses avalanche into a different final value.
These generators produce such programs for this simulator:

* :func:`racey_program` -- every thread repeatedly reads two cells of a
  small shared array, mixes them through the accumulator, and writes
  the result back to a pseudo-random cell.  Any change in interleaving
  changes the array forever after (the classic `racey` signature
  computation).
* :func:`handoff_program` -- threads pass a token value around a ring
  of mailboxes with data-dependent spinning, maximizing cross-thread
  RAW chains.

Used by the failure-injection tests: if any single log entry is
corrupted, replaying one of these must diverge *detectably*.
"""

from __future__ import annotations

import random

from repro.machine.events import (
    INTERRUPT_CONTROLLER_BASE,
    InterruptEvent,
)
from repro.machine.program import Op, OpKind, Program
from repro.workloads.program_builder import shared_address

#: Cells of the racey signature array (small: collisions are the goal).
RACEY_CELLS = 8


def racey_cell(index: int) -> int:
    """Word address of signature-array cell ``index`` (own line each,
    so conflicts are true data conflicts, not false sharing)."""
    return shared_address(index * 8)


def racey_program(threads: int = 4, rounds: int = 60,
                  seed: int = 1) -> Program:
    """The interleaving-signature kernel.

    Each round: load cell A, compute (folds the value into the
    accumulator), load cell B, compute, store the accumulator to cell
    C.  A, B, C walk pseudo-random (per-thread deterministic)
    sequences, so every pair of threads keeps colliding and the final
    array is a hash of the exact global interleaving.
    """
    rng = random.Random(seed)
    thread_ops: list[list[Op]] = []
    for thread in range(threads):
        ops: list[Op] = []
        thread_rng = random.Random(rng.randrange(1 << 30) + thread)
        for _ in range(rounds):
            first = thread_rng.randrange(RACEY_CELLS)
            second = thread_rng.randrange(RACEY_CELLS)
            target = thread_rng.randrange(RACEY_CELLS)
            ops.append(Op(OpKind.LOAD, address=racey_cell(first)))
            ops.append(Op(OpKind.COMPUTE, count=3))
            ops.append(Op(OpKind.LOAD, address=racey_cell(second)))
            ops.append(Op(OpKind.COMPUTE, count=3))
            ops.append(Op(OpKind.STORE, address=racey_cell(target)))
            ops.append(Op(OpKind.COMPUTE, count=20))
        thread_ops.append(ops)
    initial = {racey_cell(index): index + 1
               for index in range(RACEY_CELLS)}
    return Program(threads=thread_ops, name="racey",
                   initial_memory=initial)


def handoff_program(threads: int = 4, laps: int = 6) -> Program:
    """A token circulates a ring: each thread waits for its gate lock
    to open, folds the shared token through its accumulator, then opens
    its successor's gate.

    Gates are spin locks: thread ``i`` acquires its own gate (spinning
    until the predecessor releases it) and releases gate ``i+1``.
    Initially every gate is held except thread 0's, so the token makes
    ``laps`` deterministic circuits -- but the *spin counts* along the
    way are entirely interleaving-dependent, which is exactly what the
    replay machinery must reproduce without logging them.
    """
    def gate(index: int) -> int:
        return shared_address(0x1000 + index * 8)

    token = shared_address(0x2000)
    thread_ops: list[list[Op]] = []
    for thread in range(threads):
        ops: list[Op] = []
        for _ in range(laps):
            ops.append(Op(OpKind.LOCK, address=gate(thread)))
            ops.append(Op(OpKind.LOAD, address=token))
            ops.append(Op(OpKind.COMPUTE, count=15))
            ops.append(Op(OpKind.STORE, address=token))
            ops.append(Op(OpKind.UNLOCK,
                          address=gate((thread + 1) % threads)))
        thread_ops.append(ops)
    initial = {gate(index): 1 for index in range(1, threads)}
    initial[token] = 7
    return Program(threads=thread_ops, name="handoff",
                   initial_memory=initial)


def starvation_program(threads: int = 4, laps: int = 6) -> Program:
    """The stall zoo's lock-starvation specimen: :func:`handoff_program`
    with *every* gate initially held, thread 0's included.

    No gate ever opens, so every thread spins at its first LOCK
    forever.  The machine looks perfectly healthy -- spin chunks are
    read-only and commit happily in every mode -- but no thread's
    architectural state ever advances.  An unsupervised run burns its
    whole event budget; a supervised one is classified
    ``lock-starvation`` by the watchdog's progress detector.
    """
    program = handoff_program(threads=threads, laps=laps)
    gate0 = shared_address(0x1000)
    initial = dict(program.initial_memory)
    initial[gate0] = 1  # nobody will ever release thread 0's gate
    return Program(threads=program.threads, name="starvation",
                   initial_memory=initial,
                   io_seed=program.io_seed)


def squash_livelock_program(interrupts: int = 400,
                            spacing: float = 60.0,
                            handler_ops: int = 8) -> Program:
    """The stall zoo's squash-livelock specimen: two spinners whose
    gates sit on the interrupt controller's status lines, kept slammed
    shut by each other's interrupt handlers.

    Thread ``i`` spins on a LOCK at ``status_word(vector_i) + 1`` --
    exactly the word the deterministic handler body for ``vector_i``
    stores ``payload ^ vector`` to (see
    :func:`repro.machine.events.build_handler_ops`).  The interrupt
    stream delivers ``vector_1`` to processor 0 and ``vector_0`` to
    processor 1, with payloads chosen so the stored value is non-zero:
    the gates *never* open.  Every handler commit conflicts with the
    other processor's in-flight spin chunk, so the two processors
    squash each other in a perfect ping-pong (``collision:p0`` /
    ``collision:p1``) while neither ever advances -- the squash-livelock
    signature the watchdog classifies.
    """
    def status_word(vector: int) -> int:
        return INTERRUPT_CONTROLLER_BASE + (vector % 256) * 16

    vectors = (2, 5)  # distinct controller lines, distinct cache lines
    payloads = (0, 0)  # payload ^ vector != 0: the gate stays held
    thread_ops: list[list[Op]] = []
    for thread, vector in enumerate(vectors):
        gate = status_word(vector) + 1
        thread_ops.append([
            Op(OpKind.LOCK, address=gate),
            Op(OpKind.STORE, address=shared_address(0x3000 + thread * 8)),
        ])
    events = []
    for index in range(interrupts):
        target = index % 2
        other = 1 - target
        events.append(InterruptEvent(
            time=20.0 + index * spacing,
            processor=target,
            vector=vectors[other],
            payload=payloads[other],
            handler_ops=handler_ops,
        ))
    initial = {status_word(v) + 1: 1 for v in vectors}
    return Program(threads=thread_ops, name="squash-livelock",
                   initial_memory=initial, interrupts=events)
