"""Determinism-stress workloads (in the spirit of the `racey` kernel).

Record/replay papers validate determinism with programs whose final
state is maximally sensitive to the memory interleaving: every
reordered pair of accesses avalanche into a different final value.
These generators produce such programs for this simulator:

* :func:`racey_program` -- every thread repeatedly reads two cells of a
  small shared array, mixes them through the accumulator, and writes
  the result back to a pseudo-random cell.  Any change in interleaving
  changes the array forever after (the classic `racey` signature
  computation).
* :func:`handoff_program` -- threads pass a token value around a ring
  of mailboxes with data-dependent spinning, maximizing cross-thread
  RAW chains.

Used by the failure-injection tests: if any single log entry is
corrupted, replaying one of these must diverge *detectably*.
"""

from __future__ import annotations

import random

from repro.machine.program import Op, OpKind, Program
from repro.workloads.program_builder import shared_address

#: Cells of the racey signature array (small: collisions are the goal).
RACEY_CELLS = 8


def racey_cell(index: int) -> int:
    """Word address of signature-array cell ``index`` (own line each,
    so conflicts are true data conflicts, not false sharing)."""
    return shared_address(index * 8)


def racey_program(threads: int = 4, rounds: int = 60,
                  seed: int = 1) -> Program:
    """The interleaving-signature kernel.

    Each round: load cell A, compute (folds the value into the
    accumulator), load cell B, compute, store the accumulator to cell
    C.  A, B, C walk pseudo-random (per-thread deterministic)
    sequences, so every pair of threads keeps colliding and the final
    array is a hash of the exact global interleaving.
    """
    rng = random.Random(seed)
    thread_ops: list[list[Op]] = []
    for thread in range(threads):
        ops: list[Op] = []
        thread_rng = random.Random(rng.randrange(1 << 30) + thread)
        for _ in range(rounds):
            first = thread_rng.randrange(RACEY_CELLS)
            second = thread_rng.randrange(RACEY_CELLS)
            target = thread_rng.randrange(RACEY_CELLS)
            ops.append(Op(OpKind.LOAD, address=racey_cell(first)))
            ops.append(Op(OpKind.COMPUTE, count=3))
            ops.append(Op(OpKind.LOAD, address=racey_cell(second)))
            ops.append(Op(OpKind.COMPUTE, count=3))
            ops.append(Op(OpKind.STORE, address=racey_cell(target)))
            ops.append(Op(OpKind.COMPUTE, count=20))
        thread_ops.append(ops)
    initial = {racey_cell(index): index + 1
               for index in range(RACEY_CELLS)}
    return Program(threads=thread_ops, name="racey",
                   initial_memory=initial)


def handoff_program(threads: int = 4, laps: int = 6) -> Program:
    """A token circulates a ring: each thread waits for its gate lock
    to open, folds the shared token through its accumulator, then opens
    its successor's gate.

    Gates are spin locks: thread ``i`` acquires its own gate (spinning
    until the predecessor releases it) and releases gate ``i+1``.
    Initially every gate is held except thread 0's, so the token makes
    ``laps`` deterministic circuits -- but the *spin counts* along the
    way are entirely interleaving-dependent, which is exactly what the
    replay machinery must reproduce without logging them.
    """
    def gate(index: int) -> int:
        return shared_address(0x1000 + index * 8)

    token = shared_address(0x2000)
    thread_ops: list[list[Op]] = []
    for thread in range(threads):
        ops: list[Op] = []
        for _ in range(laps):
            ops.append(Op(OpKind.LOCK, address=gate(thread)))
            ops.append(Op(OpKind.LOAD, address=token))
            ops.append(Op(OpKind.COMPUTE, count=15))
            ops.append(Op(OpKind.STORE, address=token))
            ops.append(Op(OpKind.UNLOCK,
                          address=gate((thread + 1) % threads)))
        thread_ops.append(ops)
    initial = {gate(index): 1 for index in range(1, threads)}
    initial[token] = 7
    return Program(threads=thread_ops, name="handoff",
                   initial_memory=initial)
