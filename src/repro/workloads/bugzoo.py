"""The seeded-bug zoo: schedule-dependent failures the explorer must crack.

Each specimen is a small concurrent program with a *latent*
concurrency bug plus a machine-checkable invariant over final memory.
"Latent" is load-bearing: the natural arrival-order schedule passes,
so a recorder that only ever observes one interleaving never sees the
bug -- the schedule-space explorer (:mod:`repro.explore`) has to
perturb the commit-grant order to expose it.

The specimens exploit the substrate's chunk semantics precisely:

* A load and the store derived from it placed in *one* chunk are
  atomic by construction (chunks are all-or-nothing), modeling a
  correctly locked critical section.
* A ``SPECIAL`` op deterministically truncates the chunk, so splitting
  a read-modify-write across a special() models the classic bug where
  a value escapes its critical section: the loaded value rides the
  accumulator across the chunk boundary, and a racing commit landing
  in the window is silently lost (the second chunk only *writes* the
  contended line, so directory invalidations never squash it).
* All threads have equal prelude chunk *counts* but unequal
  *durations*: arrival order serializes the updates (pass), while
  PicoLog's round-robin token alternates commits chunk-by-chunk and
  walks straight into the window (fail) -- so predefined-order modes
  detect the zoo on their natural schedule, and the order modes leave
  a genuine exploration problem.

Invariants are pure functions of final memory.  Updates go through
:func:`~repro.machine.program.compute_mix`, whose affine composition
makes ``n`` serialized updates of ``k`` instructions equal *one*
update of ``n*k`` -- so the expected final value is order-independent
across all correct schedules, and any lost update falls off the orbit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.machine.program import Program, compute_mix
from repro.workloads.program_builder import ProgramBuilder, shared_address

#: The contended word every updater specimen races on.
ZOO_TARGET = shared_address(0)
#: Its initial value (arbitrary, non-zero so stale zeros are visible).
ZOO_INITIAL = 0x1234_5678

#: Producer/consumer cells for the order-violation specimen
#: (one cache line apart: conflicts stay per-variable).
ZOO_DATA = shared_address(8)
ZOO_FLAG = shared_address(16)
#: Where the consumer publishes what it observed.
ZOO_OBS_FLAG = shared_address(24)
ZOO_OBS_DATA = shared_address(32)

#: ALU instructions per update (the compute_mix orbit step).
ZOO_MIX = 7
#: The payload the producer publishes.
ZOO_PAYLOAD = 42

#: Prelude shape.  Equal chunk *counts* with unequal *durations*: the
#: fast thread is commit-cadence-bound (arbitration + propagation,
#: hundreds of cycles per chunk), the slow one execution-bound, so its
#: racy window opens only after the fast thread has fully committed --
#: the natural schedule passes.  The slow chunk stays under PicoLog's
#: 1000-instruction standard chunk so the counts stay equal in every
#: mode (an implicit overflow split would misalign the token slots).
ZOO_PRELUDES = 6
ZOO_FAST = 40
ZOO_SLOW = 900


@dataclass(frozen=True)
class InvariantVerdict:
    """Outcome of checking a specimen's invariant on final memory."""

    ok: bool
    detail: str


@dataclass(frozen=True)
class ZooSpecimen:
    """One seeded bug: a program builder plus its invariant."""

    name: str
    description: str
    #: True when some schedule violates the invariant (the explorer
    #: must find one); False for the clean control (any violation is
    #: a false positive).
    buggy: bool
    build: Callable[[], Program]
    check: Callable[[dict[int, int]], InvariantVerdict]


def _orbit_check(final_memory: dict[int, int],
                 updates: int) -> InvariantVerdict:
    """``updates`` serialized compute_mix(., ZOO_MIX) steps compose to
    one compute_mix(., updates * ZOO_MIX) step; a lost update lands on
    an earlier orbit point."""
    expected = compute_mix(ZOO_INITIAL, updates * ZOO_MIX)
    actual = final_memory.get(ZOO_TARGET, ZOO_INITIAL)
    if actual == expected:
        return InvariantVerdict(True, f"target on orbit point {updates}")
    for lost in range(updates):
        if actual == compute_mix(ZOO_INITIAL, lost * ZOO_MIX):
            return InvariantVerdict(
                False,
                f"lost update: target at orbit point {lost}, "
                f"expected {updates}")
    return InvariantVerdict(
        False, f"target 0x{actual:x} off the update orbit entirely")


def _prelude(t, instructions: int) -> None:
    """ZOO_PRELUDES compute-only chunks of the given duration."""
    for _ in range(ZOO_PRELUDES):
        t.compute(instructions)
        t.special()


def _split_update(t, prelude: int) -> None:
    """A buggy read-modify-write: the load's value escapes its chunk
    (the special() models dropping the lock mid-update)."""
    _prelude(t, prelude)
    t.load(ZOO_TARGET)
    t.special()                      # <- the atomicity hole
    t.compute(ZOO_MIX)
    t.store(ZOO_TARGET)


def _atomic_update(t, prelude: int) -> None:
    """A correct read-modify-write: one chunk, atomic by construction."""
    _prelude(t, prelude)
    t.load(ZOO_TARGET)
    t.compute(ZOO_MIX)
    t.store(ZOO_TARGET)


def lost_update_program() -> Program:
    """Both threads split their update across the chunk break."""
    builder = ProgramBuilder(num_threads=2, name="zoo-lost-update")
    builder.set_memory(ZOO_TARGET, ZOO_INITIAL)
    with builder.thread(0) as t:
        _split_update(t, prelude=ZOO_FAST)   # finishes first naturally
    with builder.thread(1) as t:
        _split_update(t, prelude=ZOO_SLOW)   # same chunk count, slower
    return builder.build()


def lost_update_check(final_memory: dict[int, int]) -> InvariantVerdict:
    return _orbit_check(final_memory, updates=2)


def atomicity_violation_program() -> Program:
    """Thread 0 is buggy (split update), thread 1 is correct (atomic
    single-chunk update).  The bug fires only when thread 1's commit
    lands inside thread 0's window."""
    builder = ProgramBuilder(num_threads=2, name="zoo-atomicity")
    builder.set_memory(ZOO_TARGET, ZOO_INITIAL)
    with builder.thread(0) as t:
        _split_update(t, prelude=ZOO_FAST)
    with builder.thread(1) as t:
        _atomic_update(t, prelude=ZOO_SLOW)
    return builder.build()


def atomicity_violation_check(
        final_memory: dict[int, int]) -> InvariantVerdict:
    return _orbit_check(final_memory, updates=2)


def order_violation_program() -> Program:
    """The producer publishes FLAG *before* DATA (the bug); the
    consumer checks FLAG then reads DATA.  A filler chunk between the
    producer's two stores is the window a perturbed schedule can drop
    the consumer into."""
    builder = ProgramBuilder(num_threads=2, name="zoo-order")
    builder.set_memory(ZOO_DATA, 0)
    builder.set_memory(ZOO_FLAG, 0)
    builder.set_memory(ZOO_OBS_FLAG, 0)
    builder.set_memory(ZOO_OBS_DATA, 0)
    with builder.thread(0) as t:         # producer (fast)
        _prelude(t, ZOO_FAST)
        t.store(ZOO_FLAG, value=1)       # bug: flag first ...
        t.special()
        t.compute(ZOO_FAST)              # ... then a gap ...
        t.special()
        t.store(ZOO_DATA, value=ZOO_PAYLOAD)   # ... then the data
    with builder.thread(1) as t:         # consumer (slow prelude)
        _prelude(t, ZOO_SLOW)
        t.load(ZOO_FLAG)
        t.store(ZOO_OBS_FLAG)
        t.special()
        t.load(ZOO_DATA)
        t.store(ZOO_OBS_DATA)
    return builder.build()


def order_violation_check(
        final_memory: dict[int, int]) -> InvariantVerdict:
    obs_flag = final_memory.get(ZOO_OBS_FLAG, 0)
    obs_data = final_memory.get(ZOO_OBS_DATA, 0)
    if obs_flag != 1:
        return InvariantVerdict(True, "consumer never saw the flag")
    if obs_data == ZOO_PAYLOAD:
        return InvariantVerdict(True, "flag implied data")
    return InvariantVerdict(
        False,
        f"order violation: consumer saw flag=1 but data={obs_data} "
        f"(expected {ZOO_PAYLOAD})")


def clean_rmw_program() -> Program:
    """The control: every update is an atomic fetch-add, so *no*
    schedule can break the invariant.  Same prelude/chunk shape as the
    buggy specimens, so the explorer has an equally rich schedule
    space to (correctly) find nothing in."""
    builder = ProgramBuilder(num_threads=2, name="zoo-clean-rmw")
    builder.set_memory(ZOO_TARGET, 0)
    for thread, prelude in enumerate((ZOO_FAST, ZOO_SLOW)):
        with builder.thread(thread) as t:
            for _ in range(3):
                t.compute(prelude)
                t.special()
                t.rmw(ZOO_TARGET, delta=1)
                t.special()
    return builder.build()


def clean_rmw_check(final_memory: dict[int, int]) -> InvariantVerdict:
    actual = final_memory.get(ZOO_TARGET, 0)
    if actual == 6:
        return InvariantVerdict(True, "all increments landed")
    return InvariantVerdict(
        False, f"counter is {actual}, expected 6")


#: name -> specimen.  The explorer's acceptance gate iterates this.
BUG_ZOO: dict[str, ZooSpecimen] = {
    spec.name: spec for spec in (
        ZooSpecimen(
            name="lost-update",
            description="two split read-modify-writes race on one word",
            buggy=True,
            build=lost_update_program,
            check=lost_update_check,
        ),
        ZooSpecimen(
            name="atomicity-violation",
            description="a split update races an atomic one",
            buggy=True,
            build=atomicity_violation_program,
            check=atomicity_violation_check,
        ),
        ZooSpecimen(
            name="order-violation",
            description="flag published before its data",
            buggy=True,
            build=order_violation_program,
            check=order_violation_check,
        ),
        ZooSpecimen(
            name="clean-rmw",
            description="atomic control: no schedule can fail it",
            buggy=False,
            build=clean_rmw_program,
            check=clean_rmw_check,
        ),
    )
}


def zoo_specimen(name: str) -> ZooSpecimen:
    """Look a specimen up by name (raises KeyError with the roster)."""
    try:
        return BUG_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo specimen {name!r}; "
            f"have {sorted(BUG_ZOO)}") from None
