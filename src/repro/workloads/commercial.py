"""Commercial-workload stand-ins: SPECjbb2000 and SPECweb2005.

The paper runs these under a full-system simulator, so -- unlike the
SPLASH-2 codes -- they include *system references*: interrupts, DMA
traffic and I/O operations (Section 5).  The presets therefore turn on
the input-event knobs that the SPLASH-2 presets leave at zero, which is
what exercises DeLorean's Interrupt/IO/DMA logs and the DMA arbitration
path.

* ``sjbb2k`` models 8 warehouses: mostly-partitioned object updates
  with a shared statistics area, moderate locking, timer interrupts and
  a steady trickle of DMA.
* ``sweb2005`` models the e-commerce mix: higher I/O and interrupt
  rates (network RX), hotter shared session state.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.program import Program
from repro.workloads.synthetic import SyntheticSpec, build_program

COMMERCIAL_APPS: dict[str, SyntheticSpec] = {
    "sjbb2k": SyntheticSpec(
        name="sjbb2k", work_items=700, sharing_fraction=0.20,
        hot_fraction=0.03, remote_read_fraction=0.20,
        shared_lines=12288, lock_count=32, lock_probability=0.004,
        critical_accesses=4, write_fraction=0.40,
        io_rate=0.004, special_rate=0.002, trap_rate=0.01,
        interrupts_per_thousand_items=6.0, interrupt_handler_ops=96,
        dma_bursts=6, dma_words_per_burst=16),
    "sweb2005": SyntheticSpec(
        name="sweb2005", work_items=700, sharing_fraction=0.26,
        hot_fraction=0.012, remote_read_fraction=0.25,
        shared_lines=8192, lock_count=24, lock_probability=0.004,
        hot_lock_fraction=0.1, critical_accesses=4, write_fraction=0.35,
        io_rate=0.010, special_rate=0.003, trap_rate=0.015,
        interrupts_per_thousand_items=10.0, interrupt_handler_ops=128,
        dma_bursts=10, dma_words_per_burst=24),
}


def commercial_spec(app: str, scale: float = 1.0, seed: int = 1,
                    num_threads: int = 8) -> SyntheticSpec:
    """The (possibly rescaled) spec for a commercial workload."""
    if app not in COMMERCIAL_APPS:
        raise ConfigurationError(
            f"unknown commercial app {app!r}; choose from "
            f"{sorted(COMMERCIAL_APPS)}")
    spec = COMMERCIAL_APPS[app].scaled(scale).with_seed(seed)
    if num_threads != spec.num_threads:
        spec = spec.with_threads(num_threads)
    return spec


def commercial_program(app: str, scale: float = 1.0, seed: int = 1,
                       num_threads: int = 8) -> Program:
    """A ready-to-run commercial-workload stand-in program."""
    return build_program(commercial_spec(app, scale, seed, num_threads))
