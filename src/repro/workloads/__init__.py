"""Synthetic concurrent workloads standing in for the paper's suites.

The paper evaluates SPLASH-2 (all applications but Volrend),
SPECjbb2000 and SPECweb2005.  We cannot run those binaries inside a
behavioral Python simulator, so this subpackage generates synthetic
concurrent programs whose *sharing structure* -- the property DeLorean's
logs and performance actually depend on -- is parameterized per
application: working-set size, fraction of shared accesses, lock
contention, barrier cadence, load imbalance, and (for the commercial
workloads) interrupt/DMA/I-O system activity.  See DESIGN.md for the
substitution argument.
"""

from repro.workloads.program_builder import ProgramBuilder
from repro.workloads.synthetic import (
    SyntheticSpec,
    build_program,
)
from repro.workloads.splash2 import (
    SPLASH2_APPS,
    splash2_program,
    splash2_spec,
)
from repro.workloads.commercial import (
    COMMERCIAL_APPS,
    commercial_program,
    commercial_spec,
)
from repro.workloads.bugzoo import (
    BUG_ZOO,
    InvariantVerdict,
    ZooSpecimen,
    zoo_specimen,
)

__all__ = [
    "BUG_ZOO",
    "InvariantVerdict",
    "ZooSpecimen",
    "zoo_specimen",
    "ProgramBuilder",
    "SyntheticSpec",
    "build_program",
    "SPLASH2_APPS",
    "splash2_program",
    "splash2_spec",
    "COMMERCIAL_APPS",
    "commercial_program",
    "commercial_spec",
]
