"""Parameterized synthetic concurrent-program generator.

A :class:`SyntheticSpec` describes a workload's sharing structure; the
generator turns it into a concrete :class:`~repro.machine.program.Program`.
Each thread executes ``work_items`` *items*; an item is a compute block
followed by a handful of memory accesses, with optional lock-protected
critical sections, periodic barriers, and rare I/O or special
instructions.  Accesses within an item cluster on a small number of
cache lines (real programs have spatial locality; this keeps chunk
footprints, and therefore signature densities and conflict rates, in a
realistic range).

The knobs map directly onto the behaviours DeLorean is sensitive to:

* ``sharing_fraction`` and ``shared_lines`` set the cross-thread
  conflict rate (squashes, strata breaks);
* ``lock_*`` set contended-critical-section behaviour (serialization,
  spin instructions);
* ``barrier_every`` sets global synchronization cadence;
* ``imbalance`` skews per-thread work (raytrace-style token stalls);
* ``io_rate`` / ``special_rate`` set deterministic chunk truncations;
* interrupt/DMA rates (commercial workloads) set input-log traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.machine.program import Op, OpKind, Program
from repro.workloads.program_builder import (
    barrier_address,
    lock_address,
    private_address,
    shared_address,
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Complete description of one synthetic workload."""

    name: str
    num_threads: int = 8
    work_items: int = 600
    compute_per_item: int = 24
    private_accesses_per_item: int = 3
    shared_accesses_per_item: int = 2
    sharing_fraction: float = 0.2
    write_fraction: float = 0.35
    shared_lines: int = 8192
    private_lines: int = 512
    line_words: int = 8
    # Structure of the shared region.  Most shared data in real
    # parallel programs is *partitioned*: each thread mostly touches
    # its own slice, with cross-thread traffic through reads (consumer
    # phases), writes into other slices (all-to-all phases like radix's
    # permutation), and a small truly-hot region (queue heads, global
    # counters) where concurrent write conflicts actually happen.
    hot_lines: int = 256
    hot_fraction: float = 0.05
    remote_read_fraction: float = 0.30
    remote_write_fraction: float = 0.0
    # Temporal locality: probability that an item reuses the previous
    # item's shared line instead of drawing a new one.  Real programs
    # revisit working-set lines heavily; this keeps per-chunk footprints
    # (and therefore conflict and signature-occupancy rates) realistic.
    shared_reuse: float = 0.65
    # Producer/consumer structure: each thread owns a "publish ring" at
    # the head of its partition that it appends results to; remote
    # reads consume *lagged* ring slots (slots published well before
    # the reader's own progress point).  This produces the dense,
    # temporally-distant cross-thread RAW dependences that conventional
    # recorders (FDR/RTR/Strata) must log, without inflating the
    # concurrent-conflict (squash) rate -- consumers stay
    # ``consume_lag`` publishes behind the producer's frontier.
    publish_lines: int = 512
    publish_rate: float = 0.5
    publish_every: int = 4           # items per ring slot advance
    consume_lag: int = 40            # slots consumers stay behind
    # Locking.
    lock_count: int = 16
    lock_probability: float = 0.05
    critical_accesses: int = 3
    hot_lock_fraction: float = 0.0   # fraction of acquires on lock 0
    # Barriers.
    barrier_every: int = 0           # items between barriers; 0 = none
    # Load imbalance: thread t runs work_items * (1 + imbalance * t/T).
    imbalance: float = 0.0
    # Deterministic truncation sources.
    io_rate: float = 0.0             # I/O load probability per item
    special_rate: float = 0.0        # special-instruction prob per item
    trap_rate: float = 0.0           # inline trap probability per item
    # System activity (commercial workloads).
    interrupts_per_thousand_items: float = 0.0
    interrupt_handler_ops: int = 96
    dma_bursts: int = 0
    dma_words_per_burst: int = 16
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if self.work_items < 1:
            raise ConfigurationError("need at least one work item")
        for name in ("sharing_fraction", "write_fraction",
                     "lock_probability", "hot_lock_fraction", "io_rate",
                     "special_rate", "trap_rate", "hot_fraction",
                     "remote_read_fraction", "remote_write_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability, got {value}")
        if (self.hot_fraction + self.remote_read_fraction
                + self.remote_write_fraction) > 1.0:
            raise ConfigurationError(
                "hot/remote access fractions must sum to at most 1")

    def scaled(self, scale: float) -> "SyntheticSpec":
        """The same workload with ``work_items`` scaled (bench knob)."""
        items = max(1, int(self.work_items * scale))
        return dataclass_replace(self, work_items=items)

    def with_threads(self, num_threads: int) -> "SyntheticSpec":
        """The same workload on a different processor count."""
        return dataclass_replace(self, num_threads=num_threads)

    def with_seed(self, seed: int) -> "SyntheticSpec":
        """The same workload with a different random seed."""
        return dataclass_replace(self, seed=seed)

    def estimated_instructions_per_thread(self) -> int:
        """Rough dynamic instruction count (spin-free lower bound)."""
        per_item = (self.compute_per_item
                    + self.private_accesses_per_item
                    + self.shared_accesses_per_item
                    + self.lock_probability * (
                        8 + 2 * self.critical_accesses)
                    + self.trap_rate * 16)
        return int(self.work_items * per_item)


def dataclass_replace(spec: SyntheticSpec, **changes) -> SyntheticSpec:
    """`dataclasses.replace` without the import noise at call sites."""
    from dataclasses import replace
    return replace(spec, **changes)


def _other_thread(spec: SyntheticSpec, thread: int,
                  rng: random.Random) -> int:
    other = rng.randrange(spec.num_threads)
    if spec.num_threads > 1:
        while other == thread:
            other = rng.randrange(spec.num_threads)
    return other


def _shared_line(spec: SyntheticSpec, thread: int,
                 rng: random.Random, locality: dict) -> tuple[int, bool]:
    """Pick a shared line for one item's cluster.

    Returns ``(line_index, writable)``: remote-partition reads are
    read-only (consumer traffic), everything else may be written.
    Partition layout: ``[publish ring | scratch]``; the ring is where
    cross-thread traffic concentrates (see ``publish_lines``).
    """
    partition = max(1, spec.shared_lines // spec.num_threads)
    ring = min(spec.publish_lines, max(1, partition // 2))
    roll = rng.random()
    if roll < spec.hot_fraction:
        return rng.randrange(max(1, spec.hot_lines)), True
    base = spec.hot_lines
    frontier = locality.get("item", 0) // max(1, spec.publish_every)
    if roll < spec.hot_fraction + spec.remote_read_fraction:
        # Consume a lagged publish-ring slot of another thread.  Peer
        # progress is approximated by this thread's own item progress
        # (threads advance at similar rates); the slot lag keeps
        # consumers well clear of the producer's concurrent frontier,
        # so these dependences are temporally distant: conventional
        # recorders must log them, but they rarely squash chunks.
        other = _other_thread(spec, thread, rng)
        available = min(frontier - spec.consume_lag, ring)
        if available >= 1:
            slot = rng.randrange(available)
            return base + other * partition + slot, False
        # Nothing safely published yet: read the peer's scratch area.
        return (base + other * partition + ring
                + rng.randrange(max(1, partition - ring)), False)
    if roll < (spec.hot_fraction + spec.remote_read_fraction
               + spec.remote_write_fraction):
        # All-to-all phase (radix permutation): write into another
        # thread's ring at a random slot.
        other = _other_thread(spec, thread, rng)
        return base + other * partition + rng.randrange(ring), True
    # Own partition: publish at the ring frontier or work in scratch.
    if rng.random() < spec.publish_rate:
        return base + thread * partition + (frontier % ring), True
    return (base + thread * partition + ring
            + rng.randrange(max(1, partition - ring)), True)


def _item_ops(spec: SyntheticSpec, thread: int,
              rng: random.Random,
              locality: dict) -> list[Op]:
    """Ops for one work item of one thread.

    ``locality`` carries the thread's last-used shared line between
    items (see ``shared_reuse``).
    """
    ops: list[Op] = []
    compute = max(1, int(rng.gauss(spec.compute_per_item,
                                   spec.compute_per_item * 0.25)))
    ops.append(Op(OpKind.COMPUTE, count=compute))
    # Private accesses: clustered on one private line per item.
    base = rng.randrange(spec.private_lines) * spec.line_words
    for index in range(spec.private_accesses_per_item):
        address = private_address(thread, base + index % spec.line_words)
        if rng.random() < spec.write_fraction:
            ops.append(Op(OpKind.STORE, address=address))
        else:
            ops.append(Op(OpKind.LOAD, address=address))
    # Shared accesses: clustered on one shared line per item.
    if rng.random() < spec.sharing_fraction:
        if ("line" in locality
                and rng.random() < spec.shared_reuse):
            line, writable = locality["line"], locality["writable"]
        else:
            line, writable = _shared_line(spec, thread, rng, locality)
            locality["line"] = line
            locality["writable"] = writable
        base = line * spec.line_words
        for index in range(spec.shared_accesses_per_item):
            address = shared_address(base + index % spec.line_words)
            if writable and rng.random() < spec.write_fraction:
                ops.append(Op(OpKind.STORE, address=address))
            else:
                ops.append(Op(OpKind.LOAD, address=address))
    # Lock-protected critical section.
    if spec.lock_count and rng.random() < spec.lock_probability:
        if rng.random() < spec.hot_lock_fraction:
            lock_index = 0
        else:
            lock_index = rng.randrange(spec.lock_count)
        lock = lock_address(lock_index)
        counter = shared_address(
            (spec.hot_lines + spec.shared_lines + 64) * spec.line_words
            + lock_index * spec.line_words)
        ops.append(Op(OpKind.LOCK, address=lock))
        ops.append(Op(OpKind.RMW, address=counter, value=1))
        for _ in range(spec.critical_accesses - 1):
            ops.append(Op(OpKind.LOAD, address=counter))
        ops.append(Op(OpKind.UNLOCK, address=lock))
    # Rare deterministic truncation sources.
    roll = rng.random()
    if roll < spec.io_rate:
        ops.append(Op(OpKind.IO_LOAD, address=thread % 4))
    elif roll < spec.io_rate + spec.special_rate:
        ops.append(Op(OpKind.SPECIAL))
    if rng.random() < spec.trap_rate:
        ops.append(Op(OpKind.TRAP, count=16))
    return ops


def build_program(spec: SyntheticSpec) -> Program:
    """Generate the concrete Program for a spec (deterministic in the
    spec, including its seed)."""
    rng = random.Random(spec.seed)
    threads: list[list[Op]] = []
    for thread in range(spec.num_threads):
        thread_rng = random.Random(rng.randrange(1 << 62) + thread)
        if spec.num_threads > 1:
            skew = 1.0 + spec.imbalance * thread / (spec.num_threads - 1)
        else:
            skew = 1.0
        items = max(1, int(spec.work_items * skew))
        ops: list[Op] = []
        locality: dict = {}
        for item in range(items):
            locality["item"] = item
            ops.extend(_item_ops(spec, thread, thread_rng, locality))
            if (spec.barrier_every
                    and item % spec.barrier_every == spec.barrier_every - 1
                    and spec.imbalance == 0.0):
                # Barriers only make sense with balanced work.
                ops.append(Op(OpKind.BARRIER,
                              address=barrier_address(0),
                              count=spec.num_threads))
        threads.append(ops)
    initial_memory = {
        shared_address(offset * spec.line_words): offset + 1
        for offset in range(min(spec.shared_lines, 256))}
    interrupts = _generate_interrupts(spec, rng)
    dma_transfers = _generate_dma(spec, rng)
    return Program(
        threads=threads,
        name=spec.name,
        initial_memory=initial_memory,
        interrupts=interrupts,
        dma_transfers=dma_transfers,
        io_seed=spec.seed,
    )


def _estimated_duration_cycles(spec: SyntheticSpec) -> float:
    """Crude duration estimate used to place external events."""
    instructions = spec.estimated_instructions_per_thread()
    return max(10_000.0, instructions * 0.8)


def _generate_interrupts(spec: SyntheticSpec,
                         rng: random.Random) -> list[InterruptEvent]:
    rate = spec.interrupts_per_thousand_items
    if rate <= 0:
        return []
    duration = _estimated_duration_cycles(spec)
    count = max(1, int(spec.work_items * rate / 1000.0))
    events = []
    for index in range(count * spec.num_threads):
        events.append(InterruptEvent(
            time=rng.uniform(0.05, 0.75) * duration,
            processor=index % spec.num_threads,
            vector=rng.randrange(32),
            payload=rng.randrange(1 << 32),
            handler_ops=spec.interrupt_handler_ops,
            high_priority=rng.random() < 0.10,
        ))
    return sorted(events, key=lambda e: e.time)


def _generate_dma(spec: SyntheticSpec,
                  rng: random.Random) -> list[DmaTransfer]:
    if spec.dma_bursts <= 0:
        return []
    duration = _estimated_duration_cycles(spec)
    transfers = []
    # DMA writes land in a dedicated tail past the shared region (and
    # past the lock counters) so they conflict with processor accesses
    # only occasionally.
    tail_lines = (spec.hot_lines + spec.shared_lines + 64
                  + spec.lock_count + 8)
    dma_base = shared_address(tail_lines * spec.line_words)
    for index in range(spec.dma_bursts):
        start = dma_base + index * spec.dma_words_per_burst
        writes = {start + w: rng.randrange(1 << 32)
                  for w in range(spec.dma_words_per_burst)}
        # A minority of bursts deliberately overlap the hot shared
        # region to exercise DMA-vs-chunk conflict handling.
        if rng.random() < 0.2:
            hot = shared_address(
                rng.randrange(max(1, spec.hot_lines)) * spec.line_words)
            writes[hot] = rng.randrange(1 << 32)
        transfers.append(DmaTransfer(
            time=rng.uniform(0.05, 0.75) * duration,
            writes=writes,
        ))
    return sorted(transfers, key=lambda t: t.time)
