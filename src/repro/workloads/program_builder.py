"""A small DSL for constructing concurrent programs by hand.

The synthetic generators use :class:`SyntheticSpec`; the examples and
many unit tests instead build programs explicitly, for which this
builder provides readable helpers::

    builder = ProgramBuilder(num_threads=2, name="counter-race")
    for thread in range(2):
        with builder.thread(thread) as t:
            for _ in range(100):
                t.lock(LOCK)
                t.load(COUNTER)
                t.compute(5)
                t.store(COUNTER)
                t.unlock(LOCK)
    program = builder.build()

Address-space conventions (word addresses) shared by all generated
workloads live here as module constants so tests and examples agree on
where locks, barriers and arrays sit.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ConfigurationError
from repro.machine.events import DmaTransfer, InterruptEvent
from repro.machine.program import Op, OpKind, Program

#: Word-address bases of the shared layout used by generated workloads.
LOCK_REGION = 0x0010_0000
BARRIER_REGION = 0x0011_0000
SHARED_REGION = 0x0020_0000
PRIVATE_REGION = 0x0040_0000
PRIVATE_STRIDE = 0x0001_0000

#: Locks and barrier counters sit one cache line apart to avoid false
#: sharing between unrelated synchronization variables.
SYNC_STRIDE = 8


def lock_address(index: int) -> int:
    """Word address of lock ``index``."""
    return LOCK_REGION + index * SYNC_STRIDE


def barrier_address(index: int) -> int:
    """Word address of barrier counter ``index``."""
    return BARRIER_REGION + index * SYNC_STRIDE


def shared_address(offset: int) -> int:
    """Word address of shared-array word ``offset``."""
    return SHARED_REGION + offset


def private_address(thread: int, offset: int) -> int:
    """Word address of thread-private word ``offset``."""
    return PRIVATE_REGION + thread * PRIVATE_STRIDE + offset


class _ThreadWriter:
    """Accumulates ops for a single thread (see ProgramBuilder)."""

    def __init__(self) -> None:
        self.ops: list[Op] = []

    def load(self, address: int) -> "_ThreadWriter":
        """acc <- mem[address]."""
        self.ops.append(Op(OpKind.LOAD, address=address))
        return self

    def store(self, address: int, value: int | None = None) -> \
            "_ThreadWriter":
        """mem[address] <- value (literal) or the accumulator."""
        self.ops.append(Op(OpKind.STORE, address=address, value=value))
        return self

    def compute(self, instructions: int) -> "_ThreadWriter":
        """Run ``instructions`` ALU instructions (mixes the
        accumulator)."""
        self.ops.append(Op(OpKind.COMPUTE, count=instructions))
        return self

    def rmw(self, address: int, delta: int = 1) -> "_ThreadWriter":
        """Atomic fetch-and-add; acc <- old value."""
        self.ops.append(Op(OpKind.RMW, address=address, value=delta))
        return self

    def lock(self, address: int) -> "_ThreadWriter":
        """Spin until the lock at ``address`` is acquired."""
        self.ops.append(Op(OpKind.LOCK, address=address))
        return self

    def unlock(self, address: int) -> "_ThreadWriter":
        """Release the lock at ``address``."""
        self.ops.append(Op(OpKind.UNLOCK, address=address))
        return self

    def barrier(self, address: int, participants: int) -> "_ThreadWriter":
        """Sense-free counting barrier across ``participants`` threads."""
        self.ops.append(Op(OpKind.BARRIER, address=address,
                           count=participants))
        return self

    def io_load(self, port: int) -> "_ThreadWriter":
        """Uncached I/O load (truncates the current chunk)."""
        self.ops.append(Op(OpKind.IO_LOAD, address=port))
        return self

    def io_store(self, port: int) -> "_ThreadWriter":
        """Uncached I/O store (truncates the current chunk)."""
        self.ops.append(Op(OpKind.IO_STORE, address=port))
        return self

    def special(self) -> "_ThreadWriter":
        """Special system instruction (truncates the current chunk)."""
        self.ops.append(Op(OpKind.SPECIAL))
        return self

    def trap(self, handler_instructions: int) -> "_ThreadWriter":
        """A trap whose handler runs inline (does not truncate)."""
        self.ops.append(Op(OpKind.TRAP, count=handler_instructions))
        return self

    def critical_section(self, lock_addr: int, body_ops: list[Op]) -> \
            "_ThreadWriter":
        """lock; body; unlock."""
        self.lock(lock_addr)
        self.ops.extend(body_ops)
        self.unlock(lock_addr)
        return self


class ProgramBuilder:
    """Constructs a :class:`~repro.machine.program.Program`."""

    def __init__(self, num_threads: int, name: str = "built") -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        self.name = name
        self._writers = [_ThreadWriter() for _ in range(num_threads)]
        self.initial_memory: dict[int, int] = {}
        self.interrupts: list[InterruptEvent] = []
        self.dma_transfers: list[DmaTransfer] = []
        self.io_seed = 0

    @contextmanager
    def thread(self, index: int):
        """Context manager yielding the writer for thread ``index``."""
        yield self._writers[index]

    def writer(self, index: int) -> _ThreadWriter:
        """The op writer for thread ``index``."""
        return self._writers[index]

    def set_memory(self, address: int, value: int) -> None:
        """Initialize one memory word."""
        self.initial_memory[address] = value

    def add_interrupt(self, event: InterruptEvent) -> None:
        """Attach an external interrupt to the workload."""
        self.interrupts.append(event)

    def add_dma(self, transfer: DmaTransfer) -> None:
        """Attach a DMA burst to the workload."""
        self.dma_transfers.append(transfer)

    def build(self) -> Program:
        """Produce the immutable Program."""
        return Program(
            threads=[w.ops for w in self._writers],
            name=self.name,
            initial_memory=dict(self.initial_memory),
            interrupts=sorted(self.interrupts, key=lambda e: e.time),
            dma_transfers=sorted(self.dma_transfers,
                                 key=lambda t: t.time),
            io_seed=self.io_seed,
        )
