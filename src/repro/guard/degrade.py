"""Graceful mode degradation: restart a wedged segment in a safer mode.

PicoLog is the cheapest recording mode but the least robust: it keeps
no processor-interleaving log, so a workload that blows its chunk-size
budget (a truncation storm bloating the CS log) or that repeatedly
fails replay verification has nowhere to go.  The paper's cost ladder
runs the other way -- Order&Size logs the most and constrains replay
the most -- so a supervised session can *escalate*:

    PicoLog -> OrderOnly -> Order&Size        (SIZE_ONLY -> Order&Size)

When the supervisor decides to degrade, it stops the machine at a
quiescent chunk boundary, snapshots the committed prefix as a
:class:`~repro.core.recorder.Recording` (the segment), captures the
boundary's architectural state (:func:`capture_boundary`), and
re-records the *remaining* execution as a fresh derived program in the
safer mode.  The segments are stitched into a
:class:`SegmentedRecording`; :func:`replay_stitched` replays them
end-to-end -- each from its boundary checkpoint, verifying determinism
per segment and architectural continuity across the seams.

Per-segment numbering is *fresh*: the derived program starts new chunk
sequence numbers, commit slots and log cursors, so each segment is a
self-contained recording in its own mode with no log rewriting -- the
same property that makes interval checkpoints exact (the logs are
indexed by architectural counters, and we reset the counters).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace

from repro.core.interval import IntervalCheckpoint
from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.core.recorder import Recording
from repro.core.serialization import load_recording, save_recording
from repro.errors import ConfigurationError, SalvageError
from repro.machine.program import Program
from repro.machine.system import ChunkMachine, replay_execution

_SEGMENT_MAGIC = b"DLRNSEG1"

#: The escalation ladder, safest-last.  ``None`` means "already at the
#: most constrained mode; nothing safer exists".
_SAFER = {
    ExecutionMode.PICOLOG: ExecutionMode.ORDER_ONLY,
    ExecutionMode.ORDER_ONLY: ExecutionMode.ORDER_AND_SIZE,
    ExecutionMode.SIZE_ONLY: ExecutionMode.ORDER_AND_SIZE,
    ExecutionMode.ORDER_AND_SIZE: None,
}


def safer_mode(mode: ExecutionMode) -> ExecutionMode | None:
    """The next mode up the escalation ladder, or ``None`` at the top."""
    return _SAFER[mode]


@dataclass
class SegmentBoundary:
    """The committed architectural state where a segment was cut.

    Captured at a quiescent chunk boundary: the committed memory image,
    each thread's committed state, any interrupt handlers that were
    delivered but not yet committed (they re-inject at the start of the
    next segment), and the still-unconsumed external-event streams with
    times rebased to the new segment's t=0.
    """

    cycle: float
    gcc: int
    memory_image: dict[int, int]
    thread_states: dict
    pending_handlers: dict[int, list]
    interrupts_remaining: list
    dma_remaining: list


def capture_boundary(machine) -> SegmentBoundary:
    """Snapshot a recording machine's committed state at a quiescent
    chunk boundary, for restarting the remainder as a new segment.

    Speculative in-flight chunks are rolled back by construction (we
    take each processor's committed boundary state); their work simply
    re-executes in the next segment.  Handlers trapped in speculative
    chunks are requeued, exactly as a squash would requeue them.
    """
    if machine.recorder is None:
        raise ConfigurationError(
            "capture_boundary needs a recording-phase machine")
    if machine.arbiter.committing or machine.arbiter.has_reservation:
        raise ConfigurationError(
            "capture_boundary requires a quiescent commit boundary")
    now = machine.engine.now
    thread_states = {}
    pending_handlers: dict[int, list] = {}
    for proc in machine.processors:
        if proc.outstanding:
            state = proc.outstanding[0].start_state
        else:
            state = proc.spec_state
        thread_states[proc.proc_id] = state.snapshot()
        carried = []
        for chunk in proc.outstanding:
            if chunk.is_handler and chunk.piece_index == 0:
                carried.append(chunk.handler_event)
        carried.extend(proc.pending_handlers)
        if carried:
            pending_handlers[proc.proc_id] = [
                replace(event, time=0.0, replay_chunk_id=None)
                for event in carried]

    interrupts = [
        replace(event, time=max(0.0, event.time - now))
        for event in machine.program.interrupts if event.time > now]
    committed_dma = len(machine.recorder.dma_log.entries)
    arrivals = sorted(machine.program.dma_transfers,
                      key=lambda t: t.time)
    dma = [replace(t, time=max(0.0, t.time - now))
           for t in arrivals[committed_dma:]]
    return SegmentBoundary(
        cycle=now,
        gcc=len(machine._fingerprints),
        memory_image=machine.memory.snapshot(),
        thread_states=thread_states,
        pending_handlers=pending_handlers,
        interrupts_remaining=interrupts,
        dma_remaining=dma,
    )


def derive_segment_program(program: Program,
                           boundary: SegmentBoundary) -> Program:
    """The remaining execution as a standalone program.

    Same thread op lists (the restored thread states carry the resume
    positions), committed memory as the initial image, and only the
    not-yet-consumed external events.
    """
    return Program(
        threads=program.threads,
        name=f"{program.name}@gcc{boundary.gcc}",
        initial_memory=dict(boundary.memory_image),
        interrupts=list(boundary.interrupts_remaining),
        dma_transfers=list(boundary.dma_remaining),
        io_seed=program.io_seed,
    )


def segment_start_checkpoint(boundary: SegmentBoundary,
                             num_processors: int) -> IntervalCheckpoint:
    """The boundary as a commit-index-0 interval checkpoint.

    Because segment numbering is fresh, replaying a segment is exactly
    interval replay of I(0, m): restore the boundary state, consume the
    segment's logs from their start.  The unmodified
    :func:`~repro.machine.system.replay_execution` handles it.
    """
    return IntervalCheckpoint(
        commit_index=0,
        memory_image=dict(boundary.memory_image),
        thread_states=dict(boundary.thread_states),
        committed_counts={p: 0 for p in range(num_processors)},
        io_consumed={p: 0 for p in range(num_processors)},
        dma_consumed=0,
        label=f"segment@gcc{boundary.gcc}",
    )


def build_segment_record_machine(
    program: Program,
    boundary: SegmentBoundary,
    machine_config,
    mode: ExecutionMode,
    mode_config: ModeConfig | None = None,
    stochastic_overflow_rate: float = 0.0,
    checkpoint_every: int = 0,
    tracer=None,
) -> tuple[ChunkMachine, Program]:
    """A fresh recording machine resuming from ``boundary`` in
    ``mode`` (not yet started)."""
    seg_mode_config = mode_config or preferred_config(mode)
    seg_machine_config = replace(
        machine_config,
        standard_chunk_size=seg_mode_config.standard_chunk_size)
    seg_program = derive_segment_program(program, boundary)
    machine = ChunkMachine(
        seg_program, seg_machine_config, seg_mode_config,
        stochastic_overflow_rate=stochastic_overflow_rate,
        checkpoint_every=checkpoint_every,
        tracer=tracer)
    for proc in machine.processors:
        state = boundary.thread_states.get(proc.proc_id)
        if state is not None:
            proc.spec_state.restore(state)
        for event in boundary.pending_handlers.get(proc.proc_id, []):
            proc.pending_handlers.append(event)
    return machine, seg_program


@dataclass
class RecordedSegment:
    """One stitch of a degraded recording.

    ``start_checkpoint`` is ``None`` for the first segment (it starts
    from the program's own initial state) and a commit-index-0 interval
    checkpoint for every later one.  ``reason`` says why this segment
    ended (``degraded:log-bytes`` for a cut, ``completed`` for the
    last one).
    """

    recording: Recording
    mode: ExecutionMode
    start_checkpoint: IntervalCheckpoint | None = None
    reason: str = ""

    @property
    def commits(self) -> int:
        """Logical commits recorded in this segment."""
        return len(self.recording.fingerprints)


@dataclass
class SegmentedRecording:
    """A multi-segment recording stitched across mode escalations."""

    segments: list[RecordedSegment] = field(default_factory=list)
    program_name: str = ""

    @property
    def total_commits(self) -> int:
        """Logical commits across all segments."""
        return sum(seg.commits for seg in self.segments)

    @property
    def modes(self) -> list[ExecutionMode]:
        """Per-segment recording modes, in order."""
        return [seg.mode for seg in self.segments]

    def summary(self) -> str:
        """One line for reports and CLI output."""
        chain = " -> ".join(
            f"{seg.mode.value}[{seg.commits}]" for seg in self.segments)
        return (f"segmented recording '{self.program_name}': "
                f"{len(self.segments)} segments, "
                f"{self.total_commits} commits ({chain})")


def save_segmented(segmented: SegmentedRecording) -> bytes:
    """Serialize a stitched recording.

    Each segment's Recording goes through the regular DLRN v2 container
    (CRC-framed, independently loadable); the stitch metadata rides in
    a pickled envelope behind its own magic.
    """
    envelope = {
        "program_name": segmented.program_name,
        "segments": [
            {
                "blob": save_recording(seg.recording),
                "mode": seg.mode.value,
                "start_checkpoint": seg.start_checkpoint,
                "reason": seg.reason,
            }
            for seg in segmented.segments
        ],
    }
    return _SEGMENT_MAGIC + pickle.dumps(envelope, protocol=4)


def load_segmented(blob: bytes) -> SegmentedRecording:
    """Invert :func:`save_segmented`."""
    if not blob.startswith(_SEGMENT_MAGIC):
        raise SalvageError(
            "not a segmented recording (missing DLRNSEG1 magic)")
    try:
        envelope = pickle.loads(blob[len(_SEGMENT_MAGIC):])
    except Exception as error:
        raise SalvageError(
            f"malformed segmented recording: "
            f"{type(error).__name__}: {error}") from error
    segments = [
        RecordedSegment(
            recording=load_recording(entry["blob"]),
            mode=ExecutionMode(entry["mode"]),
            start_checkpoint=entry["start_checkpoint"],
            reason=entry["reason"],
        )
        for entry in envelope["segments"]
    ]
    return SegmentedRecording(
        segments=segments,
        program_name=envelope.get("program_name", ""))


@dataclass
class StitchReport:
    """End-to-end verification of a segmented recording."""

    segments: list[dict] = field(default_factory=list)
    continuity_breaks: list[str] = field(default_factory=list)
    total_commits: int = 0

    @property
    def matches(self) -> bool:
        """Every segment deterministic and every seam continuous."""
        return (not self.continuity_breaks
                and all(seg["matches"] for seg in self.segments))

    def summary(self) -> str:
        """One line for reports and CLI output."""
        verdict = "OK" if self.matches else "DIVERGED"
        return (f"stitched replay {verdict}: {len(self.segments)} "
                f"segments, {self.total_commits} commits, "
                f"{len(self.continuity_breaks)} continuity breaks")


def _nonzero(image: dict[int, int]) -> dict[int, int]:
    return {addr: value for addr, value in image.items() if value}


def replay_stitched(segmented: SegmentedRecording,
                    max_events: int | None = None,
                    tracer=None) -> StitchReport:
    """Replay every segment in order and verify the whole chain.

    Each segment replays from its boundary checkpoint.  Intermediate
    segments are partial recordings (the machine was cut mid-program),
    so they replay with ``stop_after`` at their commit count and the
    determinism check compares the recorded prefix; the final segment
    gets the full end-of-run verification, final memory included.
    Seams are checked for architectural continuity: segment k+1 must
    start from exactly the memory image segment k committed.
    """
    if not segmented.segments:
        raise ConfigurationError("a segmented recording needs segments")
    report = StitchReport()
    for index, seg in enumerate(segmented.segments):
        last = index == len(segmented.segments) - 1
        if index:
            checkpoint = seg.start_checkpoint
            if checkpoint is None:
                report.continuity_breaks.append(
                    f"segment {index} has no start checkpoint")
            else:
                previous = segmented.segments[index - 1].recording
                if (_nonzero(checkpoint.memory_image)
                        != dict(previous.final_memory)):
                    report.continuity_breaks.append(
                        f"segment {index} does not start from segment "
                        f"{index - 1}'s committed memory")
        if not last and seg.commits == 0:
            # Nothing was committed before the cut; nothing to verify.
            report.segments.append({
                "mode": seg.mode.value, "commits": 0,
                "reason": seg.reason, "matches": True,
                "determinism": "empty segment (skipped)"})
            continue
        result = replay_execution(
            seg.recording,
            use_strata=False,
            start_checkpoint=seg.start_checkpoint,
            stop_after=0 if last else seg.commits,
            max_events=max_events,
            tracer=tracer,
        )
        report.segments.append({
            "mode": seg.mode.value,
            "commits": seg.commits,
            "reason": seg.reason,
            "matches": result.determinism.matches,
            "determinism": result.determinism.summary(),
        })
        report.total_commits += seg.commits
    return report


__all__ = [
    "RecordedSegment",
    "SegmentBoundary",
    "SegmentedRecording",
    "StitchReport",
    "build_segment_record_machine",
    "capture_boundary",
    "derive_segment_program",
    "load_segmented",
    "replay_stitched",
    "safer_mode",
    "save_segmented",
    "segment_start_checkpoint",
]
