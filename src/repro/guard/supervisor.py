"""The supervisor: run a session under watchdogs, budgets, journal and
degradation, and report what happened.

:func:`supervise_record` owns the machine's event loop (it pumps
:meth:`~repro.machine.engine.EventEngine.step` itself, like the
debugger's replay controller does) so it can interleave execution with
guard work at exactly the right moments:

* every ``poll_stride`` dispatched events: :meth:`Watchdog.poll`
  (stall classification) and the event-budget check;
* at every quiescent chunk boundary: :meth:`BudgetMeter.charge`
  (typed budget enforcement -- never mid-commit), journal flushing,
  and the Perfetto ``guard`` counter track;
* on ``log-bytes`` exhaustion: cut the segment and restart the rest in
  a safer mode (:mod:`repro.guard.degrade`); likewise on repeated
  replay-verification divergence when ``verify_segments`` is on.

Every exit path produces a :class:`SupervisionReport` -- a structured,
JSON-friendly account of the outcome (``completed``,
``degraded-completed``, ``stalled``, ``budget-exceeded``,
``deadlock``, ``verification-failed``), the stall classification and
telemetry snapshot when there is one, budget consumption, journal
state, and the resulting recording artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.core.recorder import Recording
from repro.core.replayer import verify_determinism
from repro.errors import (
    BudgetExceeded,
    ConfigurationError,
    DeadlockError,
    IntegrityError,
    ReplayDivergenceError,
    StallError,
)
from repro.guard.degrade import (
    RecordedSegment,
    SegmentedRecording,
    build_segment_record_machine,
    capture_boundary,
    replay_stitched,
    safer_mode,
    segment_start_checkpoint,
)
from repro.guard.journal import RecordingJournal, partial_recording
from repro.guard.limits import BudgetMeter, Budgets
from repro.guard.watchdog import Watchdog, WatchdogConfig
from repro.machine.system import (
    ChunkMachine,
    build_replay_machine,
    finish_recording,
)
from repro.machine.timing import MachineConfig
from repro.telemetry.tracer import NULL_TRACER

#: Commits between full budget charges (log-size accounting re-encodes
#: the logs, so charging every single boundary would be quadratic).
_CHARGE_EVERY = 8


@dataclass
class SupervisionReport:
    """Structured account of one supervised session."""

    outcome: str
    phase: str = "record"
    classification: str | None = None
    mode: str = ""
    modes: list[str] = field(default_factory=list)
    segments: list[dict] = field(default_factory=list)
    budgets: dict = field(default_factory=dict)
    stall: dict | None = None
    error: str | None = None
    wall_seconds: float = 0.0
    events: int = 0
    cycles: float = 0.0
    global_commits: int = 0
    journal: dict | None = None
    verification: dict | None = None
    recording: Recording | None = None
    segmented: SegmentedRecording | None = None

    @property
    def ok(self) -> bool:
        """True when the session produced a usable recording."""
        return self.outcome in ("completed", "degraded-completed")

    def as_dict(self) -> dict:
        """JSON-friendly form (artifacts excluded)."""
        return {
            "outcome": self.outcome,
            "phase": self.phase,
            "classification": self.classification,
            "mode": self.mode,
            "modes": list(self.modes),
            "segments": list(self.segments),
            "budgets": dict(self.budgets),
            "stall": self.stall,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "cycles": self.cycles,
            "global_commits": self.global_commits,
            "journal": self.journal,
            "verification": self.verification,
        }

    def summary(self) -> str:
        """Greppable multi-line summary for CLI output and CI."""
        lines = [
            f"outcome: {self.outcome}",
            f"phase: {self.phase}",
            f"mode: {self.mode}",
            f"commits: {self.global_commits}",
            f"events: {self.events}",
            f"wall-seconds: {self.wall_seconds:.2f}",
        ]
        if self.classification:
            lines.append(f"classification: {self.classification}")
        if self.error:
            lines.append(f"error: {self.error}")
        if len(self.modes) > 1:
            lines.append("mode-chain: " + " -> ".join(self.modes))
        for seg in self.segments:
            lines.append(
                f"segment: mode={seg['mode']} commits={seg['commits']} "
                f"reason={seg['reason']}")
        if self.journal:
            lines.append(
                f"journal: {self.journal.get('path', '?')} "
                f"flushes={self.journal.get('flushes', 0)} "
                f"flushed-commits="
                f"{self.journal.get('flushed_commits', 0)}")
        if self.verification:
            lines.append(
                f"verification: "
                f"{'ok' if self.verification.get('matches') else 'DIVERGED'}")
        return "\n".join(lines)


class _GuardObserver:
    """Machine observer feeding the watchdog and the budget meter."""

    def __init__(self, machine, watchdog: Watchdog,
                 meter: BudgetMeter, commit_hook=None) -> None:
        self.machine = machine
        self.watchdog = watchdog
        self.meter = meter
        self.boundary_dirty = False
        self.commit_hook = commit_hook

    def on_commit(self, chunk, fingerprint, count) -> None:
        self.watchdog.note_commit(count)
        self.boundary_dirty = True
        if self.commit_hook is not None:
            self.commit_hook(chunk, count)

    def on_dma(self, writes, fingerprint, count) -> None:
        self.watchdog.note_commit(count)
        self.boundary_dirty = True

    def on_squash(self, proc, victim_seqs, cause) -> None:
        self.watchdog.note_squash(proc, cause)
        self.meter.note_squash(self.machine.engine.events_processed)

    def on_interrupt(self, proc, event) -> None:
        pass


def _pump(machine, watchdog: Watchdog, meter: BudgetMeter,
          journal: RecordingJournal | None, tracer,
          max_events: int | None):
    """Drive the machine to completion under guard supervision.

    Returns the machine's RunResult; raises StallError /
    BudgetExceeded / DeadlockError (and the machine's own fatal
    errors) with the divergence context attached, exactly like
    :meth:`ChunkMachine.run` does.
    """
    engine = machine.engine
    arbiter = machine.arbiter
    observer = machine.observer
    metrics = tracer.metrics
    m_flushes = metrics.counter("guard_journal_flushes")
    budget = machine.start(max_events)
    stride = watchdog.config.poll_stride
    next_poll = engine.events_processed + stride
    last_charged = 0
    try:
        while engine.step():
            events = engine.events_processed
            if events >= next_poll:
                next_poll = events + stride
                watchdog.poll()
                if events > budget:
                    raise DeadlockError(
                        f"simulation exceeded {budget} events at cycle "
                        f"{engine.now:.0f}; the machine is likely "
                        f"livelocked")
            if (observer.boundary_dirty and not arbiter.committing
                    and not arbiter.has_reservation):
                observer.boundary_dirty = False
                commits = len(machine._fingerprints)
                if commits - last_charged >= _CHARGE_EVERY:
                    last_charged = commits
                    meter.charge(machine)
                    if tracer.enabled:
                        now = engine.now
                        tracer.counter("guard", "log_bytes", now,
                                       peak=meter.peak_log_bytes)
                        tracer.counter("guard", "queue_depth", now,
                                       depth=engine.pending())
                        tracer.counter(
                            "guard", "squash_rate", now,
                            per_1k=round(meter.squash_rate(events), 2))
                if journal is not None and journal.maybe_flush():
                    m_flushes.inc()
        machine._check_drained()
    except (ReplayDivergenceError, DeadlockError,
            IntegrityError) as error:
        error.context = machine._divergence_context()
        raise
    machine._finished = True
    return machine._collect()


def _quiescent(machine) -> bool:
    return (not machine.arbiter.committing
            and not machine.arbiter.has_reservation)


def _close_journal(journal: RecordingJournal | None,
                   machine) -> dict | None:
    """Close the journal, final-flushing when the machine is at a
    boundary (a stall can leave it mid-flight)."""
    if journal is None:
        return None
    try:
        journal.close(final_flush=_quiescent(machine))
    except ConfigurationError:
        journal.close(final_flush=False)
    return {
        "path": journal.path,
        "flushes": journal.flush_count,
        "flushed_commits": journal.flushed_commits,
        "bytes": journal.bytes_written,
    }


def _verify_segment(recording: Recording,
                    stop_after: int) -> tuple[bool, str]:
    """Replay-verify one segment; separable so tests can force
    divergence.  ``stop_after`` is 0 for a complete segment and the
    commit count for a cut one."""
    from repro.machine.system import replay_execution

    try:
        result = replay_execution(
            recording, use_strata=False, stop_after=stop_after)
    except (ReplayDivergenceError, DeadlockError,
            IntegrityError) as error:
        return False, f"{type(error).__name__}: {error}"
    return result.determinism.matches, result.determinism.summary()


def supervise_record(
    program,
    mode: ExecutionMode = ExecutionMode.ORDER_ONLY,
    machine_config: MachineConfig | None = None,
    mode_config: ModeConfig | None = None,
    *,
    budgets: Budgets | None = None,
    watchdog_config: WatchdogConfig | None = None,
    journal_path: str | None = None,
    flush_every: int = 25,
    degrade: bool = True,
    verify_segments: bool = False,
    verify_attempts: int = 2,
    stochastic_overflow_rate: float = 0.0,
    checkpoint_every: int = 0,
    max_events: int | None = None,
    tracer=None,
    schedule=None,
    commit_hook=None,
) -> SupervisionReport:
    """Record ``program`` under full supervision.

    Returns a :class:`SupervisionReport`; never hangs and never loses
    the flushed prefix.  On ``log-bytes`` exhaustion (or repeated
    verification divergence with ``verify_segments``) the session
    degrades up the mode ladder instead of failing, producing a
    :class:`~repro.guard.degrade.SegmentedRecording`.

    ``schedule`` (a :class:`~repro.core.arbiter.SchedulePlan`) perturbs
    the first segment's arbiter grant order for schedule-space
    exploration; a degraded continuation segment records naturally
    (the explorer runs with ``degrade=False``).  ``commit_hook`` --
    ``hook(chunk, count)`` -- fires at every chunk's linearization
    point, letting the explorer capture exact read/write line sets
    without displacing the guard observer.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = tracer.metrics
    m_stalls = metrics.counter("guard_stalls_detected")
    m_budget = metrics.counter("guard_budget_exceeded")
    m_segments = metrics.counter("guard_segments_recorded")
    m_degrades = metrics.counter("guard_mode_degradations")

    machine_config = machine_config or MachineConfig()
    if mode_config is not None and mode_config.mode is not mode:
        raise ConfigurationError(
            f"mode_config is for {mode_config.mode}, not {mode}")
    current_config = mode_config or preferred_config(mode)
    budgets = budgets or Budgets()

    segments: list[RecordedSegment] = []
    boundary = None
    verify_failures = 0
    modes_seen: list[str] = []
    total_wall = 0.0
    total_events = 0

    def make_report(outcome: str, **kw) -> SupervisionReport:
        report = SupervisionReport(
            outcome=outcome, phase="record",
            mode=current_config.mode.value,
            modes=modes_seen or [current_config.mode.value],
            segments=[{
                "mode": seg.mode.value, "commits": seg.commits,
                "reason": seg.reason} for seg in segments],
            wall_seconds=round(total_wall, 3),
            events=total_events,
            **kw)
        return report

    while True:
        if current_config.mode.value not in modes_seen:
            modes_seen.append(current_config.mode.value)
        if boundary is None:
            seg_machine_config = replace(
                machine_config,
                standard_chunk_size=current_config.standard_chunk_size)
            machine = ChunkMachine(
                program, seg_machine_config, current_config,
                stochastic_overflow_rate=stochastic_overflow_rate,
                checkpoint_every=checkpoint_every,
                tracer=tracer,
                schedule=schedule)
            seg_checkpoint = None
        else:
            machine, _ = build_segment_record_machine(
                program, boundary, machine_config,
                current_config.mode, mode_config=current_config,
                stochastic_overflow_rate=stochastic_overflow_rate,
                checkpoint_every=checkpoint_every,
                tracer=tracer)
            seg_checkpoint = segment_start_checkpoint(
                boundary, machine.config.num_processors)

        watchdog = Watchdog(machine, watchdog_config)
        meter = BudgetMeter(budgets)
        meter.start()
        machine.observer = _GuardObserver(machine, watchdog, meter,
                                          commit_hook=commit_hook)
        journal = None
        if journal_path is not None:
            seg_path = (journal_path if not segments
                        else f"{journal_path}.seg{len(segments)}")
            journal = RecordingJournal(seg_path, machine,
                                       flush_every=flush_every)

        try:
            result = _pump(machine, watchdog, meter, journal, tracer,
                           max_events)
        except StallError as error:
            m_stalls.inc()
            metrics.counter(
                f"guard_stall_{error.classification}").inc()
            total_wall += meter.elapsed
            total_events += machine.engine.events_processed
            return make_report(
                "stalled",
                classification=error.classification,
                stall=error.details,
                error=str(error),
                budgets=meter.consumption(machine),
                cycles=machine.engine.now,
                global_commits=len(machine._fingerprints),
                journal=_close_journal(journal, machine))
        except BudgetExceeded as error:
            m_budget.inc()
            total_wall += meter.elapsed
            total_events += machine.engine.events_processed
            next_mode = safer_mode(current_config.mode)
            if (degrade and error.budget == "log-bytes"
                    and next_mode is not None):
                # Cut here: the budget raised at a quiescent boundary,
                # so the committed prefix is a clean segment.
                segment = RecordedSegment(
                    recording=partial_recording(machine),
                    mode=current_config.mode,
                    start_checkpoint=seg_checkpoint,
                    reason=f"degraded:{error.budget}")
                new_boundary = capture_boundary(machine)
                _close_journal(journal, machine)
                segments.append(segment)
                m_segments.inc()
                m_degrades.inc()
                boundary = new_boundary
                current_config = preferred_config(next_mode)
                verify_failures = 0
                continue
            return make_report(
                "budget-exceeded",
                classification=f"budget:{error.budget}",
                error=str(error),
                budgets=meter.consumption(machine),
                cycles=machine.engine.now,
                global_commits=len(machine._fingerprints),
                journal=_close_journal(journal, machine))
        except DeadlockError as error:
            total_wall += meter.elapsed
            total_events += machine.engine.events_processed
            return make_report(
                "deadlock",
                classification="deadlock",
                stall=watchdog.snapshot(),
                error=str(error),
                budgets=meter.consumption(machine),
                cycles=machine.engine.now,
                global_commits=len(machine._fingerprints),
                journal=_close_journal(journal, machine))

        # Clean completion of this (possibly final) segment.
        total_wall += meter.elapsed
        total_events += machine.engine.events_processed
        recording = finish_recording(machine, result)
        journal_info = _close_journal(journal, machine)

        if verify_segments:
            matches, detail = _verify_segment(recording, stop_after=0)
            if not matches:
                verify_failures += 1
                next_mode = safer_mode(current_config.mode)
                if verify_failures < verify_attempts:
                    continue  # re-record the same boundary, same mode
                if degrade and next_mode is not None:
                    m_degrades.inc()
                    current_config = preferred_config(next_mode)
                    verify_failures = 0
                    continue  # same boundary, safer mode
                return make_report(
                    "verification-failed",
                    classification="replay-divergence",
                    error=detail,
                    budgets=meter.consumption(machine),
                    cycles=machine.engine.now,
                    global_commits=len(recording.fingerprints),
                    journal=journal_info)

        final_segment = RecordedSegment(
            recording=recording,
            mode=current_config.mode,
            start_checkpoint=seg_checkpoint,
            reason="completed")
        segments.append(final_segment)
        m_segments.inc()

        if len(segments) == 1:
            report = make_report(
                "completed",
                budgets=meter.consumption(machine),
                cycles=machine.engine.now,
                global_commits=len(recording.fingerprints),
                journal=journal_info)
            report.recording = recording
            if verify_segments:
                report.verification = {"matches": True}
            return report

        segmented = SegmentedRecording(
            segments=segments, program_name=program.name)
        report = make_report(
            "degraded-completed",
            budgets=meter.consumption(machine),
            cycles=machine.engine.now,
            global_commits=segmented.total_commits,
            journal=journal_info)
        report.segmented = segmented
        if verify_segments:
            stitched = replay_stitched(segmented)
            report.verification = {
                "matches": stitched.matches,
                "summary": stitched.summary(),
            }
        return report


def supervise_replay(
    recording: Recording,
    *,
    budgets: Budgets | None = None,
    watchdog_config: WatchdogConfig | None = None,
    perturbation=None,
    max_events: int | None = None,
    tracer=None,
) -> SupervisionReport:
    """Replay ``recording`` under watchdog and budget supervision.

    A replayer waiting forever on an unsatisfiable ordering-log entry
    is classified as a ``replay-stall`` instead of hanging.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = tracer.metrics
    machine = build_replay_machine(
        recording, perturbation=perturbation, use_strata=False,
        tracer=tracer)
    watchdog = Watchdog(machine, watchdog_config)
    meter = BudgetMeter(budgets or Budgets())
    meter.start()
    machine.observer = _GuardObserver(machine, watchdog, meter)

    def make_report(outcome: str, **kw) -> SupervisionReport:
        return SupervisionReport(
            outcome=outcome, phase="replay",
            mode=recording.mode_config.mode.value,
            modes=[recording.mode_config.mode.value],
            wall_seconds=round(meter.elapsed, 3),
            events=machine.engine.events_processed,
            cycles=machine.engine.now,
            global_commits=len(machine._fingerprints),
            budgets=meter.consumption(machine),
            **kw)

    try:
        result = _pump(machine, watchdog, meter, None, tracer,
                       max_events)
    except StallError as error:
        metrics.counter("guard_stalls_detected").inc()
        metrics.counter(f"guard_stall_{error.classification}").inc()
        return make_report(
            "stalled", classification=error.classification,
            stall=error.details, error=str(error))
    except BudgetExceeded as error:
        metrics.counter("guard_budget_exceeded").inc()
        return make_report(
            "budget-exceeded",
            classification=f"budget:{error.budget}",
            error=str(error))
    except (ReplayDivergenceError, DeadlockError,
            IntegrityError) as error:
        return make_report(
            "deadlock" if isinstance(error, DeadlockError)
            else "verification-failed",
            classification=("deadlock"
                            if isinstance(error, DeadlockError)
                            else "replay-divergence"),
            stall=watchdog.snapshot(),
            error=str(error))

    problems = machine.replay_source.verify_fully_consumed()
    det = verify_determinism(
        recording,
        result.fingerprints,
        result.per_proc_fingerprints,
        result.final_memory,
        result.final_thread_keys,
        ordered=not machine.use_strata,
    )
    matches = det.matches and not problems
    report = make_report("completed" if matches
                         else "verification-failed")
    report.verification = {
        "matches": matches,
        "summary": det.summary(),
        "unconsumed": problems,
    }
    if not matches:
        report.classification = "replay-divergence"
    return report


__all__ = [
    "SupervisionReport",
    "supervise_record",
    "supervise_replay",
]
