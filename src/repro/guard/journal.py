"""A write-ahead recording journal with atomic flush points.

An unsupervised record session holds its entire recording in memory
until the run completes; a crash (OOM kill, node preemption, plain
SIGKILL) loses everything.  The journal inverts that: at quiescent
chunk boundaries the supervisor appends the *complete current section
set* -- the same CRC-framed DLRN v2 frames the container format uses
(see :mod:`repro.core.serialization`) -- followed by a tiny ``flush``
marker frame, then flushes and fsyncs.  The file is therefore a valid
v2 container at every flush point:

    preamble | epoch 0 sections | FLUSH | epoch 1 sections | FLUSH
    | ... | END

A SIGKILL mid-epoch tears only the tail; :func:`load_journal` scans
the frames, discards everything past the last intact flush marker,
keeps the *newest* intact copy of each section (later epochs supersede
earlier ones), and assembles a loadable Recording of the flushed
prefix -- which then salvage-replays bit-for-bit
(:func:`repro.faults.salvage_replay` credits exactly the prefix's
commits).  The regular loaders also read a journal directly: flush
frames are skipped and the tolerant loader's first-wins rule recovers
epoch 0.

Flush points are *atomic at process-death granularity*: the epoch's
frames are buffered and written before its flush marker, so a killed
process can never leave a marker without its data (torn frames from a
concurrent power failure are caught by the per-frame CRCs and the
marker is then disregarded).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from types import SimpleNamespace

from repro.analysis.stats import RunStats
from repro.core.recorder import Recording
from repro.core.serialization import (
    _MAGIC,
    _SECTION_END,
    _SECTION_FLUSH,
    _assemble,
    _frame_bytes,
    _mode_header,
    _iter_payloads,
    _read_preamble,
    scan_frames,
    SectionDamage,
)
from repro.errors import ConfigurationError, SalvageError


def partial_recording(machine) -> Recording:
    """Snapshot a *recording* machine's logs as a prefix Recording.

    Must be called at a quiescent commit boundary (no in-flight commit,
    no continuation reservation): there, the PI entries, CS/IO/
    Interrupt/DMA logs and the fingerprint list all describe exactly
    the same committed prefix, and committed memory equals the
    architectural state.  Stratified state is deliberately dropped
    (``finish()`` may only ever run once, at end-of-run), so prefix
    snapshots replay via the ordered PI path.
    """
    recorder = machine.recorder
    if recorder is None:
        raise ConfigurationError(
            "partial_recording needs a recording-phase machine")
    if machine.arbiter.committing or machine.arbiter.has_reservation:
        raise ConfigurationError(
            "partial_recording requires a quiescent commit boundary")
    stats = RunStats()
    stats.cycles = machine.engine.now
    for proc in machine.processors:
        stats.merge_processor(proc.proc_id, proc.stats)
    stats.dma_commits = machine.stats.dma_commits
    return Recording(
        mode_config=machine.mode_config,
        machine_config=machine.config,
        program=machine.program,
        pi_log=recorder.pi_log,
        cs_logs=recorder.cs_logs,
        interrupt_logs=recorder.interrupt_logs,
        io_logs=recorder.io_logs,
        dma_log=recorder.dma_log,
        strata=[],
        stratified=False,
        fingerprints=list(machine._fingerprints),
        per_proc_fingerprints={
            proc: list(entries) for proc, entries
            in machine._per_proc_fingerprints.items()},
        final_memory=machine.memory.nonzero_words(),
        final_thread_keys={
            p.proc_id: p.committed_fingerprint_state()
            for p in machine.processors},
        stats=stats,
        memory_ordering=recorder.memory_ordering_log(),
        interval_checkpoints=machine.interval_checkpoints,
    )


class RecordingJournal:
    """Append-only on-disk journal for one supervised record session."""

    def __init__(self, path: str, machine,
                 flush_every: int = 25,
                 sync: bool = True) -> None:
        if flush_every < 1:
            raise ConfigurationError("flush_every must be >= 1")
        self.path = path
        self.machine = machine
        self.flush_every = flush_every
        self.sync = sync
        self.flush_count = 0
        self.flushed_commits = 0
        self.bytes_written = 0
        self.closed = False
        self._file = open(path, "wb")
        # _mode_header reads .mode_config/.machine_config; the machine
        # exposes the latter as .config.
        header = _mode_header(SimpleNamespace(
            mode_config=machine.mode_config,
            machine_config=machine.config))
        preamble = (_MAGIC + struct.pack(">B", 2)
                    + struct.pack(">II", len(header),
                                  zlib.crc32(header) & 0xFFFFFFFF)
                    + header)
        self._write(preamble)
        self._commit_to_disk()

    def _write(self, data: bytes) -> None:
        self._file.write(data)
        self.bytes_written += len(data)

    def _commit_to_disk(self) -> None:
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def maybe_flush(self) -> bool:
        """Flush if at least ``flush_every`` commits landed since the
        last flush.  Call only at quiescent boundaries."""
        commits = len(self.machine._fingerprints)
        if commits - self.flushed_commits < self.flush_every:
            return False
        self.flush()
        return True

    def flush(self) -> None:
        """Append one epoch: the full current section set plus a flush
        marker, then flush+fsync.  The file is a loadable container of
        the committed prefix the moment this returns."""
        if self.closed:
            raise ConfigurationError("journal is closed")
        snapshot = partial_recording(self.machine)
        for tag, proc, payload, bits in _iter_payloads(snapshot):
            self._write(_frame_bytes(tag, proc, bits, payload))
        marker = json.dumps({
            "flush": self.flush_count,
            "gcc": len(snapshot.fingerprints),
            "cycle": self.machine.engine.now,
        }, sort_keys=True).encode()
        self._write(_frame_bytes(_SECTION_FLUSH, 0, 0, marker))
        self._commit_to_disk()
        self.flush_count += 1
        self.flushed_commits = len(snapshot.fingerprints)

    def close(self, final_flush: bool = True) -> None:
        """Write a final epoch (by default) and the END frame."""
        if self.closed:
            return
        if (final_flush
                and len(self.machine._fingerprints)
                > self.flushed_commits):
            self.flush()
        self._write(_frame_bytes(_SECTION_END, 0, 0, b""))
        self._commit_to_disk()
        self._file.close()
        self.closed = True


@dataclass
class JournalInfo:
    """What :func:`load_journal` found in a journal file."""

    flushes: int
    flushed_commits: int
    flushed_cycle: float
    total_bytes: int
    tail_bytes_discarded: int
    complete: bool  # the journal was closed with an END frame
    damage: list[SectionDamage] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-friendly form for reports."""
        return {
            "flushes": self.flushes,
            "flushed_commits": self.flushed_commits,
            "flushed_cycle": self.flushed_cycle,
            "total_bytes": self.total_bytes,
            "tail_bytes_discarded": self.tail_bytes_discarded,
            "complete": self.complete,
            "damage": [d.describe() for d in self.damage],
        }


def load_journal(blob: bytes) -> tuple[Recording, JournalInfo]:
    """Recover the last fully-flushed prefix from a journal blob.

    Tolerates an arbitrarily torn tail (the SIGKILL case): everything
    past the last intact flush marker is discarded, and for each
    section the newest intact copy at or before that marker wins.
    Raises :class:`~repro.errors.SalvageError` when not even one flush
    completed -- there is no prefix to recover.
    """
    version, header, data_start, _ = _read_preamble(blob)
    if version != 2:
        raise SalvageError("recording journals are always v2 containers")
    frames, scan_damage = scan_frames(blob, data_start)
    complete = not any(
        d.reason == "missing end-of-container frame"
        for d in scan_damage)

    last_marker = None
    marker_count = 0
    for frame in frames:
        if frame.tag == _SECTION_FLUSH and frame.crc_ok:
            marker_count += 1
            last_marker = frame
    if last_marker is None:
        raise SalvageError(
            "journal has no completed flush point; no prefix to "
            "recover")
    try:
        marker = json.loads(last_marker.payload)
    except ValueError:
        marker = {}

    damage = [d for d in scan_damage
              if d.offset <= last_marker.start and d.offset >= 0]
    # Newest intact copy of each section at or before the marker wins:
    # later epochs describe strictly longer prefixes.
    newest: dict[tuple[int, int], object] = {}
    for frame in frames:
        if frame.start >= last_marker.start or not frame.crc_ok:
            continue
        if frame.tag == _SECTION_FLUSH:
            continue
        newest[(frame.tag, frame.proc)] = frame
    ordered = sorted(newest.values(), key=lambda f: f.start)
    recording = _assemble(header, ordered, damage, tolerant=True)

    info = JournalInfo(
        flushes=marker_count,
        flushed_commits=int(marker.get(
            "gcc", len(recording.fingerprints))),
        flushed_cycle=float(marker.get("cycle", 0.0)),
        total_bytes=len(blob),
        tail_bytes_discarded=max(0, len(blob) - last_marker.end),
        complete=complete,
        damage=damage,
    )
    return recording, info


def load_journal_file(path: str) -> tuple[Recording, JournalInfo]:
    """:func:`load_journal` over a file path."""
    with open(path, "rb") as handle:
        return load_journal(handle.read())


__all__ = [
    "JournalInfo",
    "RecordingJournal",
    "load_journal",
    "load_journal_file",
    "partial_recording",
]
