"""Forward-progress watchdogs for record and replay sessions.

A chunk machine can stop making progress in several distinct ways, and
distinguishing them is most of the diagnosis:

* **gcc-stagnation** -- the global commit count stops advancing while
  the event queue keeps churning (a wedged commit pipeline).
* **token-starvation** -- PicoLog's commit token never reaches a
  processor with a pending request (the token is in flight forever or
  the holder can never be granted), so requests starve while token
  wakeups keep the engine busy.
* **squash-livelock** -- two or more processors keep squashing each
  other's chunks (ping-pong collision cycles): commits flow, squash
  bandwidth is saturated, and no squashed processor ever retires its
  work.
* **lock-starvation / livelock** -- chunks commit and the machine looks
  healthy, but no thread's *architectural* state advances (the classic
  case: every thread spinning on a lock that will never open; spin
  chunks are read-only and commit happily forever).
* **replay-stall** -- a replayer is waiting on a log entry that can
  never be satisfied (cursor frozen with requests pending).

The watchdog measures progress in dispatched *events*, not wall-clock,
so detection is deterministic: the same run stalls at the same event
count every time.  On detection it raises
:class:`~repro.errors.StallError` carrying the classification and a
telemetry snapshot, instead of letting the session hang.

:class:`WatchdogTimer` is the thread-level counterpart used by the
runner: a deadline that works on worker threads and non-unix platforms
where SIGALRM is unavailable.
"""

from __future__ import annotations

import ctypes
import threading
from dataclasses import dataclass

from repro.core.arbiter import PIReplayPolicy, RoundRobinPolicy
from repro.errors import StallError


@dataclass(frozen=True)
class WatchdogConfig:
    """Detection thresholds, all in dispatched engine events.

    ``no_commit_events``: events without a single global commit before
    the session is declared stalled.  ``no_progress_events``: events
    without any thread's architectural state changing (commits may
    still be flowing -- that is exactly a livelock).  A squash livelock
    is declared when ``squash_livelock_threshold`` ping-pong squashes
    land within the trailing ``squash_window_events`` events.
    """

    no_commit_events: int = 60_000
    no_progress_events: int = 240_000
    squash_window_events: int = 40_000
    squash_livelock_threshold: int = 12
    poll_stride: int = 512


def progress_key(proc) -> tuple:
    """Architectural-progress digest of a processor's *committed*
    thread state.

    Uses the oldest uncommitted chunk's start state (the committed
    boundary) so speculative wiggle does not count as progress, and
    excludes the retired counter, the accumulator and the handler
    fields: a spinning thread retires instructions forever and an
    interrupt storm executes handlers forever, yet neither advances the
    program.
    """
    if proc.outstanding:
        state = proc.outstanding[0].start_state
    else:
        state = proc.spec_state
    return (state.op_index, state.finished, state.compute_remaining,
            state.stage, state.barrier_target)


def _blocked_at_lock(proc) -> bool:
    """True when the processor's committed state sits at a LOCK op."""
    from repro.machine.program import OpKind

    if proc.outstanding:
        state = proc.outstanding[0].start_state
    else:
        state = proc.spec_state
    if state.finished or state.in_handler:
        return False
    if state.op_index >= len(proc.ops):
        return False
    return proc.ops[state.op_index].kind is OpKind.LOCK


class Watchdog:
    """Stall detector over one :class:`ChunkMachine`.

    The supervisor feeds it commits and squashes from the machine
    observer (cheap per-event notes) and calls :meth:`poll` every
    ``poll_stride`` dispatched events; :meth:`poll` classifies and
    raises when a threshold is crossed.
    """

    def __init__(self, machine, config: WatchdogConfig | None = None,
                 phase: str | None = None) -> None:
        self.machine = machine
        self.config = config or WatchdogConfig()
        self.phase = phase or ("replay" if machine.is_replay
                               else "record")
        events = machine.engine.events_processed
        self.commit_count = 0
        self._events_at_last_commit = events
        self._progress: dict[int, tuple] = {
            proc.proc_id: progress_key(proc)
            for proc in machine.processors}
        self._events_at_progress: dict[int, int] = {
            proc.proc_id: events for proc in machine.processors}
        # (events_processed, victim_proc, aggressor_proc | None)
        self._squashes: list[tuple[int, int, int | None]] = []
        self.squash_count = 0

    # -- observer-side notes ------------------------------------------

    def note_commit(self, count: int) -> None:
        """A global commit finalized (GCC = ``count``)."""
        self.commit_count = count
        self._events_at_last_commit = (
            self.machine.engine.events_processed)

    def note_squash(self, victim_proc: int, cause: str) -> None:
        """A squash happened; ``cause`` is the machine's cause string
        (``collision:pN``, ``collision:dma``, ``interrupt``)."""
        self.squash_count += 1
        aggressor: int | None = None
        if cause.startswith("collision:p"):
            try:
                aggressor = int(cause[len("collision:p"):])
            except ValueError:
                aggressor = None
        self._squashes.append(
            (self.machine.engine.events_processed, victim_proc,
             aggressor))

    # -- polling ------------------------------------------------------

    def _refresh_progress(self, events: int) -> None:
        for proc in self.machine.processors:
            key = progress_key(proc)
            if key != self._progress[proc.proc_id]:
                self._progress[proc.proc_id] = key
                self._events_at_progress[proc.proc_id] = events

    def _squash_window(self, events: int) -> list[tuple[int, int,
                                                        int | None]]:
        horizon = events - self.config.squash_window_events
        keep = 0
        while (keep < len(self._squashes)
               and self._squashes[keep][0] <= horizon):
            keep += 1
        if keep:
            del self._squashes[:keep]
        return self._squashes

    def _ping_pong_procs(self, window, events: int) -> set[int]:
        """Processors that are both squash victim and squash aggressor
        within the window *and* architecturally stagnant across it (the
        ping-pong livelock signature).  Contended-but-progressing
        workloads squash each other constantly too; the difference is
        that their committed state keeps advancing."""
        victims = {victim for _, victim, _ in window}
        aggressors = {agg for _, _, agg in window if agg is not None}
        horizon = self.config.squash_window_events
        return {
            proc for proc in victims & aggressors
            if events - self._events_at_progress.get(proc, events)
            >= horizon}

    def snapshot(self, events: int | None = None) -> dict:
        """Telemetry context attached to every :class:`StallError`."""
        machine = self.machine
        if events is None:
            events = machine.engine.events_processed
        arbiter = machine.arbiter
        details = {
            "phase": self.phase,
            "cycle": machine.engine.now,
            "events": events,
            "queue_depth": machine.engine.pending(),
            "global_commits": self.commit_count,
            "events_since_commit": events - self._events_at_last_commit,
            "committed_counts": {
                p.proc_id: p.committed_count
                for p in machine.processors},
            "pending_requests": [c.processor for c in arbiter.pending],
            "committing": [c.processor for c in arbiter.committing],
            "grant_count": arbiter.grant_count,
            "squashes_in_window": len(self._squashes),
            "total_squashes": self.squash_count,
            "stagnant_procs": sorted(
                proc_id for proc_id, since
                in self._events_at_progress.items()
                if (events - since >= self.config.no_progress_events
                    and machine.processors[proc_id]
                    .has_uncommitted_work())),
            "op_index": {
                p.proc_id: progress_key(p)[0]
                for p in machine.processors},
        }
        policy = arbiter.policy
        if isinstance(policy, RoundRobinPolicy):
            details["token_pointer"] = policy.pointer
            details["token_since"] = policy.pointer_since
        if isinstance(policy, PIReplayPolicy):
            details["pi_cursor"] = policy.cursor
            details["pi_entries"] = len(policy.entries)
        return details

    def _stall(self, classification: str, reason: str,
               events: int) -> StallError:
        details = self.snapshot(events)
        details["classification"] = classification
        return StallError(
            f"{self.phase} session stalled ({classification}): {reason}",
            classification=classification, details=details)

    def poll(self) -> None:
        """Evaluate every detector; raise :class:`StallError` on the
        first stall found.  Deterministic: depends only on dispatched
        events and machine state, never on wall-clock."""
        machine = self.machine
        config = self.config
        events = machine.engine.events_processed
        self._refresh_progress(events)

        window = self._squash_window(events)
        if len(window) >= config.squash_livelock_threshold:
            ping_pong = self._ping_pong_procs(window, events)
            if len(ping_pong) >= 2:
                raise self._stall(
                    "squash-livelock",
                    f"{len(window)} squashes in the last "
                    f"{config.squash_window_events} events with "
                    f"processors {sorted(ping_pong)} squashing each "
                    f"other and making no architectural progress",
                    events)

        since_commit = events - self._events_at_last_commit
        if since_commit >= config.no_commit_events:
            arbiter = machine.arbiter
            policy = arbiter.policy
            if machine.is_replay:
                raise self._stall(
                    "replay-stall",
                    f"no commit for {since_commit} events while the "
                    f"replayer waits on its ordering log", events)
            if (isinstance(policy, RoundRobinPolicy)
                    and arbiter.pending and not arbiter.committing):
                raise self._stall(
                    "token-starvation",
                    f"no commit for {since_commit} events with "
                    f"requests pending and the commit token parked at "
                    f"processor {policy.pointer}", events)
            raise self._stall(
                "gcc-stagnation",
                f"no commit for {since_commit} events", events)

        active = [p for p in machine.processors
                  if p.has_uncommitted_work()]
        if active and all(
                events - self._events_at_progress[p.proc_id]
                >= config.no_progress_events
                for p in active):
            since_progress = min(
                events - self._events_at_progress[p.proc_id]
                for p in active)
            if all(_blocked_at_lock(p) for p in active):
                raise self._stall(
                    "lock-starvation",
                    f"every active thread has spun at a LOCK without "
                    f"architectural progress for {since_progress} "
                    f"events", events)
            raise self._stall(
                "livelock",
                f"commits are flowing but no thread's architectural "
                f"state has advanced for {since_progress} events",
                events)


class WatchdogTimer:
    """Deadline enforcement for worker *threads* (the runner satellite).

    SIGALRM only works on the main thread of a unix process.  This
    timer instead arms a daemon :class:`threading.Timer` that, on
    expiry, asynchronously raises ``exception_type`` in the target
    thread via ``PyThreadState_SetAsyncExc`` -- which interrupts
    compute-bound Python code on any platform.  (A thread blocked in a
    C call, e.g. ``time.sleep``, only sees the exception when it
    returns to the interpreter; the pool-level deadline sweep is the
    backstop for those.)
    """

    def __init__(self, seconds: float, exception_type: type,
                 thread: threading.Thread | None = None) -> None:
        self.seconds = seconds
        self.exception_type = exception_type
        self._thread = thread or threading.current_thread()
        self._timer: threading.Timer | None = None
        self.fired = False

    def _fire(self) -> None:
        self.fired = True
        thread_id = self._thread.ident
        if thread_id is None or not self._thread.is_alive():
            return
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id),
            ctypes.py_object(self.exception_type))

    def start(self) -> "WatchdogTimer":
        """Arm the deadline."""
        self._timer = threading.Timer(self.seconds, self._fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def cancel(self) -> None:
        """Disarm (work finished in time)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __enter__(self) -> "WatchdogTimer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.cancel()


__all__ = [
    "Watchdog",
    "WatchdogConfig",
    "WatchdogTimer",
    "progress_key",
]
