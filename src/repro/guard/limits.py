"""Enforceable resource budgets for supervised sessions.

A record/replay session consumes four resources that can run away on a
pathological workload: wall-clock time (livelock), log space (a squash
storm or truncation storm bloats the CS log), event-queue depth (an
interrupt/DMA flood), and squash bandwidth (ping-pong collisions that
commit nothing).  :class:`Budgets` declares ceilings for each;
:class:`BudgetMeter` measures consumption against them and raises
:class:`~repro.errors.BudgetExceeded` -- but only when the supervisor
polls it at a *chunk boundary*, never mid-commit, so the machine is
always left quiescent and checkpointable (the degradation layer
depends on that).

Log-byte accounting attributes the shared PI log to the committing
processor (each entry is ``pi_entry_bits`` wide) and adds each
processor's own CS/Interrupt/IO streams, mirroring how the DLRN
container sections are framed per processor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import BudgetExceeded


@dataclass(frozen=True)
class Budgets:
    """Resource ceilings for one supervised session.

    ``None`` disables a budget.  ``max_squash_rate`` is squashes per
    1000 dispatched events, measured over a sliding window of
    ``squash_window_events`` events (short windows would flag the
    normal startup collision burst).
    """

    deadline_seconds: float | None = None
    max_log_bytes_per_proc: int | None = None
    max_event_queue_depth: int | None = None
    max_squash_rate: float | None = None
    squash_window_events: int = 50_000

    @property
    def enabled(self) -> bool:
        """True when at least one budget is set."""
        return any(limit is not None for limit in (
            self.deadline_seconds, self.max_log_bytes_per_proc,
            self.max_event_queue_depth, self.max_squash_rate))


def proc_log_bytes(recorder) -> dict[int, int]:
    """Per-processor recording-log footprint in bytes.

    Charges each processor its PI entries plus its own CS, Interrupt
    and I/O sections (DMA is charged to the DMA pseudo-processor).
    """
    config = recorder.machine_config
    pi_bits = {proc: 0 for proc in range(config.num_processors)}
    if recorder.mode_config.mode.has_pi_log:
        for proc in recorder.pi_log.entries:
            if proc in pi_bits:
                pi_bits[proc] += recorder.pi_log.entry_bits
    totals: dict[int, int] = {}
    for proc in range(config.num_processors):
        bits = pi_bits[proc]
        bits += recorder.cs_logs[proc].size_bits
        _, interrupt_bits = recorder.interrupt_logs[proc].encode()
        bits += interrupt_bits
        _, io_bits = recorder.io_logs[proc].encode()
        bits += io_bits
        totals[proc] = (bits + 7) // 8
    _, dma_bits = recorder.dma_log.encode()
    totals[config.dma_proc_id] = (dma_bits + 7) // 8
    return totals


class BudgetMeter:
    """Measures a session's resource consumption against its budgets.

    The supervisor calls :meth:`note_squash` from the machine observer
    (cheap, every squash) and :meth:`charge` at quiescent chunk
    boundaries (does the expensive log-size accounting and raises).
    """

    def __init__(self, budgets: Budgets,
                 clock=time.monotonic) -> None:
        self.budgets = budgets
        self._clock = clock
        self._start: float | None = None
        self._squashes: list[int] = []  # events_processed at each squash
        self.peak_queue_depth = 0
        self.peak_log_bytes = 0
        self.squash_count = 0

    def start(self) -> None:
        """Start the wall-clock deadline."""
        self._start = self._clock()

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._start is None:
            return 0.0
        return self._clock() - self._start

    def note_squash(self, events_processed: int) -> None:
        """Record one squash at the given engine event count."""
        self.squash_count += 1
        self._squashes.append(events_processed)

    def squash_rate(self, events_processed: int) -> float:
        """Squashes per 1000 events over the sliding window."""
        window = self.budgets.squash_window_events
        horizon = events_processed - window
        # Drop history older than the window (amortized O(1)).
        keep = 0
        while (keep < len(self._squashes)
               and self._squashes[keep] <= horizon):
            keep += 1
        if keep:
            del self._squashes[:keep]
        span = min(window, max(events_processed, 1))
        return len(self._squashes) * 1000.0 / span

    def charge(self, machine) -> None:
        """Check every budget; raise :class:`BudgetExceeded` on the
        first one crossed.  Call only at quiescent chunk boundaries."""
        budgets = self.budgets
        events = machine.engine.events_processed
        depth = machine.engine.pending()
        self.peak_queue_depth = max(self.peak_queue_depth, depth)
        if (budgets.deadline_seconds is not None
                and self.elapsed > budgets.deadline_seconds):
            raise BudgetExceeded(
                f"wall-clock deadline of {budgets.deadline_seconds:.1f}s "
                f"exceeded ({self.elapsed:.1f}s elapsed at cycle "
                f"{machine.engine.now:.0f})",
                budget="deadline", limit=budgets.deadline_seconds,
                observed=self.elapsed)
        if (budgets.max_event_queue_depth is not None
                and depth > budgets.max_event_queue_depth):
            raise BudgetExceeded(
                f"event queue depth {depth} exceeds the budget of "
                f"{budgets.max_event_queue_depth}",
                budget="event-queue",
                limit=budgets.max_event_queue_depth, observed=depth)
        if budgets.max_squash_rate is not None:
            rate = self.squash_rate(events)
            if rate > budgets.max_squash_rate:
                raise BudgetExceeded(
                    f"squash rate {rate:.1f}/1k events exceeds the "
                    f"budget of {budgets.max_squash_rate:.1f}",
                    budget="squash-rate",
                    limit=budgets.max_squash_rate, observed=rate)
        if (budgets.max_log_bytes_per_proc is not None
                and machine.recorder is not None):
            per_proc = proc_log_bytes(machine.recorder)
            worst_proc, worst = max(
                per_proc.items(), key=lambda item: (item[1], -item[0]))
            self.peak_log_bytes = max(self.peak_log_bytes, worst)
            if worst > budgets.max_log_bytes_per_proc:
                raise BudgetExceeded(
                    f"processor {worst_proc} logged {worst} bytes, "
                    f"over the {budgets.max_log_bytes_per_proc}-byte "
                    f"budget",
                    budget="log-bytes",
                    limit=budgets.max_log_bytes_per_proc,
                    observed=worst, proc=worst_proc)

    def consumption(self, machine=None) -> dict:
        """JSON-friendly snapshot of consumption vs. budgets."""
        snapshot = {
            "wall_seconds": round(self.elapsed, 3),
            "deadline_seconds": self.budgets.deadline_seconds,
            "peak_queue_depth": self.peak_queue_depth,
            "max_event_queue_depth": self.budgets.max_event_queue_depth,
            "squashes": self.squash_count,
            "max_squash_rate": self.budgets.max_squash_rate,
            "peak_log_bytes": self.peak_log_bytes,
            "max_log_bytes_per_proc": (
                self.budgets.max_log_bytes_per_proc),
        }
        if machine is not None and machine.recorder is not None:
            per_proc = proc_log_bytes(machine.recorder)
            snapshot["log_bytes_per_proc"] = {
                str(proc): size for proc, size in sorted(per_proc.items())}
            snapshot["peak_log_bytes"] = max(
                self.peak_log_bytes, max(per_proc.values(), default=0))
        return snapshot


__all__ = ["BudgetMeter", "Budgets", "proc_log_bytes"]
