"""repro.guard -- supervised execution for record/replay sessions.

DeLorean's value proposition is that a recording is always there when
you need it, yet an unsupervised session offers no such guarantee: an
arbitration livelock spins forever, a pathological workload blows the
logs past memory, and a crash mid-record loses everything.  This
package supervises live sessions so that every one of them either
*completes*, *degrades gracefully to a safer mode*, or *fails fast
with a classified diagnosis and a salvageable on-disk prefix*:

* :mod:`repro.guard.watchdog` -- forward-progress monitors that
  classify stalls (GCC stagnation, commit-token starvation, squash
  livelock, replayer stalls) instead of hanging.
* :mod:`repro.guard.limits` -- enforceable resource budgets
  (wall-clock deadline, log bytes per processor, event-queue depth,
  squash rate) raised as typed errors at chunk boundaries only.
* :mod:`repro.guard.journal` -- a write-ahead recording journal with
  atomic flush points; a SIGKILL mid-record leaves a loadable,
  salvage-replayable prefix.
* :mod:`repro.guard.degrade` -- graceful degradation: checkpoint and
  restart the remaining segment in a safer mode (PicoLog -> OrderOnly
  -> Order&Size), stitching the segments into one replayable artifact.
* :mod:`repro.guard.supervisor` -- runs a session under all of the
  above and reports a structured :class:`SupervisionReport`.
"""

from repro.guard.degrade import (
    SegmentedRecording,
    RecordedSegment,
    load_segmented,
    replay_stitched,
    safer_mode,
    save_segmented,
)
from repro.guard.journal import (
    JournalInfo,
    RecordingJournal,
    load_journal,
    partial_recording,
)
from repro.guard.limits import BudgetMeter, Budgets
from repro.guard.supervisor import (
    SupervisionReport,
    supervise_record,
    supervise_replay,
)
from repro.guard.watchdog import Watchdog, WatchdogConfig, WatchdogTimer

__all__ = [
    "BudgetMeter",
    "Budgets",
    "JournalInfo",
    "RecordedSegment",
    "RecordingJournal",
    "SegmentedRecording",
    "SupervisionReport",
    "Watchdog",
    "WatchdogConfig",
    "WatchdogTimer",
    "load_journal",
    "load_segmented",
    "partial_recording",
    "replay_stitched",
    "safer_mode",
    "save_segmented",
    "supervise_record",
    "supervise_replay",
]
