"""Comparing two recordings: where did executions diverge?

A standard debugging move with a replayer at hand: record the failing
run and a passing run of the same program, then look for the first
point where their interleavings or their architectural effects differ.
These helpers do that comparison on the verification fingerprints two
recordings carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # avoid a circular import (recorder uses analysis)
    from repro.core.recorder import Recording


@dataclass
class RecordingDiff:
    """Structured outcome of comparing two recordings."""

    identical: bool
    first_divergence: int | None = None
    divergence_kind: str = ""
    detail: str = ""
    memory_differences: list[tuple[int, int, int]] = field(
        default_factory=list)
    commit_counts: tuple[int, int] = (0, 0)

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        if self.identical:
            return (f"identical executions: {self.commit_counts[0]} "
                    f"commits, same interleaving, same final memory")
        lines = [f"executions diverge at commit "
                 f"#{self.first_divergence}" if self.first_divergence
                 is not None else "executions diverge"]
        lines.append(f"  kind: {self.divergence_kind}")
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.memory_differences:
            shown = ", ".join(
                f"@{address:#x}: {left} vs {right}"
                for address, left, right in
                self.memory_differences[:4])
            lines.append(f"  final-memory differences "
                         f"({len(self.memory_differences)}): {shown}")
        return "\n".join(lines)


def _describe(fingerprint) -> str:
    if fingerprint[0] == "dma":
        return f"DMA burst #{fingerprint[1]}"
    proc, seq, _piece, is_handler, instructions, _w, _e = fingerprint
    kind = "handler" if is_handler else "chunk"
    return f"cpu{proc} {kind} seq={seq} ({instructions} instructions)"


def diff_recordings(left: "Recording", right: "Recording") -> RecordingDiff:
    """Compare two recordings of (nominally) the same program.

    The comparison walks the global commit sequences and reports the
    first position where the committing processor, the chunk contents,
    or (failing those) the final memory differ.
    """
    if left.machine_config.num_processors != \
            right.machine_config.num_processors:
        raise ConfigurationError(
            "recordings come from differently-sized machines")
    counts = (len(left.fingerprints), len(right.fingerprints))
    for index, (a, b) in enumerate(zip(left.fingerprints,
                                       right.fingerprints)):
        if a == b:
            continue
        if a[0] != b[0] or (a[0] != "dma" and a[1] != b[1]):
            kind = "interleaving"
            detail = (f"left committed {_describe(a)}; right "
                      f"committed {_describe(b)}")
        elif a[0] != "dma" and a[4] != b[4]:
            kind = "chunk-size"
            detail = (f"{_describe(a)} vs {_describe(b)}: same "
                      f"committer, different instruction counts")
        else:
            kind = "chunk-contents"
            detail = (f"{_describe(a)}: same committer and size, "
                      f"different writes or end state")
        return RecordingDiff(
            identical=False,
            first_divergence=index,
            divergence_kind=kind,
            detail=detail,
            memory_differences=_memory_diff(left, right),
            commit_counts=counts,
        )
    if counts[0] != counts[1]:
        return RecordingDiff(
            identical=False,
            first_divergence=min(counts),
            divergence_kind="length",
            detail=(f"common prefix of {min(counts)} commits; lengths "
                    f"{counts[0]} vs {counts[1]}"),
            memory_differences=_memory_diff(left, right),
            commit_counts=counts,
        )
    memory = _memory_diff(left, right)
    if memory:
        return RecordingDiff(
            identical=False,
            first_divergence=None,
            divergence_kind="memory",
            detail="same commit sequence but different final memory",
            memory_differences=memory,
            commit_counts=counts,
        )
    return RecordingDiff(identical=True, commit_counts=counts)


def _memory_diff(left: "Recording",
                 right: "Recording") -> list[tuple[int, int, int]]:
    differences = []
    addresses = set(left.final_memory) | set(right.final_memory)
    for address in sorted(addresses):
        a = left.final_memory.get(address, 0)
        b = right.final_memory.get(address, 0)
        if a != b:
            differences.append((address, a, b))
    return differences


def interleaving_prefix_length(left: "Recording",
                               right: "Recording") -> int:
    """Length of the common committing-processor prefix (ignoring
    chunk contents) -- a coarse similarity measure between runs."""
    def committer(fingerprint):
        return ("dma" if fingerprint[0] == "dma"
                else fingerprint[0])
    prefix = 0
    for a, b in zip(left.fingerprints, right.fingerprints):
        if committer(a) != committer(b):
            break
        prefix += 1
    return prefix
