"""Run statistics, reporting, charts and recording inspection."""

from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.compare import RecordingDiff, diff_recordings
from repro.analysis.races import (
    ContendedLine,
    RaceReport,
    find_contended_lines,
    replay_window_for,
)
from repro.analysis.report import format_table, geometric_mean
from repro.analysis.stats import RunStats

__all__ = [
    "RunStats",
    "format_table",
    "geometric_mean",
    "bar_chart",
    "grouped_bar_chart",
    "RecordingDiff",
    "diff_recordings",
    "ContendedLine",
    "RaceReport",
    "find_contended_lines",
    "replay_window_for",
]
