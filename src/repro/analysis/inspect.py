"""Human-readable views of a recording (used by the CLI).

A recording is a dense binary artifact; these helpers render what a
debugging engineer actually wants to see before replaying: what was
recorded, how big each log is, how the commit interleaving looks, and
where the interval checkpoints sit.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.recorder import Recording


def describe_recording(recording: Recording) -> str:
    """One-screen summary of a recording."""
    stats = recording.stats
    ordering = recording.memory_ordering
    lines = [
        f"DeLorean recording -- mode {recording.mode_config.mode.value}",
        f"  machine: {recording.machine_config.num_processors} "
        f"processors, {recording.mode_config.standard_chunk_size}"
        f"-instruction chunks",
        f"  committed: {stats.total_committed_chunks} chunks / "
        f"{stats.total_committed_instructions} instructions in "
        f"{stats.cycles:,.0f} cycles (IPC {stats.ipc:.2f})",
        f"  squashes: {stats.total_squashes} "
        f"({100 * stats.wasted_instruction_fraction:.1f}% of executed "
        f"instructions wasted)",
        f"  truncations: {stats.overflow_truncations} overflow, "
        f"{stats.collision_truncations} collision, "
        f"{stats.io_truncations} I/O or special",
        f"  handlers: {stats.handler_chunks} chunks; DMA commits: "
        f"{stats.dma_commits}",
    ]
    if ordering is not None:
        total = recording.total_committed_instructions
        lines.append(
            f"  memory-ordering log: PI {ordering.pi_size_bits(False)} "
            f"bits ({len(recording.pi_log)} entries), CS "
            f"{ordering.cs_size_bits(False)} bits "
            f"({sum(len(l) for l in recording.cs_logs.values())} "
            f"entries)")
        lines.append(
            f"    = {ordering.bits_per_proc_per_kiloinst(total, False):.2f}"
            f" bits/proc/kilo-instruction "
            f"({ordering.bits_per_proc_per_kiloinst(total, True):.2f} "
            f"compressed)")
        if ordering.stratified_pi_bits is not None:
            lines.append(
                f"    stratified PI log: {ordering.stratified_pi_bits} "
                f"bits ({len(recording.strata)} strata)")
    input_entries = (
        sum(len(l) for l in recording.interrupt_logs.values()),
        sum(len(l) for l in recording.io_logs.values()),
        len(recording.dma_log),
    )
    lines.append(
        f"  input logs: {input_entries[0]} interrupts, "
        f"{input_entries[1]} I/O values, {input_entries[2]} DMA bursts")
    checkpoints = recording.interval_checkpoints
    if checkpoints is not None and len(checkpoints):
        positions = ", ".join(
            str(c.commit_index) for c in checkpoints)
        lines.append(f"  interval checkpoints at commits: {positions}")
    return "\n".join(lines)


def commit_timeline(recording: Recording, limit: int = 40) -> str:
    """The first ``limit`` commits, one row each."""
    rows = []
    for index, fingerprint in enumerate(
            recording.fingerprints[:limit]):
        if fingerprint[0] == "dma":
            rows.append([index, "DMA", fingerprint[1], "-",
                         len(fingerprint[2]), "dma burst"])
            continue
        proc, seq, _piece, is_handler, instructions, writes, _end = \
            fingerprint
        kind = "handler" if is_handler else "chunk"
        rows.append([index, f"cpu{proc}", seq, instructions,
                     len(writes), kind])
    table = format_table(
        ["#", "committer", "seq", "instructions", "lines written",
         "kind"],
        rows, title="Commit timeline")
    remaining = len(recording.fingerprints) - limit
    if remaining > 0:
        table += f"\n... {remaining} more commits"
    return table


def interleaving_strip(recording: Recording, width: int = 64) -> str:
    """The commit interleaving as character strips (one symbol per
    commit: the committing processor's hex digit, or ``*`` for DMA)."""
    symbols = []
    for fingerprint in recording.fingerprints:
        if fingerprint[0] == "dma":
            symbols.append("*")
        else:
            symbols.append(format(fingerprint[0], "x"))
    lines = ["Commit interleaving (one symbol per commit; * = DMA):"]
    for start in range(0, len(symbols), width):
        lines.append(f"  {start:>6}  "
                     + "".join(symbols[start:start + width]))
    return "\n".join(lines)


def per_processor_summary(recording: Recording) -> str:
    """Per-processor commit counts and instruction totals."""
    rows = []
    for proc, entries in sorted(
            recording.per_proc_fingerprints.items()):
        if proc == recording.machine_config.dma_proc_id:
            if entries:
                rows.append(["DMA", len(entries), "-", "-"])
            continue
        if not entries:
            continue
        instructions = sum(f[4] for f in entries)
        handlers = sum(1 for f in entries if f[3])
        rows.append([f"cpu{proc}", len(entries), instructions,
                     handlers])
    return format_table(
        ["processor", "chunks", "instructions", "handler chunks"],
        rows, title="Per-processor commits")
