"""Text rendering helpers shared by the benchmark harness.

Benches print the same rows/series the paper reports; these helpers
keep the formatting consistent (fixed-width tables, geometric means for
the SPLASH-2 aggregate, as in "SP2-G.M.").
"""

from __future__ import annotations

import math
from typing import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; ignores non-positive values defensively."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width text table."""
    columns = len(headers)
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)
