"""Mine a recording for cross-writer contention.

The paper's introduction motivates deterministic replay with the
debugging loop: reproduce the failing interleaving, then find the
racing accesses.  The replayer solves the first half; this module is a
tool for the second.  It walks the recording's commit fingerprints
(which carry each chunk's write set) and reports every memory line
written by more than one agent -- two processors, or a processor and
the DMA engine -- together with the *closest* pair of cross-writer
commits, measured in commit-order distance.

Distance matters: a write pair one commit apart is the kind of tight
race whose outcome flips with timing (the diff example's divergences);
a pair thousands of commits apart is ordinary producer/consumer
sharing.  Sorting contended lines by their minimum cross-writer
distance puts the suspicious ones on top.

Only *write* sets are in the fingerprints, so the report covers
write-write contention.  Read-write races surface indirectly: the
racing read lives in a chunk that either squashed during recording
(visible in ``RunStats``) or consumed the contended line -- replay the
neighbourhood with :meth:`~repro.core.delorean.DeLoreanSystem.\
replay_interval` and watch the reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.report import format_table

if TYPE_CHECKING:  # break the recorder <-> analysis import cycle
    from repro.core.recorder import Recording

#: Writer label used for DMA bursts in :class:`ContendedLine`.
DMA_WRITER = "dma"


@dataclass(frozen=True)
class WriteEvent:
    """One write to a contended line, in global commit order."""

    commit_index: int
    writer: int | str  # processor id, or :data:`DMA_WRITER`
    value: int


@dataclass
class ContendedLine:
    """A memory line written by more than one agent."""

    address: int
    events: list[WriteEvent]
    min_distance: int
    closest_pair: tuple[WriteEvent, WriteEvent]

    @property
    def writers(self) -> tuple:
        """The distinct writers, in first-write order."""
        seen: list = []
        for event in self.events:
            if event.writer not in seen:
                seen.append(event.writer)
        return tuple(seen)

    @property
    def is_tight(self) -> bool:
        """Adjacent-commit cross-writer pair: timing-sensitive."""
        return self.min_distance == 1


@dataclass
class RaceReport:
    """Outcome of :func:`find_contended_lines`."""

    lines: list[ContendedLine] = field(default_factory=list)
    total_commits: int = 0
    total_lines_written: int = 0

    @property
    def tight(self) -> list[ContendedLine]:
        """The contended lines whose closest cross-writer pair is
        adjacent in commit order."""
        return [line for line in self.lines if line.is_tight]

    def summary(self, top: int = 10) -> str:
        """Human-readable table of the most suspicious lines."""
        if not self.lines:
            return (f"no cross-writer contention: "
                    f"{self.total_lines_written} lines written, each "
                    f"by a single agent")
        top = max(0, top)
        rows = []
        for line in self.lines[:top]:
            first, second = line.closest_pair
            writers = "/".join(
                w if isinstance(w, str) else f"cpu{w}"
                for w in line.writers)
            rows.append([
                f"{line.address:#x}",
                writers,
                len(line.events),
                line.min_distance,
                f"#{first.commit_index} vs #{second.commit_index}",
            ])
        table = format_table(
            ["address", "writers", "writes", "min distance",
             "closest pair"],
            rows,
            title=f"Cross-writer contention "
                  f"({len(self.lines)} lines, "
                  f"{len(self.tight)} with adjacent-commit pairs)")
        remaining = len(self.lines) - top
        if remaining > 0:
            table += f"\n... {remaining} more contended lines"
        return table


def _write_events(recording: Recording) -> dict[int, list[WriteEvent]]:
    """address -> its writes, in global commit order."""
    events: dict[int, list[WriteEvent]] = {}
    for index, fingerprint in enumerate(recording.fingerprints):
        if fingerprint[0] == "dma":
            writer: int | str = DMA_WRITER
            writes = fingerprint[2]
        else:
            writer = fingerprint[0]
            writes = fingerprint[5]
        for address, value in writes:
            events.setdefault(address, []).append(
                WriteEvent(commit_index=index, writer=writer,
                           value=value))
    return events


def _closest_cross_pair(events: list[WriteEvent]) -> \
        tuple[int, tuple[WriteEvent, WriteEvent]] | None:
    """The minimum commit distance between writes by *different*
    writers, or None when a single agent owns the line.

    Events arrive in commit order, so for each event only the nearest
    earlier event of every other writer matters; tracking the last
    event per writer makes the scan linear.
    """
    best: tuple[int, tuple[WriteEvent, WriteEvent]] | None = None
    last_by_writer: dict = {}
    for event in events:
        for writer, earlier in last_by_writer.items():
            if writer == event.writer:
                continue
            distance = event.commit_index - earlier.commit_index
            if best is None or distance < best[0]:
                best = (distance, (earlier, event))
        last_by_writer[event.writer] = event
    return best


def find_contended_lines(recording: Recording,
                         include_dma: bool = True) -> RaceReport:
    """Every line written by more than one agent, tightest races first.

    ``include_dma=False`` restricts the report to processor-processor
    contention (DMA writes land at recorded addresses by construction,
    so they are often noise when hunting an application-level race).
    """
    events_by_address = _write_events(recording)
    lines = []
    for address, events in events_by_address.items():
        if not include_dma:
            events = [e for e in events if e.writer != DMA_WRITER]
        pair = _closest_cross_pair(events)
        if pair is None:
            continue
        distance, closest = pair
        lines.append(ContendedLine(
            address=address, events=events,
            min_distance=distance, closest_pair=closest))
    lines.sort(key=lambda line: (line.min_distance, line.address))
    return RaceReport(
        lines=lines,
        total_commits=len(recording.fingerprints),
        total_lines_written=len(events_by_address),
    )


@dataclass(frozen=True)
class ExplorationTarget:
    """A contended line recast as a schedule-exploration branch point.

    ``prefix`` is a grant-order prescription (processor IDs, the
    :class:`~repro.core.arbiter.SchedulePlan` ``prefix`` wire format)
    that replays the recorded commit order up to the closest
    cross-writer pair and then *reverses* it: the later writer's
    commits are granted before the earlier writer's -- the classic
    DPOR backtrack point, derived here from a recording instead of a
    live execution.  ``window`` is the matching
    :func:`replay_window_for` interval for debugging the neighbourhood.
    """

    address: int
    first_commit: int
    second_commit: int
    writers: tuple[int, int]
    prefix: tuple[int, ...]
    window: tuple[int, int]


def exploration_targets(recording: Recording,
                        limit: int = 16) -> list[ExplorationTarget]:
    """Initial DPOR branch points mined from a recording.

    Takes the tightest cross-writer pairs from
    :func:`find_contended_lines` and, for each, builds the grant-order
    prefix that forces the *second* writer's chunks to commit before
    the *first* writer's racing chunk.  DMA pairs are skipped: DMA
    bursts bypass the ordering policy (they own their commit slot), so
    no prefix can reorder them.

    The explorer (:mod:`repro.explore`) seeds its frontier with these,
    so the very first perturbed schedules attack the recording's
    observed races instead of permuting blindly.
    """
    grant_order = [fp[0] for fp in recording.fingerprints]
    targets: list[ExplorationTarget] = []
    for line in find_contended_lines(recording, include_dma=False).lines:
        if len(targets) >= max(0, limit):
            break
        first, second = line.closest_pair
        if DMA_WRITER in (first.writer, second.writer):
            continue
        i, j = first.commit_index, second.commit_index
        flipped = grant_order[:i] + [
            second.writer for k in range(i, j + 1)
            if grant_order[k] == second.writer]
        targets.append(ExplorationTarget(
            address=line.address,
            first_commit=i,
            second_commit=j,
            writers=(first.writer, second.writer),
            prefix=tuple(flipped),
            window=replay_window_for(line),
        ))
    return targets


def replay_window_for(line: ContendedLine,
                      margin: int = 4) -> tuple[int, int]:
    """The ``(at_commit, length)`` interval-replay window bracketing a
    contended line's closest cross-writer pair.

    Feed the result to :meth:`~repro.core.delorean.DeLoreanSystem.\
    replay_interval`: ``replay_interval(recording, at_commit=start,
    length=length)`` re-executes the neighbourhood of the race.
    """
    first, second = line.closest_pair
    start = max(0, first.commit_index - margin)
    end = second.commit_index + margin
    return start, end - start + 1
