"""Terminal bar charts for the benchmark harness.

The paper's evaluation figures are grouped bar charts; the benches
print their numbers as tables *and* as horizontal bars so the shape --
who wins, by roughly what factor -- is visible in the terminal without
plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

_FULL = "█"
_PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    """A left-to-right bar for ``value`` where ``scale`` maps to
    ``width`` characters."""
    if scale <= 0 or value <= 0:
        return ""
    eighths = int(round(value / scale * width * 8))
    full, rem = divmod(eighths, 8)
    full = min(full, width)
    return _FULL * full + (_PARTIAL[rem] if full < width else "")


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 40,
    reference: float | None = None,
    reference_label: str = "ref",
    unit: str = "",
) -> str:
    """Render one bar per (label, value).

    ``reference`` draws an extra dashed row (the paper's "Basic RTR
    estimated" line in Figures 6-8, or the RC=1.0 normalizer).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(list(values) + ([reference] if reference else []),
               default=0.0)
    label_width = max((len(str(l)) for l in labels), default=0)
    if reference is not None:
        label_width = max(label_width, len(reference_label))
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _bar(value, peak, width)
        lines.append(f"  {str(label):<{label_width}}  "
                     f"{bar:<{width}}  {value:.2f}{unit}")
    if reference is not None:
        dash_width = int(round(reference / peak * width)) if peak else 0
        lines.append(f"  {reference_label:<{label_width}}  "
                     f"{'╌' * dash_width:<{width}}  "
                     f"{reference:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 36,
    unit: str = "",
) -> str:
    """Render groups of bars (one sub-bar per series member), the
    shape of the paper's Figures 10/11."""
    peak = max((max(values) for values in series.values()
                if len(values)), default=0.0)
    series_width = max((len(name) for name in series), default=0)
    lines = []
    if title:
        lines.append(title)
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            if index >= len(values):
                continue
            value = values[index]
            bar = _bar(value, peak, width)
            lines.append(f"  {name:<{series_width}}  "
                         f"{bar:<{width}}  {value:.2f}{unit}")
    return "\n".join(lines)
