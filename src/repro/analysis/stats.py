"""Whole-run statistics collected by the simulated machine.

One :class:`RunStats` summarizes a complete record or replay run: how
long it took, how much work committed, where stalls and squashes went,
how busy the commit pipeline was, and how much traffic moved.  The
benchmark harness builds every figure and table from these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunks.processor import ProcessorStats


@dataclass
class RunStats:
    """Aggregated outcome of one simulated execution."""

    cycles: float = 0.0
    total_committed_instructions: int = 0
    total_committed_chunks: int = 0
    total_squashes: int = 0
    total_squashed_instructions: int = 0
    overflow_truncations: int = 0
    collision_truncations: int = 0
    io_truncations: int = 0
    handler_chunks: int = 0
    dma_commits: int = 0
    stall_cycles_total: float = 0.0
    per_processor: dict[int, ProcessorStats] = field(default_factory=dict)
    token_summary: dict[str, float] = field(default_factory=dict)
    traffic: dict[str, int] = field(default_factory=dict)
    commit_parallelism_samples: list[int] = field(default_factory=list)
    ready_procs_samples: list[int] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle, whole machine."""
        if self.cycles <= 0:
            return 0.0
        return self.total_committed_instructions / self.cycles

    @property
    def squash_rate(self) -> float:
        """Squashes per committed chunk."""
        if self.total_committed_chunks == 0:
            return 0.0
        return self.total_squashes / self.total_committed_chunks

    @property
    def wasted_instruction_fraction(self) -> float:
        """Squashed instructions / (squashed + committed)."""
        executed = (self.total_squashed_instructions
                    + self.total_committed_instructions)
        if executed == 0:
            return 0.0
        return self.total_squashed_instructions / executed

    @property
    def stall_fraction(self) -> float:
        """Stall cycles as a fraction of total processor-cycles
        (Table 6 'Stall Cycles')."""
        procs = max(1, len(self.per_processor))
        if self.cycles <= 0:
            return 0.0
        return self.stall_cycles_total / (self.cycles * procs)

    @property
    def avg_commit_parallelism(self) -> float:
        """Average concurrently-committing chunks (Table 6 'Actual
        Commit')."""
        samples = self.commit_parallelism_samples
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def avg_ready_procs(self) -> float:
        """Average processors holding a ready-to-commit chunk
        (Table 6 'Ready Procs')."""
        samples = self.ready_procs_samples
        return sum(samples) / len(samples) if samples else 0.0

    def speedup_over(self, baseline: "RunStats") -> float:
        """This run's speed relative to ``baseline`` (same work,
        compared by cycles -- the normalization of Figures 10-12)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    def as_dict(self) -> dict:
        """JSON-ready dump of every field (schema: docs/INTERNALS.md).

        Round-trips exactly through :meth:`from_dict`.  Processor keys
        become strings (JSON object keys); derived properties (``ipc``
        and friends) are intentionally omitted -- recompute them from
        the fields.
        """
        return {
            "cycles": self.cycles,
            "total_committed_instructions":
                self.total_committed_instructions,
            "total_committed_chunks": self.total_committed_chunks,
            "total_squashes": self.total_squashes,
            "total_squashed_instructions":
                self.total_squashed_instructions,
            "overflow_truncations": self.overflow_truncations,
            "collision_truncations": self.collision_truncations,
            "io_truncations": self.io_truncations,
            "handler_chunks": self.handler_chunks,
            "dma_commits": self.dma_commits,
            "stall_cycles_total": self.stall_cycles_total,
            "per_processor": {
                str(proc): stats.as_dict()
                for proc, stats in self.per_processor.items()},
            "token_summary": dict(self.token_summary),
            "traffic": dict(self.traffic),
            "commit_parallelism_samples":
                list(self.commit_parallelism_samples),
            "ready_procs_samples": list(self.ready_procs_samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Inverse of :meth:`as_dict`."""
        fields = dict(data)
        fields["per_processor"] = {
            int(proc): ProcessorStats.from_dict(stats)
            for proc, stats in data.get("per_processor", {}).items()}
        return cls(**fields)

    def merge_processor(self, proc_id: int, stats: ProcessorStats) -> None:
        """Fold one processor's counters into the totals."""
        self.per_processor[proc_id] = stats
        self.total_committed_chunks += stats.chunks_committed
        self.total_committed_instructions += (
            stats.instructions_committed + stats.boundary_ops_committed)
        self.total_squashes += stats.squashes
        self.total_squashed_instructions += stats.squashed_instructions
        self.overflow_truncations += stats.overflow_truncations
        self.collision_truncations += stats.collision_truncations
        self.io_truncations += stats.io_truncations
        self.handler_chunks += stats.handler_chunks
        self.stall_cycles_total += stats.stall_cycles
