"""DeLorean: deterministic record/replay of chunk-based multiprocessor
execution -- a reproduction of Montesinos, Ceze & Torrellas, ISCA 2008.

Quickstart::

    from repro import DeLoreanSystem, ExecutionMode
    from repro.workloads import splash2_program

    program = splash2_program("fft", scale=0.2, seed=1)
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
    recording, replay = system.record_and_verify(program)
    print(recording.log_bits_per_proc_per_kiloinst())
    print(replay.determinism.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every figure and table.
"""

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.core.recorder import Recording
from repro.core.serialization import load_recording, save_recording
from repro.core.replayer import ReplayPerturbation, ReplayResult
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ExecutionError,
    LogFormatError,
    ReplayDivergenceError,
    ReproError,
)
from repro.machine.program import Op, OpKind, Program
from repro.machine.timing import MachineConfig, TimingModel

__version__ = "1.0.0"

__all__ = [
    "DeLoreanSystem",
    "ExecutionMode",
    "ModeConfig",
    "preferred_config",
    "Recording",
    "save_recording",
    "load_recording",
    "ReplayPerturbation",
    "ReplayResult",
    "MachineConfig",
    "TimingModel",
    "Op",
    "OpKind",
    "Program",
    "ReproError",
    "ConfigurationError",
    "LogFormatError",
    "ReplayDivergenceError",
    "ExecutionError",
    "DeadlockError",
    "__version__",
]
