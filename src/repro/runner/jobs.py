"""Job execution: turn a :class:`RunSpec` into a result artifact.

This module is the worker side of the runner.  :func:`execute_spec`
runs one simulation and packages the outcome as a JSON-serializable
*artifact*::

    {
      "schema": 1,
      "kind": "record" | "replay" | "consistency",
      "spec": {...canonical spec...},
      "spec_hash": "...",
      "metrics": {...figure-ready numbers...},
      "payload_codec": "dlrn" | "pickle",
      "payload": "<base64>",
    }

``metrics`` carries every number the figure renderers need, so sweeps
can tabulate results without touching the payload.  ``payload`` holds
the full result object -- the native ``save_recording`` container for
recordings, a fixed-protocol pickle for replay/consistency results --
so the benchmark harness can hand callers real ``Recording`` /
``ReplayResult`` / ``InterleavedResult`` instances reconstructed from
cache.  Both encodings are deterministic: executing the same spec
twice yields byte-identical artifacts (the cache determinism guard).

:func:`invoke` is the actual pool entry point: it wraps
:func:`execute_spec` with a hard per-job timeout -- SIGALRM on a unix
main thread, an async-raise :class:`~repro.guard.watchdog.WatchdogTimer`
everywhere else -- and converts every failure into a structured,
picklable failure dictionary, so a crashing or hanging job degrades
the sweep instead of poisoning the pool.  The pool itself adds a
deadline sweep on top (see :mod:`repro.runner.pool`) for jobs wedged
where no in-process exception can land.
"""

from __future__ import annotations

import base64
import pickle
import signal
import time
import traceback

from repro.baselines import InterleavedExecutor
from repro.core.delorean import DeLoreanSystem
from repro.core.replayer import ReplayPerturbation
from repro.core.serialization import load_recording, save_recording
from repro.runner.specs import RunSpec
from repro.workloads import (
    COMMERCIAL_APPS,
    commercial_program,
    splash2_program,
)

#: Pickle protocol pinned for byte-stable payloads across interpreters.
_PICKLE_PROTOCOL = 4


class JobTimeout(Exception):
    """A job exceeded its per-job wall-clock budget."""


def _program_for(spec: RunSpec):
    if spec.app.startswith("zoo:"):
        from repro.workloads.bugzoo import zoo_specimen

        return zoo_specimen(spec.app[len("zoo:"):]).build()
    if spec.app in COMMERCIAL_APPS:
        return commercial_program(spec.app, scale=spec.scale,
                                  seed=spec.seed,
                                  num_threads=spec.num_threads)
    return splash2_program(spec.app, scale=spec.scale, seed=spec.seed,
                           num_threads=spec.num_threads)


def _base_artifact(spec: RunSpec) -> dict:
    return {
        "schema": 1,
        "kind": spec.kind,
        "spec": spec.canonical(),
        "spec_hash": spec.content_hash(),
    }


def _record_metrics(recording) -> dict:
    ordering = recording.memory_ordering
    total = recording.total_committed_instructions
    return {
        "cycles": recording.stats.cycles,
        "total_committed_instructions": total,
        "num_processors": recording.machine_config.num_processors,
        "pi_bits_raw": ordering.pi_size_bits(False),
        "pi_bits_compressed": ordering.pi_size_bits(True),
        "cs_bits_raw": ordering.cs_size_bits(False),
        "cs_bits_compressed": ordering.cs_size_bits(True),
        "total_bits_raw": ordering.total_size_bits(False),
        "total_bits_compressed": ordering.total_size_bits(True),
        "log_bits_per_proc_per_kiloinst_raw":
            ordering.bits_per_proc_per_kiloinst(total, False),
        "log_bits_per_proc_per_kiloinst_compressed":
            ordering.bits_per_proc_per_kiloinst(total, True),
        "run_stats": recording.stats.as_dict(),
    }


def _run_record(spec: RunSpec, cache=None) -> dict:
    system = DeLoreanSystem(
        mode=spec.execution_mode(),
        machine_config=spec.machine_config(),
        chunk_size=spec.chunk_size or None,
    )
    recording = system.record(_program_for(spec))
    artifact = _base_artifact(spec)
    artifact["metrics"] = _record_metrics(recording)
    artifact["payload_codec"] = "dlrn"
    artifact["payload"] = base64.b64encode(
        save_recording(recording)).decode("ascii")
    return artifact


def _run_replay(spec: RunSpec, cache=None) -> dict:
    record_spec = spec.record_spec()
    if cache is not None:
        record_artifact = cache.get_or_compute(record_spec,
                                               execute_spec)
    else:
        record_artifact = execute_spec(record_spec)
    recording = recording_from_artifact(record_artifact)
    system = DeLoreanSystem(
        mode=recording.mode_config.mode,
        machine_config=recording.machine_config,
        mode_config=recording.mode_config,
    )
    perturbation = (None if spec.perturb_seed is None
                    else ReplayPerturbation(seed=spec.perturb_seed))
    result = system.replay(recording, perturbation=perturbation,
                           use_strata=spec.use_strata)
    artifact = _base_artifact(spec)
    artifact["metrics"] = {
        "cycles": result.cycles,
        "matches": result.determinism.matches,
        "compared_chunks": result.determinism.compared_chunks,
        "summary": result.determinism.summary(),
        "record_cycles": recording.stats.cycles,
        "run_stats": result.stats.as_dict(),
    }
    artifact["payload_codec"] = "pickle"
    artifact["payload"] = base64.b64encode(
        pickle.dumps(result, protocol=_PICKLE_PROTOCOL)).decode("ascii")
    return artifact


def _run_consistency(spec: RunSpec, cache=None) -> dict:
    executor = InterleavedExecutor(
        _program_for(spec),
        spec.machine_config(),
        spec.consistency_model(),
        collect_trace=spec.collect_trace,
    )
    result = executor.run()
    artifact = _base_artifact(spec)
    artifact["metrics"] = {
        "cycles": result.cycles,
        "total_instructions": result.total_instructions,
        "ipc": result.ipc,
        "spin_instructions": result.spin_instructions,
        "trace_length": len(result.trace),
    }
    artifact["payload_codec"] = "pickle"
    artifact["payload"] = base64.b64encode(
        pickle.dumps(result, protocol=_PICKLE_PROTOCOL)).decode("ascii")
    return artifact


def _run_explore(spec: RunSpec, cache=None) -> dict:
    # Lazy: repro.explore sits above the runner layer; importing it
    # here (only when an explore spec is executed) avoids the cycle.
    from repro.explore.driver import execute_explore_spec

    return execute_explore_spec(spec, cache)


_RUNNERS = {
    "record": _run_record,
    "replay": _run_replay,
    "consistency": _run_consistency,
    "explore": _run_explore,
}


def execute_spec(spec: RunSpec, cache=None) -> dict:
    """Run one spec to completion and return its artifact.

    ``cache`` (a :class:`~repro.runner.cache.ResultCache`) lets jobs
    with dependencies -- a replay needs its recording -- reuse and
    populate cached intermediates instead of recomputing them.
    """
    return _RUNNERS[spec.kind](spec, cache)


def recording_from_artifact(artifact: dict):
    """Materialize a fresh :class:`Recording` from a record artifact."""
    if artifact.get("payload_codec") != "dlrn":
        raise ValueError(
            f"not a record artifact (codec "
            f"{artifact.get('payload_codec')!r})")
    return load_recording(base64.b64decode(artifact["payload"]))


def result_from_artifact(artifact: dict):
    """Materialize the replay/consistency result object."""
    if artifact.get("payload_codec") != "pickle":
        raise ValueError(
            f"not a pickled-result artifact (codec "
            f"{artifact.get('payload_codec')!r})")
    return pickle.loads(base64.b64decode(artifact["payload"]))


def _raise_timeout(signum, frame):
    raise JobTimeout()


def invoke(job_fn, spec: RunSpec, timeout: float | None,
           cache_root, cache_salt) -> dict:
    """Pool entry point: run ``job_fn(spec, cache)`` under a hard
    per-job timeout and map every outcome to a picklable envelope.

    Returns ``{"ok": True, "artifact": ..., "wall_time": ...}`` or
    ``{"ok": False, "error_type": ..., "message": ...,
    "traceback": ..., "wall_time": ...}``.  Never raises: exceptions
    (and their tracebacks) travel as data so an exotic unpicklable
    error cannot wedge the executor.
    """
    from repro.runner.cache import ResultCache

    cache = (ResultCache(cache_root, cache_salt)
             if cache_root is not None else None)
    started = time.perf_counter()
    alarm_set = False
    previous_handler = None
    watchdog = None
    if timeout and hasattr(signal, "SIGALRM"):
        try:
            previous_handler = signal.signal(signal.SIGALRM,
                                             _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            alarm_set = True
        except ValueError:
            # Not the main thread: fall through to the watchdog timer.
            pass
    if timeout and not alarm_set:
        # Worker threads and non-unix platforms: enforce the deadline
        # with an async-raise watchdog instead of dropping enforcement
        # (the pool's deadline sweep backstops C-level blocking).
        from repro.guard.watchdog import WatchdogTimer

        watchdog = WatchdogTimer(timeout, JobTimeout).start()
    try:
        artifact = job_fn(spec, cache)
        return {"ok": True, "artifact": artifact,
                "wall_time": time.perf_counter() - started}
    except JobTimeout:
        return {
            "ok": False,
            "error_type": "JobTimeout",
            "message": f"job exceeded its {timeout:g}s budget",
            "traceback": "",
            "wall_time": time.perf_counter() - started,
        }
    except BaseException as error:  # noqa: BLE001 -- envelope, not loss
        return {
            "ok": False,
            "error_type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
            "wall_time": time.perf_counter() - started,
        }
    finally:
        if alarm_set:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)
        if watchdog is not None:
            watchdog.cancel()
