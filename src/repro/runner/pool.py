"""The runner: fan simulation jobs out across an executor backend.

:class:`Runner` takes a batch of :class:`RunSpec` jobs and drives each
to a terminal state:

1. **Dedup** -- specs are keyed by content hash; a sweep that names
   the same run twice pays for it once.
2. **Cache** -- every job is first looked up in the content-addressed
   :class:`~repro.runner.cache.ResultCache`; hits never reach a
   worker.
3. **Waves** -- jobs with dependencies (a replay needs its recording)
   run after their dependencies, so N replays of one recording share
   one record job through the cache instead of each recomputing it.
4. **Execute** -- misses are submitted to a pluggable
   :class:`~repro.runner.executors.ExecutorBackend`:
   :class:`~repro.runner.executors.InlineBackend` (the serial
   baseline, same code path for cache and retry),
   :class:`~repro.runner.executors.ProcessPoolBackend` (``jobs > 1``)
   or :class:`~repro.runner.executors.RemoteWorkerBackend` (the serve
   layer's lease-based worker fleet, with a local fallback pool it
   degrades to when no worker heartbeats).  Each attempt runs under a per-job
   wall-clock timeout enforced *inside* the worker (SIGALRM on a unix
   main thread, an async-raise watchdog timer elsewhere), so a hung
   simulation turns into a structured timeout failure rather than a
   stuck pool.  A pool-side deadline sweep backstops both: attempts
   still pending past :func:`sweep_deadline` are abandoned and fed
   through the normal retry path, so even a worker wedged in C code
   cannot stall the sweep.
5. **Retry** -- failed attempts (exceptions, timeouts, a crashed
   worker process) are retried with exponential backoff under a
   :class:`~repro.runner.retry.RetryPolicy`; a job that exhausts its
   budget yields a :class:`~repro.runner.retry.FailureRecord` and the
   sweep continues.

Progress and counters flow through a pluggable
:class:`~repro.runner.reporting.Reporter`.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.errors import ReproError
from repro.runner import jobs as jobs_module
from repro.runner.cache import ResultCache
from repro.runner.executors import (
    ExecutorBackend,
    InlineBackend,
    resolve_backend,
)
from repro.runner.reporting import NullReporter, Reporter, RunnerMetrics
from repro.runner.retry import (
    AttemptFailure,
    FailureRecord,
    RetryPolicy,
)
from repro.runner.specs import RunSpec


class RunnerError(ReproError):
    """A sweep-level failure (raised by the strict helpers only)."""


def sweep_deadline(timeout: float) -> float:
    """Pool-side backstop budget for one attempt.

    The in-worker enforcement (SIGALRM on the main thread, the async-
    raise watchdog elsewhere) gets the first shot at a hung job; the
    pool's deadline sweep only collects attempts stuck past it -- jobs
    wedged in C code where no Python-level exception can land.  The
    margin keeps the two mechanisms from racing on healthy timeouts.
    """
    return timeout + max(1.0, 0.5 * timeout)


def overdue_futures(pending, deadlines, now: float) -> list:
    """Futures in ``pending`` whose sweep deadline has passed."""
    return [future for future, due in deadlines.items()
            if due <= now and future in pending and not future.done()]


@dataclass
class JobOutcome:
    """Terminal state of one job in a sweep."""

    spec: RunSpec
    artifact: dict | None = None
    failure: FailureRecord | None = None
    attempts: int = 0
    wall_time: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job produced an artifact."""
        return self.artifact is not None


def default_jobs() -> int:
    """Worker count when the caller does not choose one."""
    return max(1, min(8, os.cpu_count() or 1))


class Runner:
    """Parallel, cached, fault-tolerant executor for run specs."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | bool | None = True,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        reporter: Reporter | None = None,
        job_fn=jobs_module.execute_spec,
        executor: str | ExecutorBackend | None = None,
    ) -> None:
        if jobs < 1:
            raise RunnerError("need at least one worker")
        self.jobs = jobs
        if cache is True:
            cache = ResultCache()
        elif cache is False:
            cache = None
        self.cache = cache
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.reporter = reporter or NullReporter()
        self.job_fn = job_fn
        # An explicitly chosen backend is always honored; the implicit
        # default keeps the historical fast path (single-miss waves
        # skip pool startup and run inline).
        self._explicit_backend = executor is not None
        self._owns_backend = not isinstance(executor, ExecutorBackend)
        self._backend = resolve_backend(executor, jobs)
        self._inline = (self._backend
                        if isinstance(self._backend, InlineBackend)
                        else InlineBackend())
        self.metrics = RunnerMetrics()

    @property
    def backend(self) -> ExecutorBackend:
        """The execution substrate this runner submits attempts to."""
        return self._backend

    # -- public API -----------------------------------------------------

    def run(self, specs) -> list[JobOutcome]:
        """Drive every spec to a terminal state.

        Returns one outcome per *distinct* requested spec, in first-
        seen order.  Dependency jobs added for scheduling are executed
        (and cached) but not returned.
        """
        requested: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            spec_hash = spec.content_hash()
            if spec_hash not in seen:
                seen.add(spec_hash)
                requested.append(spec)

        waves = self._plan_waves(requested, seen)
        self.metrics = RunnerMetrics(
            queued=sum(len(wave) for wave in waves))
        self.reporter.on_start(self.metrics.queued)

        outcomes: dict[str, JobOutcome] = {}
        try:
            for wave in waves:
                self._run_wave(wave, outcomes)
        finally:
            if self._owns_backend:
                self._backend.shutdown(wait=True, cancel_futures=True)
        self.reporter.on_finish(self.metrics)
        return [outcomes[spec.content_hash()] for spec in requested]

    def run_one(self, spec: RunSpec) -> dict:
        """Run a single spec; return its artifact or raise."""
        outcome = self.run([spec])[0]
        if not outcome.ok:
            raise RunnerError(outcome.failure.summary())
        return outcome.artifact

    def artifacts_by_hash(self, specs) -> dict[str, dict]:
        """Run a sweep; map spec hash -> artifact for the successes."""
        return {outcome.spec.content_hash(): outcome.artifact
                for outcome in self.run(specs) if outcome.ok}

    # -- scheduling -----------------------------------------------------

    def _plan_waves(self, requested, seen) -> list[list[RunSpec]]:
        """Topologically bucket jobs: dependencies before dependents.

        With the cache enabled, dependencies of requested jobs are
        injected into the first wave so concurrent dependents share
        one computation through the cache instead of racing on it.
        """
        first: list[RunSpec] = []
        second: list[RunSpec] = []
        for spec in requested:
            dependencies = spec.dependencies()
            if not dependencies:
                first.append(spec)
                continue
            second.append(spec)
            if self.cache is None:
                continue  # nothing to share without a cache
            for dependency in dependencies:
                dep_hash = dependency.content_hash()
                if dep_hash not in seen:
                    seen.add(dep_hash)
                    first.append(dependency)
        return [wave for wave in (first, second) if wave]

    def _run_wave(self, wave, outcomes) -> None:
        misses: list[RunSpec] = []
        for spec in wave:
            artifact = self.cache.load(spec) if self.cache else None
            if artifact is not None:
                self.metrics.queued -= 1
                self.metrics.done += 1
                self.metrics.cache_hits += 1
                outcome = JobOutcome(spec=spec, artifact=artifact,
                                     from_cache=True)
                outcomes[spec.content_hash()] = outcome
                self.reporter.on_job_done(
                    spec, from_cache=True, wall_time=0.0,
                    metrics=self.metrics)
            else:
                self.metrics.cache_misses += 1
                misses.append(spec)
        if not misses:
            return
        serial = self.jobs == 1 or len(misses) == 1
        backend = self._backend
        if serial and not self._explicit_backend:
            backend = self._inline  # historical single-job fast path
        if backend.parallel and not serial:
            self._run_pooled(misses, outcomes, backend)
        else:
            backend.start(1)
            for spec in misses:
                outcomes[spec.content_hash()] = \
                    self._run_serial(spec, backend)

    # -- execution ------------------------------------------------------

    @property
    def _cache_args(self) -> tuple:
        if self.cache is None:
            return (None, None)
        return (str(self.cache.root), self.cache.salt)

    def _finish_success(self, spec, envelope, attempt) -> JobOutcome:
        artifact = envelope["artifact"]
        if self.cache is not None:
            self.cache.store(spec, artifact)
        self.metrics.done += 1
        self.metrics.running -= 1
        self.metrics.job_wall_times.append(envelope["wall_time"])
        outcome = JobOutcome(spec=spec, artifact=artifact,
                             attempts=attempt,
                             wall_time=envelope["wall_time"])
        self.reporter.on_job_done(
            spec, from_cache=False, wall_time=envelope["wall_time"],
            metrics=self.metrics)
        return outcome

    def _finish_failure(self, spec, failures,
                        started: float | None = None) -> JobOutcome:
        elapsed = (time.monotonic() - started
                   if started is not None else 0.0)
        record = FailureRecord(spec=spec, attempts=list(failures),
                               total_elapsed=elapsed)
        self.metrics.failed += 1
        self.metrics.running -= 1
        self.reporter.on_job_failed(spec, record.last.brief(),
                                    self.metrics)
        return JobOutcome(spec=spec, failure=record,
                          attempts=len(failures),
                          wall_time=elapsed)

    def _attempt_failure(self, envelope, attempt) -> AttemptFailure:
        return AttemptFailure(
            attempt=attempt,
            error_type=envelope["error_type"],
            message=envelope["message"],
            traceback=envelope.get("traceback", ""),
            wall_time=envelope.get("wall_time", 0.0),
        )

    def _retry_delay(self, spec, attempt,
                     previous_delay: float | None) -> float:
        return self.retry.delay(
            attempt, previous_delay=previous_delay,
            rng=self.retry.attempt_rng(spec.content_hash(), attempt))

    def _submit_attempt(self, backend, spec):
        return backend.submit(
            jobs_module.invoke, self.job_fn, spec, self.timeout,
            *self._cache_args)

    @staticmethod
    def _error_envelope(error_type: str, message: str,
                        wall_time: float = 0.0) -> dict:
        return {"ok": False, "error_type": error_type,
                "message": message, "traceback": "",
                "wall_time": wall_time}

    def _run_serial(self, spec: RunSpec, backend) -> JobOutcome:
        """Drive one spec to a terminal state, one blocking attempt at
        a time, through ``backend``."""
        self.metrics.queued -= 1
        self.metrics.running += 1
        failures: list[AttemptFailure] = []
        started = time.monotonic()
        last_delay: float | None = None
        budget = sweep_deadline(self.timeout) if self.timeout else None
        for attempt in range(1, self.retry.max_attempts + 1):
            self.reporter.on_job_start(spec, attempt)
            future = self._submit_attempt(backend, spec)
            try:
                envelope = future.result(timeout=budget)
            except BrokenProcessPool:
                backend.restart(1)
                envelope = self._error_envelope(
                    "BrokenProcessPool", "worker process died")
            except concurrent.futures.TimeoutError:
                # Wedged below Python: abandon the attempt (the worker
                # keeps its slot until it returns) and fail fast.
                future.cancel()
                self.metrics.swept += 1
                envelope = self._error_envelope(
                    "JobTimeout",
                    f"job missed its {self.timeout:g}s deadline "
                    f"(pool sweep)",
                    wall_time=time.monotonic() - started)
            except BaseException as error:  # noqa: BLE001
                envelope = self._error_envelope(
                    type(error).__name__, str(error))
            if envelope["ok"]:
                return self._finish_success(spec, envelope, attempt)
            failures.append(self._attempt_failure(envelope, attempt))
            if self.retry.should_retry(attempt,
                                       time.monotonic() - started):
                delay = self._retry_delay(spec, attempt, last_delay)
                last_delay = delay
                self.metrics.retries += 1
                self.reporter.on_retry(spec, attempt, delay,
                                       failures[-1].brief())
                time.sleep(delay)
            else:
                break
        return self._finish_failure(spec, failures, started)

    def _run_pooled(self, misses, outcomes, backend) -> None:
        backend.start(len(misses))
        # future -> (spec, attempt, failures, started, last_delay)
        pending: dict = {}
        # future -> monotonic sweep deadline for that attempt
        deadlines: dict = {}
        # (due_time, spec, attempt, failures, started, last_delay)
        retry_at: list = []

        def submit(spec, attempt, failures, started, last_delay):
            self.reporter.on_job_start(spec, attempt)
            future = self._submit_attempt(backend, spec)
            pending[future] = (spec, attempt, failures, started,
                               last_delay)
            if self.timeout:
                deadlines[future] = (time.monotonic()
                                     + sweep_deadline(self.timeout))

        def resolve_failure(spec, attempt, failures, started,
                            last_delay, envelope):
            failures.append(self._attempt_failure(envelope, attempt))
            if self.retry.should_retry(attempt,
                                       time.monotonic() - started):
                delay = self._retry_delay(spec, attempt, last_delay)
                self.metrics.retries += 1
                self.reporter.on_retry(spec, attempt, delay,
                                       failures[-1].brief())
                retry_at.append((time.monotonic() + delay, spec,
                                 attempt + 1, failures, started,
                                 delay))
            else:
                outcomes[spec.content_hash()] = \
                    self._finish_failure(spec, failures, started)

        for spec in misses:
            self.metrics.queued -= 1
            self.metrics.running += 1
            submit(spec, 1, [], time.monotonic(), None)
        while pending or retry_at:
            now = time.monotonic()
            due = [entry for entry in retry_at if entry[0] <= now]
            retry_at = [entry for entry in retry_at
                        if entry[0] > now]
            for (_, spec, attempt, failures, started,
                 last_delay) in due:
                submit(spec, attempt, failures, started,
                       last_delay)
            if not pending:
                time.sleep(min(0.05,
                               max(0.0, retry_at[0][0] - now)))
                continue
            done, _ = concurrent.futures.wait(
                pending, timeout=0.05,
                return_when=concurrent.futures.FIRST_COMPLETED)
            for future in done:
                entry = pending.pop(future, None)
                deadlines.pop(future, None)
                if entry is None:
                    # A pool break earlier in this batch already
                    # cleared pending and resubmitted this job on
                    # the fresh substrate (or the deadline sweep
                    # abandoned it); the stale future carries
                    # nothing we still need.
                    continue
                spec, attempt, failures, started, last_delay = \
                    entry
                try:
                    envelope = future.result()
                except BrokenProcessPool:
                    # The worker died hard (SIGKILL, segfault,
                    # os._exit).  Every sibling future on this
                    # substrate is poisoned; rebuild it and
                    # resubmit the survivors.
                    envelope = self._error_envelope(
                        "BrokenProcessPool", "worker process died")
                    backend.restart(len(pending) + len(retry_at) + 1)
                    survivors = list(pending.items())
                    pending.clear()
                    deadlines.clear()
                    for _, (s_spec, s_attempt, s_failures,
                            s_started, s_delay) in survivors:
                        submit(s_spec, s_attempt, s_failures,
                               s_started, s_delay)
                except BaseException as error:  # noqa: BLE001
                    envelope = self._error_envelope(
                        type(error).__name__, str(error))
                if envelope["ok"]:
                    outcomes[spec.content_hash()] = \
                        self._finish_success(spec, envelope,
                                             attempt)
                    continue
                resolve_failure(spec, attempt, failures, started,
                                last_delay, envelope)
            # Deadline sweep: an attempt that outlived both the
            # in-worker enforcement and the sweep margin is wedged
            # below Python (C-level blocking); abandon its future
            # -- the worker keeps its slot until it returns, but
            # the job itself fails fast through the normal retry
            # path instead of stalling the sweep forever.
            for future in overdue_futures(pending, deadlines,
                                          time.monotonic()):
                spec, attempt, failures, started, last_delay = \
                    pending.pop(future)
                deadlines.pop(future, None)
                future.cancel()
                self.metrics.swept += 1
                resolve_failure(spec, attempt, failures, started,
                                last_delay, self._error_envelope(
                                    "JobTimeout",
                                    f"job missed its "
                                    f"{self.timeout:g}s "
                                    f"deadline (pool sweep)",
                                    wall_time=(time.monotonic()
                                               - started)))
