"""Content-addressed on-disk result cache.

Artifacts are JSON documents stored under ``.repro-cache/`` (or
``$REPRO_CACHE_DIR``), addressed by ``<salt>/<hh>/<spec-hash>.json``
where

* ``spec-hash`` is :meth:`RunSpec.content_hash` -- the SHA-256 of the
  run's canonical form, and
* ``salt`` is a code-version fingerprint: a SHA-256 over every
  ``repro`` source file (path + content).  Editing any simulation
  source lands subsequent runs in a fresh namespace, so stale results
  can never be served after a code change.  ``$REPRO_CACHE_SALT``
  overrides it (useful for tests and for pinning a namespace across
  checkouts known to be equivalent).

Writes are atomic (temp file + ``os.replace``) and the encoding is
canonical (sorted keys, fixed separators), so concurrent workers that
race on the same spec produce byte-identical files and the loser's
rename is harmless.  A cached artifact whose recorded ``spec_hash``
disagrees with its address is treated as corruption: dropped and
recomputed, never returned.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.runner.specs import RunSpec

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Artifact document schema version.
ARTIFACT_SCHEMA = 1


@lru_cache(maxsize=1)
def source_tree_salt() -> str:
    """Fingerprint of the installed ``repro`` package sources."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        digest.update(relative.encode())
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()[:16]


def encode_artifact(artifact: dict) -> bytes:
    """Canonical byte encoding of an artifact document.

    The same artifact always encodes to the same bytes; the test
    suite's determinism guard compares these encodings directly.
    """
    return json.dumps(artifact, sort_keys=True,
                      separators=(",", ":")).encode()


class ResultCache:
    """Content-addressed artifact store with hit/miss accounting."""

    def __init__(self, root: str | os.PathLike | None = None,
                 salt: str | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        if salt is None:
            salt = os.environ.get("REPRO_CACHE_SALT") or \
                source_tree_salt()
        self.root = Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, spec: RunSpec) -> Path:
        """Where the artifact for ``spec`` lives (or would live)."""
        spec_hash = spec.content_hash()
        return (self.root / self.salt / spec_hash[:2] /
                f"{spec_hash}.json")

    def load(self, spec: RunSpec) -> dict | None:
        """The cached artifact for ``spec``, or ``None`` on miss."""
        path = self.path_for(spec)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            artifact = json.loads(raw)
            if artifact.get("spec_hash") != spec.content_hash():
                raise ValueError("artifact/address hash mismatch")
        except (ValueError, AttributeError):
            # Corrupt or foreign file at our address: drop and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def store(self, spec: RunSpec, artifact: dict) -> Path:
        """Atomically persist ``artifact`` for ``spec``."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_artifact(artifact)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def get_or_compute(self, spec: RunSpec, compute) -> dict:
        """Serve from cache, else run ``compute(spec, self)`` and
        persist its artifact.  ``compute`` receives the cache so jobs
        with dependencies (replay -> record) can reuse it."""
        artifact = self.load(spec)
        if artifact is not None:
            return artifact
        artifact = compute(spec, self)
        self.store(spec, artifact)
        return artifact

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Hit/miss/store counters (for metrics snapshots)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}
