"""Content-addressed on-disk result cache.

Artifacts are JSON documents stored under ``.repro-cache/`` (or
``$REPRO_CACHE_DIR``), addressed by ``<salt>/<hh>/<spec-hash>.json``
where

* ``spec-hash`` is :meth:`RunSpec.content_hash` -- the SHA-256 of the
  run's canonical form, and
* ``salt`` is a code-version fingerprint: a SHA-256 over every
  ``repro`` source file (path + content).  Editing any simulation
  source lands subsequent runs in a fresh namespace, so stale results
  can never be served after a code change.  ``$REPRO_CACHE_SALT``
  overrides it (useful for tests and for pinning a namespace across
  checkouts known to be equivalent).

**Concurrent-writer safety (the store audit).**  Writes go to a temp
file created *in the destination directory* (same filesystem, so the
rename cannot degrade to copy+delete), are flushed and fsynced, then
published with ``os.replace`` -- atomic on POSIX.  The encoding is
canonical (sorted keys, fixed separators), so workers racing on the
same spec produce byte-identical files and the loser's rename is
harmless; a reader never observes a half-written artifact because the
only mutation of the final path is the atomic rename.  A cached
artifact whose recorded ``spec_hash`` disagrees with its address is
treated as corruption: dropped and recomputed, never returned.

**Garbage collection.**  Every cache hit re-stamps the artifact's
mtime (:func:`ResultCache.load`), so a file's mtime is its last-access
time and LRU eviction order is sound.  :meth:`ResultCache.gc` evicts
least-recently-used artifacts until the store fits ``max_bytes``
(and/or drops everything idle past ``max_age_seconds``); artifacts
pinned with :meth:`ResultCache.pin` are never evicted.  Hit/miss/
store/evict accounting is surfaced through ``repro cache stats|gc``
and the serve layer's ``serve_*`` counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.runner.specs import RunSpec

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Artifact document schema version.
ARTIFACT_SCHEMA = 1

#: Pin-marker suffix: ``<spec-hash>.pin`` next to the artifact.
PIN_SUFFIX = ".pin"


@lru_cache(maxsize=1)
def source_tree_salt() -> str:
    """Fingerprint of the installed ``repro`` package sources."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        digest.update(relative.encode())
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()[:16]


def encode_artifact(artifact: dict) -> bytes:
    """Canonical byte encoding of an artifact document.

    The same artifact always encodes to the same bytes; the test
    suite's determinism guard compares these encodings directly.
    """
    return json.dumps(artifact, sort_keys=True,
                      separators=(",", ":")).encode()


@dataclass
class GCReport:
    """What one :meth:`ResultCache.gc` pass did (or would do)."""

    scanned: int = 0
    scanned_bytes: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    pinned_kept: int = 0
    remaining_bytes: int = 0
    dry_run: bool = False
    evicted_hashes: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-friendly form for reports and the CLI."""
        return {
            "scanned": self.scanned,
            "scanned_bytes": self.scanned_bytes,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "pinned_kept": self.pinned_kept,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
        }

    def summary(self) -> str:
        """One-line human rendering."""
        verb = "would evict" if self.dry_run else "evicted"
        return (f"cache gc: {verb} {self.evicted}/{self.scanned} "
                f"artifact(s), {self.evicted_bytes:,} of "
                f"{self.scanned_bytes:,} bytes "
                f"({self.pinned_kept} pinned kept, "
                f"{self.remaining_bytes:,} bytes remain)")


class ResultCache:
    """Content-addressed artifact store with hit/miss accounting."""

    def __init__(self, root: str | os.PathLike | None = None,
                 salt: str | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        if salt is None:
            salt = os.environ.get("REPRO_CACHE_SALT") or \
                source_tree_salt()
        self.root = Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def path_for(self, spec: RunSpec) -> Path:
        """Where the artifact for ``spec`` lives (or would live)."""
        return self.path_for_hash(spec.content_hash())

    def path_for_hash(self, spec_hash: str) -> Path:
        """The artifact address of a bare content hash."""
        return (self.root / self.salt / spec_hash[:2] /
                f"{spec_hash}.json")

    def _touch(self, path: Path) -> None:
        """Re-stamp a hit artifact's mtime = last-access time.

        Best-effort: a read-only cache (or a concurrent eviction) must
        not turn a successful load into a failure.
        """
        try:
            os.utime(path, None)
        except OSError:
            pass

    def load(self, spec) -> dict | None:
        """The cached artifact for ``spec``, or ``None`` on miss.

        ``spec`` is anything with a ``content_hash()`` -- a
        :class:`RunSpec` or a serve-layer campaign spec.
        """
        return self.load_by_hash(spec.content_hash())

    def load_by_hash(self, spec_hash: str) -> dict | None:
        """Fetch an artifact by bare content hash (the serve layer's
        ``GET /v1/artifacts/<hash>`` path)."""
        path = self.path_for_hash(spec_hash)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            artifact = json.loads(raw)
            if artifact.get("spec_hash") != spec_hash:
                raise ValueError("artifact/address hash mismatch")
        except (ValueError, AttributeError):
            # Corrupt or foreign file at our address: drop and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)
        return artifact

    def store(self, spec, artifact: dict) -> Path:
        """Atomically persist ``artifact`` for ``spec``.

        Safe under concurrent multi-process writers: the temp file
        lives in the destination directory, is fsynced before the
        ``os.replace``, and the canonical encoding makes racing
        writers byte-identical, so whichever rename lands last changes
        nothing.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_artifact(artifact)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(payload)
                temp.flush()
                os.fsync(temp.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def get_or_compute(self, spec, compute) -> dict:
        """Serve from cache, else run ``compute(spec, self)`` and
        persist its artifact.  ``compute`` receives the cache so jobs
        with dependencies (replay -> record) can reuse it."""
        artifact = self.load(spec)
        if artifact is not None:
            return artifact
        artifact = compute(spec, self)
        self.store(spec, artifact)
        return artifact

    # -- pinning --------------------------------------------------------

    def _pin_path(self, spec_hash: str) -> Path:
        return (self.root / self.salt / spec_hash[:2] /
                f"{spec_hash}{PIN_SUFFIX}")

    def pin(self, spec_hash: str) -> None:
        """Exempt an artifact from GC eviction."""
        path = self._pin_path(spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()

    def unpin(self, spec_hash: str) -> None:
        """Remove an artifact's eviction exemption (idempotent)."""
        try:
            self._pin_path(spec_hash).unlink()
        except OSError:
            pass

    def is_pinned(self, spec_hash: str) -> bool:
        """Whether GC must keep this artifact."""
        return self._pin_path(spec_hash).exists()

    # -- stats & GC -----------------------------------------------------

    def _artifacts(self, all_salts: bool = True):
        """Yield ``(path, stat)`` for every artifact file on disk."""
        base = self.root if all_salts else self.root / self.salt
        if not base.is_dir():
            return
        for path in base.rglob("*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                yield path, path.stat()
            except OSError:
                continue  # concurrently evicted

    def stats(self) -> dict:
        """On-disk inventory plus this instance's counters."""
        per_salt: dict[str, dict] = {}
        total_files = 0
        total_bytes = 0
        pinned = 0
        for path, stat in self._artifacts():
            salt = path.parent.parent.name
            entry = per_salt.setdefault(
                salt, {"artifacts": 0, "bytes": 0, "pinned": 0})
            entry["artifacts"] += 1
            entry["bytes"] += stat.st_size
            if path.with_suffix(PIN_SUFFIX).exists():
                entry["pinned"] += 1
                pinned += 1
            total_files += 1
            total_bytes += stat.st_size
        return {
            "root": str(self.root),
            "salt": self.salt,
            "artifacts": total_files,
            "bytes": total_bytes,
            "pinned": pinned,
            "salts": per_salt,
            "counters": self.counters(),
        }

    def gc(self, max_bytes: int | None = None,
           max_age_seconds: float | None = None,
           dry_run: bool = False,
           now: float | None = None) -> GCReport:
        """Evict least-recently-used artifacts.

        Two independent policies compose: everything idle longer than
        ``max_age_seconds`` goes, then the oldest survivors go until
        at most ``max_bytes`` remain.  Pinned artifacts are always
        kept (and still count against ``max_bytes``, so a fully-pinned
        cache can legitimately exceed the budget).  ``dry_run``
        reports what would happen without unlinking anything.
        """
        now = time.time() if now is None else now
        entries = sorted(self._artifacts(),
                         key=lambda item: item[1].st_mtime)
        report = GCReport(dry_run=dry_run)
        report.scanned = len(entries)
        report.scanned_bytes = sum(s.st_size for _, s in entries)
        live_bytes = report.scanned_bytes

        def evict(path: Path, size: int) -> None:
            nonlocal live_bytes
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    return  # lost a race with another GC: not evicted
            report.evicted += 1
            report.evicted_bytes += size
            report.evicted_hashes.append(path.stem)
            live_bytes -= size
            self.evictions += 1

        for path, stat in entries:
            if path.with_suffix(PIN_SUFFIX).exists():
                report.pinned_kept += 1
                continue
            expired = (max_age_seconds is not None
                       and now - stat.st_mtime > max_age_seconds)
            over_budget = (max_bytes is not None
                           and live_bytes > max_bytes)
            if expired or over_budget:
                evict(path, stat.st_size)
        report.remaining_bytes = live_bytes
        return report

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Hit/miss/store/evict counters (for metrics snapshots)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}
