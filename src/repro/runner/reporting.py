"""Sweep progress metrics and pluggable reporters.

The pool drives a :class:`Reporter` through the life of a sweep:
``on_start`` with the job count, ``on_job_start`` / ``on_job_done``
per job, ``on_retry`` per backoff, ``on_finish`` with the final
:class:`RunnerMetrics`.  The default :class:`NullReporter` is silent
(library use); :class:`ConsoleReporter` prints one line per event (the
``repro bench`` CLI).  Anything else -- a JSONL emitter, a dashboard
pusher -- subclasses :class:`Reporter` and overrides what it needs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field

from repro.runner.specs import RunSpec


@dataclass
class RunnerMetrics:
    """Counters for one sweep: queue state, cache traffic, job times."""

    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    retries: int = 0
    swept: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    job_wall_times: list = field(default_factory=list)
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def total(self) -> int:
        """Jobs in the sweep (finished or not)."""
        return self.queued + self.running + self.done + self.failed

    @property
    def finished(self) -> int:
        """Jobs that reached a terminal state."""
        return self.done + self.failed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of jobs served straight from the result cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the sweep started."""
        return time.perf_counter() - self.started_at

    def snapshot(self) -> dict:
        """Point-in-time counter dump (JSON-ready)."""
        times = self.job_wall_times
        return {
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "elapsed_seconds": self.elapsed,
            "mean_job_seconds":
                sum(times) / len(times) if times else 0.0,
            "max_job_seconds": max(times) if times else 0.0,
        }

    def summary(self) -> str:
        """One-line human summary for the end of a sweep."""
        times = self.job_wall_times
        mean = sum(times) / len(times) if times else 0.0
        parts = [
            f"{self.done} done",
            f"{self.failed} failed" if self.failed else None,
            f"{self.retries} retries" if self.retries else None,
            f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} "
            f"({100.0 * self.cache_hit_rate:.0f}% hits)",
            f"{mean:.2f}s/job" if times else None,
            f"{self.elapsed:.2f}s wall",
        ]
        return ", ".join(part for part in parts if part)


class Reporter:
    """Sweep event sink; every hook is optional."""

    def on_start(self, total_jobs: int) -> None:
        """A sweep of ``total_jobs`` deduplicated jobs is starting."""

    def on_job_start(self, spec: RunSpec, attempt: int) -> None:
        """One job attempt was submitted to a worker."""

    def on_job_done(self, spec: RunSpec, *, from_cache: bool,
                    wall_time: float, metrics: RunnerMetrics) -> None:
        """One job finished successfully."""

    def on_retry(self, spec: RunSpec, attempt: int, delay: float,
                 error: str) -> None:
        """One job attempt failed; a retry is scheduled."""

    def on_job_failed(self, spec: RunSpec, error: str,
                      metrics: RunnerMetrics) -> None:
        """One job exhausted its retry budget."""

    def on_finish(self, metrics: RunnerMetrics) -> None:
        """The sweep completed (possibly with failures)."""


class NullReporter(Reporter):
    """Silent reporter (the library default)."""


class ConsoleReporter(Reporter):
    """Line-per-event progress on a stream (the CLI default)."""

    def __init__(self, stream=None, verbose: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self._total = 0

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def on_start(self, total_jobs: int) -> None:
        self._total = total_jobs
        self._emit(f"runner: {total_jobs} job(s) queued")

    def on_job_done(self, spec: RunSpec, *, from_cache: bool,
                    wall_time: float, metrics: RunnerMetrics) -> None:
        if not self.verbose:
            return
        source = "cache" if from_cache else f"{wall_time:.2f}s"
        self._emit(f"  [{metrics.finished}/{self._total}] "
                   f"{spec.label()}  ({source})")

    def on_retry(self, spec: RunSpec, attempt: int, delay: float,
                 error: str) -> None:
        self._emit(f"  retry {spec.label()} (attempt {attempt} "
                   f"failed: {error}; backing off {delay:.2f}s)")

    def on_job_failed(self, spec: RunSpec, error: str,
                      metrics: RunnerMetrics) -> None:
        self._emit(f"  FAILED {spec.label()}: {error}")

    def on_finish(self, metrics: RunnerMetrics) -> None:
        self._emit(f"runner: {metrics.summary()}")


class JSONLReporter(Reporter):
    """Machine-readable sweep log: one JSON object per event.

    Selected on the CLI with ``repro bench --report jsonl:PATH``.
    Every hook appends exactly one line (a single ``write`` of a
    ``\\n``-terminated object on an ``O_APPEND`` handle, so concurrent
    sweeps logging to the same file interleave whole lines, never
    fragments), then flushes and fsyncs before returning: a worker
    killed mid-run (SIGKILL, OOM) loses at most the line it was
    writing, never an already-reported event.  The serve layer's SSE
    replay-on-reconnect reads this same stream, so the durability
    boundary is per event, not per process exit.  The stream loads
    back with one ``json.loads`` per line; each object carries
    ``event`` plus that hook's fields.
    """

    def __init__(self, path) -> None:
        self.path = path
        # Truncate up front so one sweep = one coherent stream, then
        # reopen in append mode for the atomic per-line writes.
        open(path, "w", encoding="utf-8").close()

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _spec_fields(spec: RunSpec) -> dict:
        return {"spec": spec.label(), "spec_hash": spec.content_hash()}

    def on_start(self, total_jobs: int) -> None:
        self._append({"event": "start", "total_jobs": total_jobs,
                      "time": time.time()})

    def on_job_start(self, spec: RunSpec, attempt: int) -> None:
        self._append({"event": "job_start", "attempt": attempt,
                      "time": time.time(), **self._spec_fields(spec)})

    def on_job_done(self, spec: RunSpec, *, from_cache: bool,
                    wall_time: float, metrics: RunnerMetrics) -> None:
        self._append({"event": "job_done", "from_cache": from_cache,
                      "wall_time": wall_time, "time": time.time(),
                      "finished": metrics.finished,
                      **self._spec_fields(spec)})

    def on_retry(self, spec: RunSpec, attempt: int, delay: float,
                 error: str) -> None:
        self._append({"event": "retry", "attempt": attempt,
                      "delay": delay, "error": error,
                      "time": time.time(), **self._spec_fields(spec)})

    def on_job_failed(self, spec: RunSpec, error: str,
                      metrics: RunnerMetrics) -> None:
        self._append({"event": "job_failed", "error": error,
                      "time": time.time(), **self._spec_fields(spec)})

    def on_finish(self, metrics: RunnerMetrics) -> None:
        self._append({"event": "finish", "time": time.time(),
                      "metrics": metrics.snapshot()})


def reporter_from_option(option: str | None,
                         default: Reporter) -> Reporter:
    """Resolve a CLI ``--report`` option to a Reporter.

    ``None`` keeps ``default``; ``console`` forces the console
    reporter; ``jsonl:PATH`` appends one JSON object per event to
    ``PATH``; ``null`` silences reporting.
    """
    if option is None:
        return default
    if option == "console":
        return (default if isinstance(default, ConsoleReporter)
                else ConsoleReporter())
    if option == "null":
        return NullReporter()
    if option.startswith("jsonl:"):
        path = option[len("jsonl:"):]
        if not path:
            raise ValueError("--report jsonl:PATH needs a path")
        return JSONLReporter(path)
    raise ValueError(
        f"unknown --report option {option!r} "
        f"(expected console, null, or jsonl:PATH)")
