"""Figure registry: the paper's evaluation sweeps as run-spec batches.

Each :class:`Figure` names one Section 6 figure, expands to the exact
:class:`RunSpec` list the benchmark harness would execute for it, and
renders a paper-style table from the resulting artifacts' metrics --
no payload deserialization needed.  ``python -m repro bench`` fans the
union of the selected figures' specs through the
:class:`~repro.runner.pool.Runner` and renders each figure from the
artifact map.

Because ``benchmarks/harness.py`` builds its specs with the same
constructors, a ``repro bench`` sweep warms the cache for the pytest
benchmark suite and vice versa: the spec hashes are identical by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.report import format_table, geometric_mean
from repro.baselines import ConsistencyModel
from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.runner.specs import RunSpec
from repro.workloads import COMMERCIAL_APPS, SPLASH2_APPS

#: Default workload set: the SPLASH-2 stand-ins plus the commercial
#: apps, in the paper's presentation order.
DEFAULT_APPS = tuple(SPLASH2_APPS) + ("sjbb2k", "sweb2005")

_CHUNK_SIZES = (1000, 2000, 3000)


def _metrics(artifacts: dict, spec: RunSpec) -> dict | None:
    artifact = artifacts.get(spec.content_hash())
    return artifact["metrics"] if artifact else None


def _fmt(value, pattern="{:.2f}") -> str:
    return pattern.format(value) if value is not None else "n/a"


def _gm_row(label: str, per_app: dict, columns, apps) -> list:
    """Geometric-mean row over the SPLASH-2 subset of ``apps``."""
    splash = [app for app in apps if app in SPLASH2_APPS]
    row = [label]
    for column in columns:
        values = [per_app[app][column] for app in splash
                  if per_app[app].get(column) is not None]
        row.append(_fmt(geometric_mean(values)) if values else "n/a")
    return row


@dataclass(frozen=True)
class Figure:
    """One registered evaluation sweep."""

    name: str
    title: str
    specs: Callable[..., list]
    render: Callable[..., str]
    description: str = ""


def _log_size_specs(mode):
    def build(apps, scale, seed):
        return [RunSpec.record(app, mode, chunk_size=chunk_size,
                               scale=scale, seed=seed)
                for chunk_size in _CHUNK_SIZES for app in apps]
    return build


def _log_size_render(mode, title, raw_key, comp_key):
    def render(artifacts, apps, scale, seed):
        rows = []
        for chunk_size in _CHUNK_SIZES:
            per_app = {}
            for app in apps:
                metrics = _metrics(artifacts, RunSpec.record(
                    app, mode, chunk_size=chunk_size, scale=scale,
                    seed=seed))
                if metrics is None:
                    per_app[app] = {"raw": None, "comp": None}
                    continue
                norm = 1000.0 / max(
                    1, metrics["total_committed_instructions"])
                per_app[app] = {
                    "raw": metrics[raw_key] * norm,
                    "comp": metrics[comp_key] * norm,
                }
            for app in apps:
                rows.append([app, chunk_size,
                             _fmt(per_app[app]["raw"]),
                             _fmt(per_app[app]["comp"])])
            rows.append(_gm_row(f"SP2-G.M. (chunk {chunk_size})",
                                per_app, ("raw", "comp"), apps))
        return format_table(
            ["workload", "chunk", "bits raw", "bits comp"], rows,
            title=title)
    return render


def _fig10_specs(apps, scale, seed):
    specs = []
    for app in apps:
        specs.append(RunSpec.consistency(app, ConsistencyModel.RC,
                                         scale=scale, seed=seed))
        specs.append(RunSpec.consistency(app, ConsistencyModel.SC,
                                         scale=scale, seed=seed))
        for mode in (ExecutionMode.ORDER_AND_SIZE,
                     ExecutionMode.ORDER_ONLY, ExecutionMode.PICOLOG):
            specs.append(RunSpec.record(app, mode, scale=scale,
                                        seed=seed))
    return specs


_FIG10_BARS = ("RC", "Order&Size", "OrderOnly", "PicoLog", "SC")


def _fig10_render(artifacts, apps, scale, seed):
    per_app = {}
    for app in apps:
        rc = _metrics(artifacts, RunSpec.consistency(
            app, ConsistencyModel.RC, scale=scale, seed=seed))
        sc = _metrics(artifacts, RunSpec.consistency(
            app, ConsistencyModel.SC, scale=scale, seed=seed))
        modes = {
            "Order&Size": ExecutionMode.ORDER_AND_SIZE,
            "OrderOnly": ExecutionMode.ORDER_ONLY,
            "PicoLog": ExecutionMode.PICOLOG,
        }
        row = {"RC": 1.0 if rc else None}
        for bar, mode in modes.items():
            metrics = _metrics(artifacts, RunSpec.record(
                app, mode, scale=scale, seed=seed))
            row[bar] = (rc["cycles"] / metrics["cycles"]
                        if rc and metrics else None)
        row["SC"] = rc["cycles"] / sc["cycles"] if rc and sc else None
        per_app[app] = row
    rows = [[app] + [_fmt(per_app[app][bar]) for bar in _FIG10_BARS]
            for app in apps]
    rows.append(_gm_row("SP2-G.M.", per_app, _FIG10_BARS, apps))
    return format_table(
        ["app"] + list(_FIG10_BARS), rows,
        title="Figure 10 -- initial-execution speedup normalized "
              "to RC")


def _fig11_specs(apps, scale, seed):
    specs = []
    for app in apps:
        specs.append(RunSpec.consistency(app, ConsistencyModel.RC,
                                         scale=scale, seed=seed))
        for mode in (ExecutionMode.ORDER_ONLY, ExecutionMode.PICOLOG):
            specs.append(RunSpec.record(app, mode, scale=scale,
                                        seed=seed))
            specs.append(RunSpec.replay(app, mode, scale=scale,
                                        seed=seed))
        specs.append(RunSpec.replay(app, ExecutionMode.ORDER_ONLY,
                                    use_strata=True, scale=scale,
                                    seed=seed))
    return specs


_FIG11_BARS = ("OO exec", "OO replay", "StratOO replay", "Pico exec",
               "Pico replay")


def _fig11_render(artifacts, apps, scale, seed):
    per_app = {}
    verified = True
    for app in apps:
        rc = _metrics(artifacts, RunSpec.consistency(
            app, ConsistencyModel.RC, scale=scale, seed=seed))

        def speed(metrics):
            return (rc["cycles"] / metrics["cycles"]
                    if rc and metrics else None)

        oo_rec = _metrics(artifacts, RunSpec.record(
            app, ExecutionMode.ORDER_ONLY, scale=scale, seed=seed))
        pico_rec = _metrics(artifacts, RunSpec.record(
            app, ExecutionMode.PICOLOG, scale=scale, seed=seed))
        replays = {
            "OO replay": RunSpec.replay(
                app, ExecutionMode.ORDER_ONLY, scale=scale, seed=seed),
            "StratOO replay": RunSpec.replay(
                app, ExecutionMode.ORDER_ONLY, use_strata=True,
                scale=scale, seed=seed),
            "Pico replay": RunSpec.replay(
                app, ExecutionMode.PICOLOG, scale=scale, seed=seed),
        }
        row = {"OO exec": speed(oo_rec), "Pico exec": speed(pico_rec)}
        for bar, spec in replays.items():
            metrics = _metrics(artifacts, spec)
            row[bar] = speed(metrics)
            if metrics is not None and not metrics["matches"]:
                verified = False
        per_app[app] = row
    rows = [[app] + [_fmt(per_app[app][bar]) for bar in _FIG11_BARS]
            for app in apps]
    rows.append(_gm_row("SP2-G.M.", per_app, _FIG11_BARS, apps))
    table = format_table(
        ["app"] + list(_FIG11_BARS), rows,
        title="Figure 11 -- replay speedup normalized to RC")
    footer = ("all replays verified deterministic" if verified
              else "WARNING: at least one replay DIVERGED")
    return f"{table}\n{footer}"


FIGURES: dict[str, Figure] = {}


def _register(figure: Figure) -> Figure:
    FIGURES[figure.name] = figure
    return figure


_register(Figure(
    name="fig06",
    title="Figure 6: OrderOnly PI+CS log size",
    specs=_log_size_specs(ExecutionMode.ORDER_ONLY),
    render=_log_size_render(
        ExecutionMode.ORDER_ONLY,
        "Figure 6 -- OrderOnly PI+CS log size "
        "(bits/proc/kilo-instruction)",
        "total_bits_raw", "total_bits_compressed"),
    description="PI+CS log bits/proc/kinst at chunk 1000/2000/3000",
))

_register(Figure(
    name="fig07",
    title="Figure 7: PicoLog CS log size",
    specs=_log_size_specs(ExecutionMode.PICOLOG),
    render=_log_size_render(
        ExecutionMode.PICOLOG,
        "Figure 7 -- PicoLog CS log size "
        "(bits/proc/kilo-instruction)",
        "cs_bits_raw", "cs_bits_compressed"),
    description="CS log bits/proc/kinst at chunk 1000/2000/3000",
))

_register(Figure(
    name="fig10",
    title="Figure 10: initial-execution speed",
    specs=_fig10_specs,
    render=_fig10_render,
    description="record-mode speedups vs the RC and SC baselines",
))

_register(Figure(
    name="fig11",
    title="Figure 11: replay speed",
    specs=_fig11_specs,
    render=_fig11_render,
    description="replay speedups (plain, stratified, PicoLog) vs RC",
))


def resolve_figures(names) -> list[Figure]:
    """Map user-facing figure names to registry entries."""
    if not names:
        return list(FIGURES.values())
    figures = []
    for name in names:
        if name not in FIGURES:
            known = ", ".join(sorted(FIGURES))
            raise ConfigurationError(
                f"unknown figure {name!r} (known: {known})")
        figures.append(FIGURES[name])
    return figures


def specs_for(figures, apps=DEFAULT_APPS, scale: float = 1.0,
              seed: int = 11) -> list:
    """Deduplicated union of the figures' spec lists."""
    specs = []
    seen = set()
    for figure in figures:
        for spec in figure.specs(tuple(apps), scale, seed):
            spec_hash = spec.content_hash()
            if spec_hash not in seen:
                seen.add(spec_hash)
                specs.append(spec)
    return specs


def validate_apps(apps) -> tuple:
    """Check an ``--apps`` selection against the known workloads."""
    known = set(DEFAULT_APPS) | set(COMMERCIAL_APPS)
    unknown = [app for app in apps if app not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown app(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})")
    return tuple(apps)
