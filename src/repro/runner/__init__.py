"""repro.runner: parallel experiment execution with result caching.

The experiment-execution engine behind ``python -m repro bench`` and
``benchmarks/harness.py``:

* :class:`RunSpec` -- canonical, content-hashed description of one
  simulation run (:mod:`repro.runner.specs`);
* :class:`ResultCache` -- content-addressed on-disk artifact store
  under ``.repro-cache/`` (:mod:`repro.runner.cache`);
* :class:`Runner` -- process-pool fan-out with per-job timeouts,
  bounded retry and structured failures (:mod:`repro.runner.pool`,
  :mod:`repro.runner.retry`);
* :class:`Reporter` / :class:`RunnerMetrics` -- pluggable progress and
  counters (:mod:`repro.runner.reporting`);
* the figure registry mapping the paper's evaluation sweeps to spec
  batches (:mod:`repro.runner.figures`).
"""

from repro.runner.baseline import (
    collect_baseline,
    compare_baselines,
    load_baseline,
    write_baseline,
)
from repro.runner.cache import GCReport, ResultCache, source_tree_salt
from repro.runner.executors import (
    BACKENDS,
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.runner.jobs import (
    execute_spec,
    recording_from_artifact,
    result_from_artifact,
)
from repro.runner.pool import JobOutcome, Runner, RunnerError
from repro.runner.reporting import (
    ConsoleReporter,
    JSONLReporter,
    NullReporter,
    Reporter,
    RunnerMetrics,
    reporter_from_option,
)
from repro.runner.retry import AttemptFailure, FailureRecord, RetryPolicy
from repro.runner.specs import RunSpec

__all__ = [
    "AttemptFailure",
    "BACKENDS",
    "ConsoleReporter",
    "ExecutorBackend",
    "FailureRecord",
    "GCReport",
    "InlineBackend",
    "JSONLReporter",
    "JobOutcome",
    "NullReporter",
    "ProcessPoolBackend",
    "Reporter",
    "ResultCache",
    "RetryPolicy",
    "Runner",
    "RunnerError",
    "RunnerMetrics",
    "RunSpec",
    "resolve_backend",
    "collect_baseline",
    "compare_baselines",
    "execute_spec",
    "load_baseline",
    "write_baseline",
    "recording_from_artifact",
    "result_from_artifact",
    "source_tree_salt",
]
