"""Machine-readable performance baselines (``BENCH_1.json``).

``repro bench --baseline`` snapshots the simulator's throughput --
record and replay events/second for every execution mode, plus the
wall time of the two headline evaluation sweeps (Figure 10 initial
execution, Figure 11 replay speed) -- into a small JSON document a CI
job can diff against a committed reference with
:func:`compare_baselines`.

Wall-clock numbers are inherently machine-dependent, so the threshold
is a *floor ratio*, not an equality check: a run regresses only when
its throughput falls below ``threshold`` times the reference (default
0.1 -- a 10x slowdown), which catches accidental quadratic blowups
without flaking on hardware variance.  Simulated-cycle counts ride
along as exact, machine-independent cross-checks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode

#: Document schema; bump on layout changes.
BASELINE_SCHEMA = 1

#: Default workload of the snapshot: small, uses every subsystem.
BASELINE_APP = "fft"

#: Modes the per-mode throughput section covers.
BASELINE_MODES = (
    ExecutionMode.ORDER_AND_SIZE,
    ExecutionMode.ORDER_ONLY,
    ExecutionMode.PICOLOG,
    ExecutionMode.SIZE_ONLY,
)

#: The headline sweeps whose end-to-end wall time is snapshotted.
BASELINE_FIGURES = ("fig10", "fig11")


def _program(app: str, scale: float, seed: int):
    from repro.workloads import (
        COMMERCIAL_APPS,
        commercial_program,
        splash2_program,
    )

    if app in COMMERCIAL_APPS:
        return commercial_program(app, scale=scale, seed=seed)
    return splash2_program(app, scale=scale, seed=seed)


def _mode_throughput(app: str, mode: ExecutionMode, scale: float,
                     seed: int) -> dict:
    """Record then replay once, timing each phase separately."""
    program = _program(app, scale, seed)
    system = DeLoreanSystem(mode=mode)
    started = time.perf_counter()
    recording = system.record(program)
    record_wall = time.perf_counter() - started
    started = time.perf_counter()
    result = system.replay(recording)
    replay_wall = time.perf_counter() - started
    instructions = recording.stats.total_committed_instructions
    return {
        "record_wall_seconds": record_wall,
        "replay_wall_seconds": replay_wall,
        "record_events_per_sec": (instructions / record_wall
                                  if record_wall > 0 else 0.0),
        "replay_events_per_sec": (instructions / replay_wall
                                  if replay_wall > 0 else 0.0),
        "instructions": instructions,
        "record_cycles": recording.stats.cycles,
        "replay_cycles": result.cycles,
        "replay_verified": bool(result.determinism.matches),
    }


def _figure_wall(name: str, apps, scale: float, seed: int,
                 jobs: int) -> dict:
    """End-to-end wall time of one evaluation sweep, uncached."""
    from repro.runner.figures import FIGURES, specs_for
    from repro.runner.pool import Runner

    specs = specs_for([FIGURES[name]], apps=tuple(apps), scale=scale,
                      seed=seed)
    runner = Runner(jobs=max(1, jobs), cache=False)
    started = time.perf_counter()
    outcomes = runner.run(specs)
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "specs": len(specs),
        "failed": sum(1 for outcome in outcomes if not outcome.ok),
        "jobs": max(1, jobs),
    }


def collect_baseline(app: str = BASELINE_APP, *, scale: float = 0.3,
                     seed: int = 11, jobs: int = 1,
                     figure_apps=None) -> dict:
    """Measure the full baseline snapshot on this machine, now."""
    figure_apps = tuple(figure_apps or (app,))
    return {
        "schema": BASELINE_SCHEMA,
        "kind": "bench-baseline",
        "app": app,
        "scale": scale,
        "seed": seed,
        "modes": {
            mode.value: _mode_throughput(app, mode, scale, seed)
            for mode in BASELINE_MODES
        },
        "figures": {
            name: _figure_wall(name, figure_apps, scale, seed, jobs)
            for name in BASELINE_FIGURES
        },
    }


def write_baseline(path, data: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as stream:
        json.dump(data, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def load_baseline(path) -> dict:
    with Path(path).open("r", encoding="utf-8") as stream:
        data = json.load(stream)
    if data.get("kind") != "bench-baseline":
        raise ValueError(f"{path}: not a bench-baseline document")
    return data


def compare_baselines(current: dict, reference: dict,
                      threshold: float = 0.1) -> list[str]:
    """Regressions of ``current`` against ``reference``.

    Returns human-readable regression lines (empty = within
    threshold).  Throughputs regress when they fall below
    ``threshold`` times the reference; figure wall times regress when
    they exceed the reference by the reciprocal factor.  Replay
    determinism and simulated cycle counts are exact checks: cycles
    are a pure function of the simulated machine, so any drift means
    the simulator's behavior changed, not the host.
    """
    regressions: list[str] = []
    for mode, ref in reference.get("modes", {}).items():
        cur = current.get("modes", {}).get(mode)
        if cur is None:
            regressions.append(f"{mode}: missing from current run")
            continue
        for metric in ("record_events_per_sec",
                       "replay_events_per_sec"):
            ref_value = ref.get(metric, 0.0)
            cur_value = cur.get(metric, 0.0)
            if ref_value > 0 and cur_value < ref_value * threshold:
                regressions.append(
                    f"{mode}.{metric}: {cur_value:,.0f} < "
                    f"{threshold:g} x reference {ref_value:,.0f}")
        if not cur.get("replay_verified", False):
            regressions.append(f"{mode}: replay no longer verifies")
        if (current.get("scale") == reference.get("scale")
                and current.get("seed") == reference.get("seed")
                and current.get("app") == reference.get("app")
                and cur.get("record_cycles")
                != ref.get("record_cycles")):
            regressions.append(
                f"{mode}.record_cycles: {cur.get('record_cycles')} "
                f"!= reference {ref.get('record_cycles')} "
                f"(simulated timing changed)")
    for name, ref in reference.get("figures", {}).items():
        cur = current.get("figures", {}).get(name)
        if cur is None:
            regressions.append(f"{name}: missing from current run")
            continue
        if cur.get("failed", 0):
            regressions.append(
                f"{name}: {cur['failed']} spec(s) failed")
        ref_wall = ref.get("wall_seconds", 0.0)
        if (threshold > 0 and ref_wall > 0
                and cur.get("wall_seconds", 0.0)
                > ref_wall / threshold):
            regressions.append(
                f"{name}.wall_seconds: {cur['wall_seconds']:.1f}s > "
                f"reference {ref_wall:.1f}s / {threshold:g}")
    return regressions


def render_baseline(data: dict) -> str:
    """Compact human-readable rendering for the CLI."""
    lines = [f"bench baseline: {data['app']} scale={data['scale']} "
             f"seed={data['seed']}"]
    for mode, metrics in sorted(data["modes"].items()):
        lines.append(
            f"  {mode:15s} record {metrics['record_events_per_sec']:>12,.0f} ev/s"
            f"  replay {metrics['replay_events_per_sec']:>12,.0f} ev/s"
            f"  verified={'yes' if metrics['replay_verified'] else 'NO'}")
    for name, metrics in sorted(data["figures"].items()):
        lines.append(
            f"  {name:15s} {metrics['wall_seconds']:.2f}s wall "
            f"({metrics['specs']} specs, {metrics['jobs']} jobs, "
            f"{metrics['failed']} failed)")
    return "\n".join(lines)
