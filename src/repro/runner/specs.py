"""Canonical run specifications and their content hashes.

A :class:`RunSpec` names one simulation run -- the experiment suite's
unit of work: recording an app under a DeLorean mode, replaying such a
recording, or executing the app on a conventional (interleaved)
machine under a consistency model.  Two properties make it the key of
the result cache:

* **Canonical** -- a spec resolves to one fully-specified dictionary
  (workload, seed, scale, mode/model knobs, and the *complete*
  :class:`~repro.machine.timing.MachineConfig`, defaults included).
  Changing any machine default in the source therefore changes the
  canonical form, which automatically invalidates stale artifacts.
* **Content-addressed** -- :meth:`RunSpec.content_hash` is the SHA-256
  of the canonical JSON encoding (sorted keys, floats via ``repr``),
  so the hash is stable across processes, interpreter runs and hosts.

Specs are small frozen dataclasses: hashable, picklable (they cross
the process-pool boundary) and order-insensitive to construct.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

from repro.baselines import ConsistencyModel
from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.machine.timing import MachineConfig

#: Bump when the artifact schema or job semantics change in a way that
#: must invalidate every cached result regardless of spec equality.
SPEC_SCHEMA_VERSION = 1

_KINDS = ("record", "replay", "consistency", "explore")


def _canon(value):
    """JSON-stable canonical form: floats via repr, enums via value."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {key: _canon(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, (ExecutionMode, ConsistencyModel)):
        return value.value
    return value


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    ``kind`` selects the job: ``record`` (DeLorean initial execution),
    ``replay`` (perturbed deterministic replay of the corresponding
    record spec), ``consistency`` (conventional interleaved run) or
    ``explore`` (one schedule-perturbed supervised record, the
    schedule explorer's unit of work).
    ``machine_overrides`` is a sorted tuple of ``(field, value)`` pairs
    applied on top of the Table 5 :class:`MachineConfig` defaults.

    The ``schedule_*`` fields are the explicit schedule identity of an
    ``explore`` run (the :class:`~repro.core.arbiter.SchedulePlan` wire
    form).  They participate in :meth:`canonical` like every other
    field, so each explored schedule is content-addressable: the same
    (workload, machine, plan) triple hashes identically on every
    platform and its outcome caches soundly.
    """

    kind: str
    app: str
    mode: str = ""              # ExecutionMode value, record/replay
    model: str = ""             # ConsistencyModel value, consistency
    chunk_size: int = 0         # 0 = the mode's preferred size
    scale: float = 1.0
    seed: int = 11
    use_strata: bool = False    # replay from the stratified PI log
    perturb_seed: int | None = None   # None = noise-free replay
    collect_trace: bool = False       # consistency: keep access trace
    schedule_seed: int | None = None  # explore: PCT priority seed
    schedule_prefix: tuple = ()       # explore: prescribed grant order
    schedule_change_points: tuple = ()  # explore: PCT demotion points
    machine_overrides: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown run kind {self.kind!r} (expected one of "
                f"{', '.join(_KINDS)})")
        if self.kind in ("record", "replay", "explore") and not self.mode:
            raise ConfigurationError(f"{self.kind} specs need a mode")
        if self.kind == "consistency" and not self.model:
            raise ConfigurationError("consistency specs need a model")
        object.__setattr__(self, "machine_overrides",
                           tuple(sorted(tuple(pair) for pair in
                                        self.machine_overrides)))
        object.__setattr__(self, "schedule_prefix",
                           tuple(int(p) for p in self.schedule_prefix))
        object.__setattr__(
            self, "schedule_change_points",
            tuple(sorted(int(c) for c in self.schedule_change_points)))

    # -- constructors ---------------------------------------------------

    @classmethod
    def record(cls, app: str, mode, *, chunk_size: int = 0,
               num_threads: int = 8, simultaneous: int = 0,
               scale: float = 1.0, seed: int = 11) -> "RunSpec":
        """Spec of one recording (the harness ``record_app`` unit)."""
        overrides = [("num_processors", num_threads)]
        if simultaneous:
            overrides.append(("simultaneous_chunks", simultaneous))
        mode = mode.value if isinstance(mode, ExecutionMode) else mode
        return cls(kind="record", app=app, mode=mode,
                   chunk_size=chunk_size, scale=scale, seed=seed,
                   machine_overrides=tuple(overrides))

    @classmethod
    def replay(cls, app: str, mode, *, use_strata: bool = False,
               perturb_seed: int | None = None, chunk_size: int = 0,
               num_threads: int = 8, scale: float = 1.0,
               seed: int = 11) -> "RunSpec":
        """Spec of one perturbed replay (Section 6.2.1 methodology).

        ``perturb_seed=None`` picks the harness default, which derives
        the paper's replay-noise seed from the workload seed.
        """
        if perturb_seed is None:
            perturb_seed = seed * 13 + 7
        mode = mode.value if isinstance(mode, ExecutionMode) else mode
        return cls(kind="replay", app=app, mode=mode,
                   chunk_size=chunk_size, scale=scale, seed=seed,
                   use_strata=use_strata, perturb_seed=perturb_seed,
                   machine_overrides=(("num_processors", num_threads),))

    @classmethod
    def explore(cls, app: str, mode, *, schedule_seed: int | None = None,
                prefix: tuple = (), change_points: tuple = (),
                num_threads: int = 8, chunk_size: int = 0,
                scale: float = 1.0, seed: int = 11) -> "RunSpec":
        """Spec of one schedule-perturbed supervised record (the
        explorer's unit of work; see :mod:`repro.explore`)."""
        mode = mode.value if isinstance(mode, ExecutionMode) else mode
        return cls(kind="explore", app=app, mode=mode,
                   chunk_size=chunk_size, scale=scale, seed=seed,
                   schedule_seed=schedule_seed,
                   schedule_prefix=tuple(prefix),
                   schedule_change_points=tuple(change_points),
                   machine_overrides=(("num_processors", num_threads),))

    @classmethod
    def consistency(cls, app: str, model, *, num_threads: int = 8,
                    collect_trace: bool = False, scale: float = 1.0,
                    seed: int = 11) -> "RunSpec":
        """Spec of one conventional-machine (SC/PC/RC) run."""
        model = (model.value if isinstance(model, ConsistencyModel)
                 else model)
        return cls(kind="consistency", app=app, model=model,
                   scale=scale, seed=seed, collect_trace=collect_trace,
                   machine_overrides=(("num_processors", num_threads),))

    # -- resolution -----------------------------------------------------

    def execution_mode(self) -> ExecutionMode:
        """The resolved DeLorean execution mode."""
        return ExecutionMode(self.mode)

    def consistency_model(self) -> ConsistencyModel:
        """The resolved consistency model."""
        return ConsistencyModel(self.model)

    def machine_config(self) -> MachineConfig:
        """Table 5 defaults with this spec's overrides applied."""
        return MachineConfig(**dict(self.machine_overrides))

    def schedule_plan(self):
        """The resolved :class:`~repro.core.arbiter.SchedulePlan` of an
        explore spec."""
        from repro.core.arbiter import SchedulePlan

        if self.kind != "explore":
            raise ConfigurationError(
                f"{self.kind} specs have no schedule plan")
        return SchedulePlan(seed=self.schedule_seed,
                            prefix=self.schedule_prefix,
                            change_points=self.schedule_change_points)

    @property
    def num_threads(self) -> int:
        """Worker/processor count the spec runs with."""
        return dict(self.machine_overrides).get("num_processors", 8)

    def record_spec(self) -> "RunSpec":
        """The record spec a replay spec depends on."""
        if self.kind != "replay":
            raise ConfigurationError(
                f"{self.kind} specs have no record dependency")
        return RunSpec.record(
            self.app, self.mode, chunk_size=self.chunk_size,
            num_threads=self.num_threads, scale=self.scale,
            seed=self.seed)

    def dependencies(self) -> tuple["RunSpec", ...]:
        """Specs whose artifacts this spec's job consumes."""
        if self.kind == "replay":
            return (self.record_spec(),)
        return ()

    # -- hashing --------------------------------------------------------

    def canonical(self) -> dict:
        """The fully-resolved, JSON-stable dictionary form."""
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "machine_overrides"}
        data["schema"] = SPEC_SCHEMA_VERSION
        data["machine"] = asdict(self.machine_config())
        return _canon(data)

    def canonical_json(self) -> str:
        """Canonical JSON encoding (the hashed byte stream)."""
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of the canonical encoding; the cache key."""
        return hashlib.sha256(
            self.canonical_json().encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable job label for progress reporting."""
        what = self.mode or self.model
        extras = []
        if self.chunk_size:
            extras.append(f"chunk={self.chunk_size}")
        if self.use_strata:
            extras.append("strata")
        if self.kind == "explore":
            if self.schedule_seed is not None:
                extras.append(f"sched={self.schedule_seed}")
            if self.schedule_prefix:
                extras.append(f"prefix={len(self.schedule_prefix)}")
            if self.schedule_change_points:
                extras.append(f"cp={len(self.schedule_change_points)}")
        if self.num_threads != 8:
            extras.append(f"p={self.num_threads}")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return f"{self.kind}:{self.app}/{what}{suffix}"
