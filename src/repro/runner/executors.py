"""Pluggable execution backends for the runner (and the serve layer).

The runner used to be welded to ``ProcessPoolExecutor``; everything
that wanted a different substrate -- the serial in-process baseline,
a persistent service pool, eventually remote workers -- had to go
around it.  :class:`ExecutorBackend` extracts the five operations the
runner actually needs (start, submit, restart-after-crash, shutdown,
and a parallelism flag) so the execution substrate is a constructor
argument instead of a hard-coded class.

Three backends ship today:

* :class:`InlineBackend` -- ``submit`` runs the callable immediately
  in the calling process and returns an already-completed future.
  This is the serial baseline and the zero-dependency fallback; it
  shares *every* code path (cache, retry, reporting, envelopes) with
  the pooled backends.
* :class:`ProcessPoolBackend` -- a ``ProcessPoolExecutor`` wrapper
  that knows how to rebuild itself after a hard worker death
  (``BrokenProcessPool``), preserving the runner's crash-recovery
  semantics.
* :class:`RemoteWorkerBackend` -- the serve tier's fleet substrate.
  Remote ``repro worker`` processes pull jobs over HTTP rather than
  having them pushed through ``submit``, so this backend's job is
  fleet *liveness*: it tracks when each worker was last heard from
  and answers :meth:`~RemoteWorkerBackend.degraded` -- and its
  ``submit`` delegates to a local fallback backend, which is exactly
  the graceful-degradation path (no worker heartbeating => the
  service runs jobs locally through the same five operations).

The contract that makes backends interchangeable: a job is a pure
function of its :class:`~repro.runner.specs.RunSpec`, so the *same
spec must produce byte-identical artifacts on every backend* (the
``encode_artifact`` determinism guard extends across substrates; see
``tests/test_executors.py``).  The remote backend honors it too: an
uploaded artifact is digest-verified against the parity contract
before its terminal journal entry (see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import concurrent.futures
import threading

from repro.errors import ConfigurationError


class ExecutorBackend:
    """The substrate the runner submits job attempts to.

    Lifecycle: ``start(width)`` before the first submit, ``submit``
    per attempt, ``restart(width)`` if the substrate broke (a worker
    died hard enough to poison its siblings), ``shutdown`` at the end
    of the wave.  ``parallel`` advertises whether concurrent submits
    can overlap in time (the runner uses the event-driven sweep loop
    only when they can).
    """

    #: Backend name (the CLI ``--executor`` spelling).
    name = "abstract"

    #: Whether submitted attempts may execute concurrently.
    parallel = False

    def start(self, width: int) -> None:
        """Provision capacity for up to ``width`` concurrent jobs."""

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        """Schedule ``fn(*args)``; return a future for its result."""
        raise NotImplementedError

    def restart(self, width: int) -> None:
        """Rebuild the substrate after it broke; pending futures on
        the old substrate are dead and must be resubmitted."""

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        """Release the substrate's resources."""


class InlineBackend(ExecutorBackend):
    """Execute every submit synchronously in the calling process."""

    name = "inline"
    parallel = False

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 -- future carries it
            future.set_exception(error)
        return future


class ProcessPoolBackend(ExecutorBackend):
    """Fan submits out across a rebuildable worker-process pool.

    ``mp_start_method`` selects how workers are created.  ``None``
    keeps the platform default (``fork`` on Linux: cheapest, and what
    batch sweeps have always used).  Long-lived *threaded* hosts --
    the serve layer's asyncio front end -- must pass ``"spawn"``:
    forking a process with live threads can deadlock the child on
    locks frozen mid-operation, and a pool that forks lazily per
    submit will do exactly that once the event loop is running.
    """

    name = "process"
    parallel = True

    def __init__(self, max_workers: int | None = None,
                 mp_start_method: str | None = None) -> None:
        self.max_workers = max_workers
        self.mp_start_method = mp_start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _width(self, width: int) -> int:
        limit = self.max_workers or width
        return max(1, min(limit, width))

    def _make_pool(self, width: int):
        kwargs = {"max_workers": self._width(width)}
        if self.mp_start_method is not None:
            import multiprocessing

            kwargs["mp_context"] = multiprocessing.get_context(
                self.mp_start_method)
        return concurrent.futures.ProcessPoolExecutor(**kwargs)

    def start(self, width: int) -> None:
        if self._pool is None:
            self._pool = self._make_pool(width)

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        if self._pool is None:
            self.start(width=self.max_workers or 1)
        return self._pool.submit(fn, *args)

    def restart(self, width: int) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = self._make_pool(width)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait,
                                cancel_futures=cancel_futures)
            self._pool = None


#: Never heard from a worker for this long => the fleet is degraded.
DEFAULT_FLEET_WINDOW = 15.0


class RemoteWorkerBackend(ExecutorBackend):
    """Fleet liveness plus a local fallback for degraded operation.

    Remote workers *pull* work (claim/heartbeat/complete over HTTP;
    see :mod:`repro.serve.worker`), so nothing is ever pushed through
    this backend while the fleet is healthy.  What the service needs
    from the backend object is the degradation decision: every worker
    contact lands in :meth:`touch_worker`, and when no worker has been
    heard from within ``window`` seconds -- including "no worker ever
    showed up" -- :meth:`degraded` flips true and the service's local
    loop starts claiming jobs itself, executing them via ``submit``
    on the ``fallback`` backend (inline or a process pool).  The
    moment any worker calls in again the fleet is healthy and local
    claiming stops.  Lifecycle calls pass through to the fallback so
    the degraded path is always warm.
    """

    name = "remote"
    parallel = True

    def __init__(self, fallback: ExecutorBackend | None = None,
                 window: float = DEFAULT_FLEET_WINDOW) -> None:
        self.fallback = fallback or InlineBackend()
        self.window = max(0.1, float(window))
        self._lock = threading.Lock()
        self._last_seen: dict[str, float] = {}

    # -- fleet liveness ------------------------------------------------

    def touch_worker(self, worker: str, now: float) -> None:
        """Record contact (claim/heartbeat/complete) from a worker."""
        with self._lock:
            previous = self._last_seen.get(worker, 0.0)
            self._last_seen[worker] = max(previous, now)

    def workers(self, now: float) -> list[str]:
        """Workers heard from within the window, sorted by name."""
        cutoff = now - self.window
        with self._lock:
            return sorted(worker for worker, seen
                          in self._last_seen.items()
                          if seen >= cutoff)

    def degraded(self, now: float) -> bool:
        """True when no live worker exists and the local fallback
        should claim jobs."""
        cutoff = now - self.window
        with self._lock:
            return not any(seen >= cutoff
                           for seen in self._last_seen.values())

    # -- ExecutorBackend via the fallback ------------------------------

    def start(self, width: int) -> None:
        self.fallback.start(width)

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        """The degraded path: run locally on the fallback backend."""
        return self.fallback.submit(fn, *args)

    def restart(self, width: int) -> None:
        self.fallback.restart(width)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        self.fallback.shutdown(wait=wait, cancel_futures=cancel_futures)


#: Named backend constructors (the ``--executor`` registry).
BACKENDS = {
    "inline": InlineBackend,
    "process": ProcessPoolBackend,
    "remote": RemoteWorkerBackend,
}


def resolve_backend(executor, jobs: int) -> ExecutorBackend:
    """Turn an ``executor`` option into a backend instance.

    ``None`` picks the historical default: inline for a serial runner
    (``jobs == 1``), a process pool otherwise.  A string looks up
    :data:`BACKENDS`; an :class:`ExecutorBackend` instance passes
    through (the caller owns its lifecycle configuration).
    """
    if executor is None:
        executor = "inline" if jobs <= 1 else "process"
    if isinstance(executor, ExecutorBackend):
        return executor
    try:
        factory = BACKENDS[executor]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown executor backend {executor!r} (expected one of: "
            + ", ".join(sorted(BACKENDS)) + ")") from None
    if factory is ProcessPoolBackend:
        return ProcessPoolBackend(max_workers=max(1, jobs))
    if factory is RemoteWorkerBackend:
        fallback = (ProcessPoolBackend(max_workers=max(1, jobs))
                    if jobs > 1 else InlineBackend())
        return RemoteWorkerBackend(fallback=fallback)
    return factory()


__all__ = [
    "BACKENDS",
    "DEFAULT_FLEET_WINDOW",
    "ExecutorBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "RemoteWorkerBackend",
    "resolve_backend",
]
