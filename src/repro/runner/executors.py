"""Pluggable execution backends for the runner (and the serve layer).

The runner used to be welded to ``ProcessPoolExecutor``; everything
that wanted a different substrate -- the serial in-process baseline,
a persistent service pool, eventually remote workers -- had to go
around it.  :class:`ExecutorBackend` extracts the five operations the
runner actually needs (start, submit, restart-after-crash, shutdown,
and a parallelism flag) so the execution substrate is a constructor
argument instead of a hard-coded class.

Two backends ship today:

* :class:`InlineBackend` -- ``submit`` runs the callable immediately
  in the calling process and returns an already-completed future.
  This is the serial baseline and the zero-dependency fallback; it
  shares *every* code path (cache, retry, reporting, envelopes) with
  the pooled backends.
* :class:`ProcessPoolBackend` -- a ``ProcessPoolExecutor`` wrapper
  that knows how to rebuild itself after a hard worker death
  (``BrokenProcessPool``), preserving the runner's crash-recovery
  semantics.

The contract that makes backends interchangeable: a job is a pure
function of its :class:`~repro.runner.specs.RunSpec`, so the *same
spec must produce byte-identical artifacts on every backend* (the
``encode_artifact`` determinism guard extends across substrates; see
``tests/test_executors.py``).  A future remote-worker backend only has
to honor the same five operations and the same envelope protocol.
"""

from __future__ import annotations

import concurrent.futures

from repro.errors import ConfigurationError


class ExecutorBackend:
    """The substrate the runner submits job attempts to.

    Lifecycle: ``start(width)`` before the first submit, ``submit``
    per attempt, ``restart(width)`` if the substrate broke (a worker
    died hard enough to poison its siblings), ``shutdown`` at the end
    of the wave.  ``parallel`` advertises whether concurrent submits
    can overlap in time (the runner uses the event-driven sweep loop
    only when they can).
    """

    #: Backend name (the CLI ``--executor`` spelling).
    name = "abstract"

    #: Whether submitted attempts may execute concurrently.
    parallel = False

    def start(self, width: int) -> None:
        """Provision capacity for up to ``width`` concurrent jobs."""

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        """Schedule ``fn(*args)``; return a future for its result."""
        raise NotImplementedError

    def restart(self, width: int) -> None:
        """Rebuild the substrate after it broke; pending futures on
        the old substrate are dead and must be resubmitted."""

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        """Release the substrate's resources."""


class InlineBackend(ExecutorBackend):
    """Execute every submit synchronously in the calling process."""

    name = "inline"
    parallel = False

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 -- future carries it
            future.set_exception(error)
        return future


class ProcessPoolBackend(ExecutorBackend):
    """Fan submits out across a rebuildable worker-process pool.

    ``mp_start_method`` selects how workers are created.  ``None``
    keeps the platform default (``fork`` on Linux: cheapest, and what
    batch sweeps have always used).  Long-lived *threaded* hosts --
    the serve layer's asyncio front end -- must pass ``"spawn"``:
    forking a process with live threads can deadlock the child on
    locks frozen mid-operation, and a pool that forks lazily per
    submit will do exactly that once the event loop is running.
    """

    name = "process"
    parallel = True

    def __init__(self, max_workers: int | None = None,
                 mp_start_method: str | None = None) -> None:
        self.max_workers = max_workers
        self.mp_start_method = mp_start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _width(self, width: int) -> int:
        limit = self.max_workers or width
        return max(1, min(limit, width))

    def _make_pool(self, width: int):
        kwargs = {"max_workers": self._width(width)}
        if self.mp_start_method is not None:
            import multiprocessing

            kwargs["mp_context"] = multiprocessing.get_context(
                self.mp_start_method)
        return concurrent.futures.ProcessPoolExecutor(**kwargs)

    def start(self, width: int) -> None:
        if self._pool is None:
            self._pool = self._make_pool(width)

    def submit(self, fn, /, *args) -> concurrent.futures.Future:
        if self._pool is None:
            self.start(width=self.max_workers or 1)
        return self._pool.submit(fn, *args)

    def restart(self, width: int) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = self._make_pool(width)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait,
                                cancel_futures=cancel_futures)
            self._pool = None


#: Named backend constructors (the ``--executor`` registry).
BACKENDS = {
    "inline": InlineBackend,
    "process": ProcessPoolBackend,
}


def resolve_backend(executor, jobs: int) -> ExecutorBackend:
    """Turn an ``executor`` option into a backend instance.

    ``None`` picks the historical default: inline for a serial runner
    (``jobs == 1``), a process pool otherwise.  A string looks up
    :data:`BACKENDS`; an :class:`ExecutorBackend` instance passes
    through (the caller owns its lifecycle configuration).
    """
    if executor is None:
        executor = "inline" if jobs <= 1 else "process"
    if isinstance(executor, ExecutorBackend):
        return executor
    try:
        factory = BACKENDS[executor]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown executor backend {executor!r} (expected one of: "
            + ", ".join(sorted(BACKENDS)) + ")") from None
    if factory is ProcessPoolBackend:
        return ProcessPoolBackend(max_workers=max(1, jobs))
    return factory()


__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]
