"""Retry policy and structured failure records.

A transient failure (worker crash, timeout, flaky host) should cost a
sweep one job's worth of retries, not the whole run.  The pool retries
each failed job under a :class:`RetryPolicy` -- bounded attempts with
exponential backoff -- and when the budget is exhausted it emits a
:class:`FailureRecord`: the spec, every attempt's error, the final
traceback, and the total wall-clock spent, preserved as data so a
200-job sweep can finish and report "3 jobs failed, here is exactly
how" instead of dying on the first.

Two hardening measures bound the worst case:

* **Decorrelated jitter** (the AWS "exponential backoff and jitter"
  scheme): each delay is drawn uniformly from ``[base, 3 * previous]``
  rather than marching up a fixed ladder, so a burst of jobs that
  failed together does not retry in lockstep and re-collide.  The draw
  is seeded per (job, attempt), keeping sweeps reproducible.
* **A total-elapsed-time cap** (``max_elapsed``): a pathological job
  whose attempts are individually slow stops retrying once its overall
  wall-clock budget is spent, even with attempts remaining.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.runner.specs import RunSpec


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with jittered exponential backoff.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  Without jitter, the delay before retry *n* (1-based) is
    ``backoff_base * backoff_factor ** (n - 1)``, capped at
    ``backoff_max`` seconds; with jitter (the default) it is the
    decorrelated draw described in the module docstring, under the
    same cap.  ``max_elapsed`` additionally stops retrying once a
    job's total wall-clock (attempts plus backoff) exceeds the cap;
    None disables the elapsed check.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: bool = True
    max_elapsed: float | None = 120.0

    def delay(self, retry_index: int,
              previous_delay: float | None = None,
              rng: random.Random | None = None) -> float:
        """Backoff before the ``retry_index``-th retry (1-based).

        ``previous_delay`` feeds the decorrelated-jitter recurrence
        (None on the first retry); ``rng`` supplies the randomness so
        the pool can seed it deterministically per job.  Both are
        optional: without them the method degrades to the classic
        deterministic ladder.
        """
        ladder = min(self.backoff_max,
                     self.backoff_base *
                     self.backoff_factor ** (retry_index - 1))
        if not self.jitter:
            return ladder
        if rng is None:
            rng = random
        previous = (previous_delay if previous_delay is not None
                    else self.backoff_base)
        high = max(self.backoff_base, previous * 3.0)
        return min(self.backoff_max,
                   rng.uniform(self.backoff_base, high))

    def should_retry(self, attempts_made: int,
                     elapsed: float = 0.0) -> bool:
        """Whether another attempt fits both budgets."""
        if attempts_made >= self.max_attempts:
            return False
        if self.max_elapsed is not None and elapsed >= self.max_elapsed:
            return False
        return True

    def attempt_rng(self, spec_hash: str,
                    attempt: int) -> random.Random:
        """Deterministic jitter source for one (job, attempt)."""
        return random.Random(f"{spec_hash}:{attempt}")


def retrying_call(fn, *, policy: RetryPolicy | None = None,
                  seed: str = "call",
                  retry_on: tuple = (Exception,),
                  sleep=time.sleep, on_retry=None):
    """Call ``fn()`` under ``policy`` with decorrelated-jitter backoff.

    The network-call twin of the pool's per-job retry loop: every
    worker<->server RPC goes through here so a flaky connection costs
    jittered backoff, not a lost job.  ``seed`` keys the deterministic
    jitter stream (pass something stable per logical call site);
    ``retry_on`` limits which exception types are transient;
    ``on_retry(attempt, delay, error)`` observes each backoff (worker
    logging).  The final failure re-raises the last exception.
    """
    policy = policy or RetryPolicy()
    started = time.monotonic()
    previous_delay = None
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as error:
            elapsed = time.monotonic() - started
            if not policy.should_retry(attempt, elapsed):
                raise
            delay = policy.delay(attempt, previous_delay,
                                 policy.attempt_rng(seed, attempt))
            previous_delay = delay
            if on_retry is not None:
                on_retry(attempt, delay, error)
            sleep(delay)


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt of one job."""

    attempt: int
    error_type: str
    message: str
    traceback: str = ""
    wall_time: float = 0.0

    def brief(self) -> str:
        """One-line description of the attempt."""
        return (f"attempt {self.attempt}: {self.error_type}: "
                f"{self.message}")


@dataclass
class FailureRecord:
    """Terminal failure of one job after its retry budget ran out.

    ``total_elapsed`` is the job's overall wall-clock -- attempts and
    backoff sleeps included -- so reports can distinguish "failed fast
    three times" from "burned two minutes of budget".
    """

    spec: RunSpec
    attempts: list[AttemptFailure] = field(default_factory=list)
    total_elapsed: float = 0.0

    @property
    def last(self) -> AttemptFailure:
        """The attempt that exhausted the budget."""
        return self.attempts[-1]

    @property
    def error_type(self) -> str:
        """Error class name of the final attempt."""
        return self.last.error_type

    def summary(self) -> str:
        """Multi-line report: the job, then every attempt."""
        lines = [f"{self.spec.label()} failed after "
                 f"{len(self.attempts)} attempt(s) in "
                 f"{self.total_elapsed:.2f}s:"]
        lines.extend(f"  {attempt.brief()}"
                     for attempt in self.attempts)
        return "\n".join(lines)
