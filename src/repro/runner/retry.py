"""Retry policy and structured failure records.

A transient failure (worker crash, timeout, flaky host) should cost a
sweep one job's worth of retries, not the whole run.  The pool retries
each failed job under a :class:`RetryPolicy` -- bounded attempts with
exponential backoff -- and when the budget is exhausted it emits a
:class:`FailureRecord`: the spec, every attempt's error, and the final
traceback, preserved as data so a 200-job sweep can finish and report
"3 jobs failed, here is exactly how" instead of dying on the first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner.specs import RunSpec


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  The delay before retry *n* (1-based) is
    ``backoff_base * backoff_factor ** (n - 1)``, capped at
    ``backoff_max`` seconds.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        return min(self.backoff_max,
                   self.backoff_base *
                   self.backoff_factor ** (retry_index - 1))

    def should_retry(self, attempts_made: int) -> bool:
        """Whether another attempt fits the budget."""
        return attempts_made < self.max_attempts


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt of one job."""

    attempt: int
    error_type: str
    message: str
    traceback: str = ""
    wall_time: float = 0.0

    def brief(self) -> str:
        """One-line description of the attempt."""
        return (f"attempt {self.attempt}: {self.error_type}: "
                f"{self.message}")


@dataclass
class FailureRecord:
    """Terminal failure of one job after its retry budget ran out."""

    spec: RunSpec
    attempts: list[AttemptFailure] = field(default_factory=list)

    @property
    def last(self) -> AttemptFailure:
        """The attempt that exhausted the budget."""
        return self.attempts[-1]

    @property
    def error_type(self) -> str:
        """Error class name of the final attempt."""
        return self.last.error_type

    def summary(self) -> str:
        """Multi-line report: the job, then every attempt."""
        lines = [f"{self.spec.label()} failed after "
                 f"{len(self.attempts)} attempt(s):"]
        lines.extend(f"  {attempt.brief()}"
                     for attempt in self.attempts)
        return "\n".join(lines)
