"""repro.debugger: time-travel debugging on top of deterministic replay.

The paper's closing argument for DeLorean is that a deterministic
replay substrate turns concurrency-bug hunting from statistics into
navigation: the offending execution is recorded once and can then be
examined *at any point, as many times as needed*.  This package is
that navigator.  A :class:`ReplayController` steps a replay machine by
global commits, pauses it at exact commit boundaries with committed
architectural state exposed, evaluates chunk-granular breakpoints and
watchpoints, and travels backward by restoring the nearest checkpoint
and re-executing a bounded suffix.  :class:`DebuggerShell` is the
interactive ``repro debug`` front end over the same API.
"""

from repro.debugger.breakpoints import Breakpoint, BreakpointTable
from repro.debugger.checkpoints import CheckpointIndex
from repro.debugger.controller import (
    CommitView,
    ReplayController,
    StopInfo,
)
from repro.debugger.loading import (
    load_debug_target,
    load_recording_artifact,
)
from repro.debugger.repl import DebuggerShell

__all__ = [
    "Breakpoint",
    "BreakpointTable",
    "CheckpointIndex",
    "CommitView",
    "DebuggerShell",
    "ReplayController",
    "StopInfo",
    "load_debug_target",
    "load_recording_artifact",
]
