"""Breakpoints and watchpoints at chunk-commit granularity.

DeLorean's replay is a sequence of *global commits* (processor chunks
and DMA bursts), so the natural debugger grain is the commit, not the
instruction: a breakpoint fires when the commit that just linearized
matches the condition.  Watchpoints follow the machine's own visibility
rules -- writes are word-precise (the commit's write buffer), reads are
line-granular (the chunk's read set, which is what the hardware
signatures track).

Every breakpoint takes an optional ``when`` predicate over the
:class:`~repro.debugger.controller.CommitView`; the breakpoint fires
only when both the structural condition and the predicate hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError

#: The structural conditions a breakpoint can express.
KINDS = ("commit", "write", "read", "squash", "interrupt", "dma",
         "divergence")


@dataclass
class Breakpoint:
    """One break/watch condition, evaluated at every commit boundary.

    ``proc`` restricts ``commit``/``squash``/``interrupt`` kinds to one
    processor (None = any).  ``address`` is the watched word for
    ``write`` and ``read`` kinds.  ``when`` is an arbitrary predicate
    over the commit view, AND-ed with the structural condition.
    """

    number: int
    kind: str
    proc: int | None = None
    address: int | None = None
    when: Optional[Callable] = None
    enabled: bool = True
    temporary: bool = False
    hits: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown breakpoint kind {self.kind!r} "
                f"(expected one of {', '.join(KINDS)})")
        if self.kind in ("write", "read") and self.address is None:
            raise ConfigurationError(
                f"{self.kind} watchpoints need an address")

    def matches(self, view, line_of: Callable[[int], int]) -> bool:
        """Does this breakpoint fire on ``view``?  (``divergence``
        breakpoints are matched by the controller, not here.)"""
        if not self.enabled:
            return False
        hit = False
        if self.kind == "commit":
            hit = (not view.is_dma
                   and (self.proc is None or view.proc == self.proc))
        elif self.kind == "dma":
            hit = view.is_dma
        elif self.kind == "write":
            hit = self.address in view.writes
        elif self.kind == "read":
            hit = line_of(self.address) in view.read_lines
        elif self.kind == "squash":
            hit = any(self.proc is None or proc == self.proc
                      for proc, _, _ in view.squashes)
        elif self.kind == "interrupt":
            hit = any(self.proc is None or proc == self.proc
                      for proc, _ in view.interrupts)
        if hit and self.when is not None:
            hit = bool(self.when(view))
        return hit

    def describe(self) -> str:
        """One-line rendering for ``info breaks``."""
        parts = [f"#{self.number}", self.kind]
        if self.address is not None:
            parts.append(f"0x{self.address:x}")
        if self.proc is not None:
            parts.append(f"p{self.proc}")
        if self.when is not None:
            parts.append("when=<predicate>")
        if self.temporary:
            parts.append("(temporary)")
        if not self.enabled:
            parts.append("(disabled)")
        parts.append(f"hits={self.hits}")
        return " ".join(parts)


@dataclass
class BreakpointTable:
    """The debugger's breakpoint set (numbered, GDB-style)."""

    breakpoints: list[Breakpoint] = field(default_factory=list)
    _next_number: int = 1

    def add(self, kind: str, proc: int | None = None,
            address: int | None = None,
            when: Optional[Callable] = None,
            temporary: bool = False) -> Breakpoint:
        """Create and register a breakpoint; returns it."""
        bp = Breakpoint(number=self._next_number, kind=kind, proc=proc,
                        address=address, when=when, temporary=temporary)
        self._next_number += 1
        self.breakpoints.append(bp)
        return bp

    def remove(self, number: int) -> bool:
        """Delete breakpoint ``number``; False when absent."""
        before = len(self.breakpoints)
        self.breakpoints = [bp for bp in self.breakpoints
                            if bp.number != number]
        return len(self.breakpoints) < before

    def clear(self) -> None:
        """Delete every breakpoint."""
        self.breakpoints.clear()

    def __len__(self) -> int:
        return len(self.breakpoints)

    def __iter__(self):
        return iter(self.breakpoints)

    def matches(self, view, line_of) -> list[Breakpoint]:
        """All breakpoints firing on ``view``, hit counts updated;
        temporary hits are removed after matching."""
        hits = [bp for bp in self.breakpoints
                if bp.kind != "divergence" and bp.matches(view, line_of)]
        for bp in hits:
            bp.hits += 1
        if any(bp.temporary for bp in hits):
            self.breakpoints = [
                bp for bp in self.breakpoints
                if not (bp.temporary and bp in hits)]
        return hits

    def divergence_breakpoints(self) -> list[Breakpoint]:
        """Enabled ``divergence`` breakpoints (hit counting only; a
        divergence always stops the controller regardless)."""
        hits = [bp for bp in self.breakpoints
                if bp.kind == "divergence" and bp.enabled]
        for bp in hits:
            bp.hits += 1
        return hits
