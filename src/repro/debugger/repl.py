"""The interactive ``repro debug`` shell.

A thin :mod:`cmd`-based front end over
:class:`~repro.debugger.controller.ReplayController`: every command
maps onto a controller operation, so anything the REPL can do a script
can do through the Python API.  The shell optionally appends a JSONL
session log -- one object per command plus one per resulting stop or
printed value -- which is what the CI smoke job uploads as its
artifact.

::

    (repro-dbg) watch 0x40
    watchpoint #1: write 0x40
    (repro-dbg) run
    [gcc 17] breakpoint #1: p2 c5 (41 instr) wrote 0x40=3
    (repro-dbg) rstep
    [gcc 16] goto: p0 c6 (38 instr) ...
    (repro-dbg) print 0x40
    0x40 = 2
"""

from __future__ import annotations

import cmd
import json

from repro.debugger.controller import ReplayController, StopInfo
from repro.errors import ReproError
from repro.telemetry.perfetto import write_chrome_trace
from repro.telemetry.tracer import EventTracer


def _parse_int(text: str, what: str = "number") -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise ReproError(f"{what} must be an integer (got {text!r})")


def _parse_proc(token: str) -> int:
    if token.startswith("p") and token[1:].isdigit():
        return int(token[1:])
    return _parse_int(token, "processor")


class DebuggerShell(cmd.Cmd):
    """Interactive (or scripted) time-travel debugging session."""

    intro = ("repro time-travel debugger -- type 'help' for commands, "
             "'quit' to leave")
    prompt = "(repro-dbg) "

    def __init__(self, controller: ReplayController,
                 session_log: str | None = None,
                 stdin=None, stdout=None) -> None:
        super().__init__(stdin=stdin, stdout=stdout)
        if stdin is not None:
            self.use_rawinput = False
        self.controller = controller
        self._session = (open(session_log, "a", encoding="utf-8")
                         if session_log else None)
        self._trace_path: str | None = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _log(self, **entry) -> None:
        if self._session is None:
            return
        self._session.write(json.dumps(entry, default=repr) + "\n")
        self._session.flush()

    def _show_stop(self, stop: StopInfo | None) -> None:
        if stop is None:
            self._emit(f"[gcc {self.controller.gcc}] (no stop)")
            return
        self._emit(stop.describe())
        self._log(event="stop", reason=stop.reason, gcc=stop.gcc,
                  breakpoints=[bp.number for bp in stop.breakpoints],
                  message=stop.message)

    def precmd(self, line: str) -> str:
        if line and line.split()[0] != "EOF":
            self._log(event="command", line=line)
        return line

    def onecmd(self, line: str) -> bool:
        try:
            return super().onecmd(line)
        except ReproError as error:
            self._emit(f"error: {error}")
            self._log(event="error", message=str(error))
            return False

    def emptyline(self) -> bool:
        return False

    def default(self, line: str) -> bool:
        self._emit(f"unknown command: {line!r} (try 'help')")
        return False

    # ------------------------------------------------------------------
    # Motion
    # ------------------------------------------------------------------

    def do_run(self, arg: str) -> bool:
        """run -- replay forward until a breakpoint fires or the
        recording ends (alias: continue, c)."""
        self._show_stop(self.controller.cont())
        return False

    def do_continue(self, arg: str) -> bool:
        """continue -- alias for run."""
        return self.do_run(arg)

    def do_c(self, arg: str) -> bool:
        """c -- alias for run."""
        return self.do_run(arg)

    def do_step(self, arg: str) -> bool:
        """step [N] -- advance exactly N global commits (default 1)."""
        count = _parse_int(arg.strip(), "step count") if arg.strip() \
            else 1
        self._show_stop(self.controller.step(count))
        return False

    def do_s(self, arg: str) -> bool:
        """s -- alias for step."""
        return self.do_step(arg)

    def do_rstep(self, arg: str) -> bool:
        """rstep [N] -- step backward exactly N commits (default 1)."""
        count = _parse_int(arg.strip(), "rstep count") if arg.strip() \
            else 1
        self._show_stop(self.controller.rstep(count))
        return False

    def do_rs(self, arg: str) -> bool:
        """rs -- alias for rstep."""
        return self.do_rstep(arg)

    def do_goto(self, arg: str) -> bool:
        """goto GCC -- land exactly on a global commit count."""
        if not arg.strip():
            raise ReproError("goto needs a target GCC")
        self._show_stop(
            self.controller.goto(_parse_int(arg.strip(), "gcc")))
        return False

    # ------------------------------------------------------------------
    # Breakpoints
    # ------------------------------------------------------------------

    def do_break(self, arg: str) -> bool:
        """break commit [pN] | dma | squash [pN] | interrupt [pN] |
        divergence -- break on the matching global commit.  With no
        arguments, lists breakpoints."""
        tokens = arg.split()
        if not tokens:
            return self.do_info("breaks")
        kind = tokens[0]
        proc = _parse_proc(tokens[1]) if len(tokens) > 1 else None
        bp = self.controller.breakpoints.add(kind, proc=proc)
        self._emit(f"breakpoint {bp.describe()}")
        self._log(event="breakpoint", number=bp.number, kind=kind,
                  proc=proc)
        return False

    def do_watch(self, arg: str) -> bool:
        """watch ADDR | watch read ADDR -- stop when a commit writes
        the word (write watch) or reads its line (read watch)."""
        tokens = arg.split()
        if not tokens:
            raise ReproError("watch needs an address")
        kind = "write"
        if tokens[0] == "read":
            kind = "read"
            tokens = tokens[1:]
        elif tokens[0] == "write":
            tokens = tokens[1:]
        if not tokens:
            raise ReproError("watch needs an address")
        address = _parse_int(tokens[0], "address")
        bp = self.controller.breakpoints.add(kind, address=address)
        self._emit(f"watchpoint {bp.describe()}")
        self._log(event="watchpoint", number=bp.number, kind=kind,
                  address=address)
        return False

    def do_delete(self, arg: str) -> bool:
        """delete [N] -- remove breakpoint N (all when omitted)."""
        if not arg.strip():
            self.controller.breakpoints.clear()
            self._emit("all breakpoints deleted")
            return False
        number = _parse_int(arg.strip(), "breakpoint number")
        if self.controller.breakpoints.remove(number):
            self._emit(f"deleted breakpoint #{number}")
        else:
            self._emit(f"no breakpoint #{number}")
        return False

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def do_print(self, arg: str) -> bool:
        """print ADDR [COUNT] -- committed memory words at the current
        GCC (alias: p)."""
        tokens = arg.split()
        if not tokens:
            raise ReproError("print needs an address")
        address = _parse_int(tokens[0], "address")
        count = _parse_int(tokens[1], "count") if len(tokens) > 1 else 1
        for offset in range(count):
            word = address + offset * 8
            value = self.controller.read_word(word)
            self._emit(f"0x{word:x} = {value}")
            self._log(event="print", address=word, value=value,
                      gcc=self.controller.gcc)
        return False

    def do_p(self, arg: str) -> bool:
        """p -- alias for print."""
        return self.do_print(arg)

    def do_threads(self, arg: str) -> bool:
        """threads -- committed per-processor state at the current
        GCC."""
        rows = self.controller.thread_summary()
        for row in rows:
            flags = []
            if row["in_handler"]:
                flags.append("handler")
            if row["finished"]:
                flags.append("finished")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            self._emit(
                f"p{row['proc']}: {row['committed_chunks']} chunks "
                f"committed, op {row['op_index']}, acc "
                f"{row['accumulator']}, {row['speculative_chunks']} "
                f"speculative{suffix}")
        self._log(event="threads", gcc=self.controller.gcc, rows=rows)
        return False

    def do_logs(self, arg: str) -> bool:
        """logs -- input-log cursor positions at the current GCC."""
        cursors = self.controller.log_cursors()
        io = ", ".join(f"p{proc}:{used}" for proc, used
                       in sorted(cursors["io"].items()))
        irq = ", ".join(f"p{proc}:{used}" for proc, used
                        in sorted(cursors["interrupt"].items()))
        self._emit(f"io: {io or '-'}")
        self._emit(f"dma: {cursors['dma']}")
        self._emit(f"interrupt: {irq or '-'}")
        self._log(event="logs", gcc=self.controller.gcc,
                  cursors=cursors)
        return False

    def do_where(self, arg: str) -> bool:
        """where -- current position and last stop."""
        controller = self.controller
        self._emit(f"gcc {controller.gcc} of "
                   f"{controller.total_commits}"
                   + (" (finished)" if controller.finished else ""))
        if controller.current is not None:
            self._emit(f"last commit: {controller.current.describe()}")
        return False

    def do_info(self, arg: str) -> bool:
        """info -- breakpoints, checkpoints and position."""
        table = self.controller.breakpoints
        if len(table) == 0:
            self._emit("no breakpoints")
        for bp in table:
            self._emit(bp.describe())
        positions = self.controller.checkpoints.positions()
        self._emit(f"checkpoints at gcc: {[0] + positions}")
        return self.do_where(arg)

    def do_checkpoints(self, arg: str) -> bool:
        """checkpoints -- restore points available for goto/rstep."""
        positions = self.controller.checkpoints.positions()
        self._emit(f"checkpoints at gcc: {[0] + positions} "
                   f"(interval {self.controller.checkpoints.interval})")
        return False

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def do_trace(self, arg: str) -> bool:
        """trace on [PATH] | trace off -- capture debugger telemetry;
        on quit the Perfetto trace is written to PATH (default
        debug-session-trace.json).  Machine-level spans attach from the
        next rebuild (goto/rstep) onward."""
        tokens = arg.split()
        if not tokens or tokens[0] not in ("on", "off"):
            raise ReproError("usage: trace on [PATH] | trace off")
        if tokens[0] == "on":
            if not self.controller.tracer.enabled:
                self.controller.tracer = EventTracer()
            self._trace_path = (tokens[1] if len(tokens) > 1
                                else "debug-session-trace.json")
            self._emit(f"tracing on -> {self._trace_path}")
        else:
            self._flush_trace()
            self._emit("tracing off")
        return False

    def _flush_trace(self) -> None:
        tracer = self.controller.tracer
        if self._trace_path and tracer.enabled and tracer.events:
            write_chrome_trace(list(tracer.events), self._trace_path)
            self._emit(f"wrote {len(tracer.events)} trace events to "
                       f"{self._trace_path}")
        self._trace_path = None

    # ------------------------------------------------------------------
    # Exit
    # ------------------------------------------------------------------

    def do_quit(self, arg: str) -> bool:
        """quit -- end the session."""
        self._flush_trace()
        self._log(event="quit", gcc=self.controller.gcc)
        if self._session is not None:
            self._session.close()
            self._session = None
        return True

    def do_q(self, arg: str) -> bool:
        """q -- alias for quit."""
        return self.do_quit(arg)

    def do_EOF(self, arg: str) -> bool:
        """End of input ends the session."""
        return self.do_quit(arg)
