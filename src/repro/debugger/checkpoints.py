"""The debugger's checkpoint index: restore points for time travel.

Reverse execution on top of deterministic replay is restore + re-run:
to land on GCC = n the controller restores the nearest checkpoint at or
before n and re-executes forward.  The index merges two sources of
checkpoints -- those taken during the *recording* (Appendix B interval
checkpoints shipped inside the artifact) and those the debugger takes
itself while replaying forward (every ``interval`` commits, via
:meth:`SystemCheckpoint.capture_committed`).  Either way a checkpoint
is an :class:`~repro.core.interval.IntervalCheckpoint`, because that is
what ``build_replay_machine(start_checkpoint=...)`` consumes.

With checkpoints every k commits, ``goto n`` re-executes at most k - 1
commits -- O(N / k) of the recording for the farthest jump after one
forward pass.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.interval import IntervalCheckpoint


class CheckpointIndex:
    """Interval checkpoints keyed by GCC, deduplicated and sorted.

    GCC 0 is always available implicitly: :meth:`at_or_before` returns
    None for it, meaning "start a fresh machine from the beginning".
    """

    def __init__(self, interval: int = 64) -> None:
        self.interval = max(1, interval)
        self._by_gcc: dict[int, IntervalCheckpoint] = {}
        self._order: list[int] = []

    def __len__(self) -> int:
        return len(self._by_gcc)

    def __contains__(self, gcc: int) -> bool:
        return gcc in self._by_gcc

    def positions(self) -> list[int]:
        """Every checkpointed GCC, ascending (0 is implicit)."""
        return list(self._order)

    def add(self, checkpoint: IntervalCheckpoint) -> bool:
        """Index a checkpoint; False when its GCC is already covered."""
        gcc = checkpoint.commit_index
        if gcc <= 0 or gcc in self._by_gcc:
            return False
        self._by_gcc[gcc] = checkpoint
        position = bisect_right(self._order, gcc)
        self._order.insert(position, gcc)
        return True

    def seed_from_recording(self, recording) -> int:
        """Adopt the recording's own interval checkpoints (if it was
        recorded with ``checkpoint_every``); returns how many."""
        store = getattr(recording, "interval_checkpoints", None)
        if store is None:
            return 0
        added = 0
        for checkpoint in store:
            if self.add(checkpoint):
                added += 1
        return added

    def at_or_before(self, gcc: int) -> IntervalCheckpoint | None:
        """The newest checkpoint with GCC <= ``gcc``, or None meaning
        "restart from GCC 0"."""
        position = bisect_right(self._order, gcc)
        if position == 0:
            return None
        return self._by_gcc[self._order[position - 1]]

    def due(self, gcc: int) -> bool:
        """Should the controller take a checkpoint at this boundary?"""
        return gcc % self.interval == 0 and gcc not in self._by_gcc
