"""ReplayController: time-travel debugging over deterministic replay.

The controller owns a replay :class:`~repro.machine.system.ChunkMachine`
and drives its event engine one dispatch at a time instead of running
it to completion.  An observer hooked into the machine fires at the
exact linearization point of every global commit (processor chunk or
DMA burst); there the controller verifies the commit against the
recording, evaluates breakpoints, takes periodic checkpoints, and --
when it decides to stop -- freezes the commit pipeline mid-dispatch
with :meth:`ChunkMachine.pause_at_boundary`.  A machine paused this way
exposes *committed* architectural state exactly: memory holds precisely
the first GCC commits' writes, and each processor's committed thread
state is the start state of its oldest speculative chunk.

Backward motion is restore + re-run, the only way time travel can work
on a record/replay substrate: ``goto n`` restores the nearest
checkpoint at or before n (from the :class:`CheckpointIndex`) into a
fresh replay machine and re-executes forward to n with breakpoints
disabled.  With checkpoints every k commits that is at most k - 1
re-executed commits, and ``rstep`` -- land exactly one commit back --
costs the same bounded re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.recorder import Recording
from repro.debugger.breakpoints import BreakpointTable
from repro.debugger.checkpoints import CheckpointIndex
from repro.errors import ConfigurationError, DeadlockError, \
    ReplayDivergenceError
from repro.machine.checkpoint import SystemCheckpoint
from repro.machine.system import build_replay_machine
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class CommitView:
    """One global commit as the debugger saw it linearize.

    ``gcc`` is the commit's position in the global order (1-based: the
    n-th commit leaves the machine at GCC = n).  ``squashes`` and
    ``interrupts`` are the events that happened *since the previous
    boundary* and are attributed to this commit: squashes its
    propagation caused, handlers injected while it was in flight.
    """

    gcc: int
    proc: int | str
    seq: int
    is_dma: bool
    is_handler: bool
    instructions: int
    writes: dict[int, int]
    read_lines: frozenset[int]
    write_lines: frozenset[int]
    fingerprint: tuple
    cycle: float
    squashes: tuple = ()
    interrupts: tuple = ()

    def describe(self) -> str:
        """One-line rendering for the REPL."""
        if self.is_dma:
            head = f"dma burst {self.seq}"
        else:
            head = f"p{self.proc} c{self.seq}"
            if self.is_handler:
                head += " [handler]"
            head += f" ({self.instructions} instr)"
        if self.writes:
            sample = ", ".join(
                f"0x{a:x}={v}" for a, v
                in sorted(self.writes.items())[:4])
            more = len(self.writes) - min(4, len(self.writes))
            head += f" wrote {sample}" + (f" +{more}" if more else "")
        for proc, victims, cause in self.squashes:
            head += f"; squashed p{proc} c{list(victims)} ({cause})"
        for proc, vector in self.interrupts:
            head += f"; irq v{vector} -> p{proc}"
        return head


@dataclass(frozen=True)
class StopInfo:
    """Why and where the controller stopped."""

    reason: str  # "breakpoint" | "step" | "goto" | "divergence" | "end"
    gcc: int
    commit: CommitView | None = None
    breakpoints: tuple = ()
    message: str = ""

    def describe(self) -> str:
        """One-line rendering for the REPL."""
        text = f"[gcc {self.gcc}] {self.reason}"
        if self.breakpoints:
            text += " " + ", ".join(
                f"#{bp.number}" for bp in self.breakpoints)
        if self.commit is not None:
            text += f": {self.commit.describe()}"
        if self.message:
            text += f" -- {self.message}"
        return text


class _Observer:
    """The machine-side hook: accumulates between-boundary events and
    forwards each commit boundary to the controller."""

    def __init__(self, controller: "ReplayController") -> None:
        self.controller = controller
        self.squashes: list[tuple] = []
        self.interrupts: list[tuple] = []

    def _drain(self) -> tuple[tuple, tuple]:
        squashes = tuple(self.squashes)
        interrupts = tuple(self.interrupts)
        self.squashes.clear()
        self.interrupts.clear()
        return squashes, interrupts

    def on_commit(self, chunk, fingerprint: tuple, count: int) -> None:
        squashes, interrupts = self._drain()
        controller = self.controller
        controller._boundary(CommitView(
            gcc=controller._base + count,
            proc=chunk.processor,
            seq=chunk.logical_seq,
            is_dma=False,
            is_handler=chunk.is_handler,
            instructions=fingerprint[4],
            writes=dict(fingerprint[5]),
            read_lines=frozenset(chunk.read_lines),
            write_lines=frozenset(chunk.write_lines),
            fingerprint=fingerprint,
            cycle=controller._machine.engine.now,
            squashes=squashes,
            interrupts=interrupts,
        ))

    def on_dma(self, writes: dict[int, int], fingerprint: tuple,
               count: int) -> None:
        squashes, interrupts = self._drain()
        controller = self.controller
        line_of = controller._machine.config.line_of
        controller._boundary(CommitView(
            gcc=controller._base + count,
            proc="dma",
            seq=fingerprint[1],
            is_dma=True,
            is_handler=False,
            instructions=0,
            writes=dict(writes),
            read_lines=frozenset(),
            write_lines=frozenset(line_of(a) for a in writes),
            fingerprint=fingerprint,
            cycle=controller._machine.engine.now,
            squashes=squashes,
            interrupts=interrupts,
        ))

    def on_squash(self, proc: int, victim_seqs: list[int],
                  cause: str) -> None:
        self.squashes.append((proc, tuple(victim_seqs), cause))

    def on_interrupt(self, proc: int, event) -> None:
        self.interrupts.append((proc, event.vector))


class ReplayController:
    """Scriptable time-travel debugger over one recording.

    ::

        controller = ReplayController(recording, checkpoint_every=32)
        controller.breakpoints.add("write", address=0x40)
        stop = controller.cont()       # runs to the watchpoint
        stop = controller.rstep()      # exactly one commit back
        controller.read_word(0x40)     # committed memory at this GCC

    ``verify=True`` (the default) compares every replayed commit
    against the recording's fingerprint sequence and stops with reason
    ``divergence`` on the first mismatch -- the debugger doubles as a
    divergence bisector.
    """

    def __init__(
        self,
        recording: Recording,
        checkpoint_every: int = 64,
        verify: bool = True,
        tracer: Tracer | None = None,
        start_checkpoint=None,
    ) -> None:
        self.recording = recording
        #: Segment support: a commit-index-0 interval checkpoint that
        #: anchors the machine's initial state (a stitched recording's
        #: later segments start mid-program; see repro.guard.degrade).
        self._start_checkpoint = start_checkpoint
        self.verify = verify
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.breakpoints = BreakpointTable()
        self.checkpoints = CheckpointIndex(interval=checkpoint_every)
        self.checkpoints.seed_from_recording(recording)
        self.total_commits = len(recording.fingerprints)
        self.last_stop: StopInfo | None = None
        self.current: CommitView | None = None
        #: Commits re-executed by the most recent goto/rstep (the
        #: O(N / checkpoint interval) bound under test).
        self.last_reexecuted = 0
        self.finished = False
        self._target: int | None = None
        self._target_reason = "step"
        self._honor_breakpoints = True
        self._stop: StopInfo | None = None
        self._machine_dead = False
        self._rebuild(None)

    # ------------------------------------------------------------------
    # Machine lifecycle
    # ------------------------------------------------------------------

    @property
    def gcc(self) -> int:
        """Global commit count the machine is paused at."""
        return self._base + len(self._machine._fingerprints)

    @property
    def machine(self):
        """The live replay machine (read-only inspection)."""
        return self._machine

    def _rebuild(self, checkpoint) -> None:
        """Fresh replay machine from ``checkpoint`` (None = GCC 0).

        ``use_strata=False`` always: a checkpoint may fall inside a
        stratum, and the debugger needs the totally-ordered PI log for
        exact GCC positioning.
        """
        if checkpoint is None:
            checkpoint = self._start_checkpoint
        self._machine = build_replay_machine(
            self.recording,
            use_strata=False,
            start_checkpoint=checkpoint,
            tracer=self.tracer,
        )
        self._machine.observer = _Observer(self)
        self._base = checkpoint.commit_index if checkpoint else 0
        self._armed = False
        self._budget: int | None = None
        self._dispatched = 0
        self.finished = False
        self._machine_dead = False
        self.current = None

    def _boundary(self, view: CommitView) -> None:
        """Observer callback at a commit's linearization point."""
        self.current = view
        machine = self._machine
        stops: list = []
        reason = None
        message = ""
        if self.verify and view.gcc - 1 < self.total_commits:
            expected = self.recording.fingerprints[view.gcc - 1]
            if view.fingerprint != expected:
                reason = "divergence"
                message = (f"replayed {view.fingerprint!r} but the "
                           f"recording has {expected!r} at gcc "
                           f"{view.gcc}; see repro.telemetry.forensics"
                           f".diagnose_replay for a full diagnosis")
                stops.extend(self.breakpoints.divergence_breakpoints())
                self._machine_dead = True
        if reason is None and self.checkpoints.due(view.gcc):
            self._maybe_checkpoint(view.gcc)
        if reason is None and self._target is not None \
                and view.gcc >= self._target:
            reason = self._target_reason
        if self._honor_breakpoints and not self._machine_dead:
            hits = self.breakpoints.matches(
                view, self._machine.config.line_of)
            if hits:
                stops.extend(hits)
                if reason is None:
                    reason = "breakpoint"
        if reason is None:
            return
        machine.pause_at_boundary()
        self._stop = StopInfo(
            reason=reason, gcc=view.gcc, commit=view,
            breakpoints=tuple(stops), message=message)
        if self.tracer.enabled:
            self.tracer.instant(
                "debugger", f"stop {reason} @ gcc {view.gcc}",
                view.cycle, category="debug", gcc=view.gcc,
                reason=reason,
                breakpoints=[bp.number for bp in stops])

    def _maybe_checkpoint(self, gcc: int) -> None:
        """Index a restore point at this boundary (replay machines are
        always eligible here -- a boundary cannot fall mid split-chunk,
        but guard anyway)."""
        machine = self._machine
        if machine.arbiter.has_reservation or machine._piece_accum:
            return
        snapshot = SystemCheckpoint.capture_committed(
            machine, label=f"debug-gcc{gcc}")
        self.checkpoints.add(snapshot.to_interval())

    def _pump(self) -> StopInfo:
        """Drive the engine until the observer stops us or the replay
        ends."""
        self._stop = None
        machine = self._machine
        try:
            if not self._armed:
                self._budget = machine.start()
                self._armed = True
            elif machine.paused:
                machine.resume_from_boundary()
            while self._stop is None:
                if not machine.engine.step():
                    self._finish()
                    break
                self._dispatched += 1
                if (self._budget is not None
                        and self._dispatched > self._budget):
                    raise DeadlockError(
                        f"replay exceeded {self._budget} events at "
                        f"gcc {self.gcc}; the machine is likely "
                        f"livelocked")
        except ReplayDivergenceError as error:
            # The machine detected a structural divergence (log
            # mismatch) before the fingerprint check could: surface it
            # as a stop instead of unwinding the debug session.
            self._machine_dead = True
            self._stop = StopInfo(
                reason="divergence", gcc=self.gcc, commit=self.current,
                message=str(error))
        self._target = None
        self.last_stop = self._stop
        return self._stop

    def _finish(self) -> None:
        """The event queue drained: the replay ran to its end."""
        machine = self._machine
        machine._check_drained()
        problems = []
        if self._base == 0:
            problems = machine.replay_source.verify_fully_consumed()
        self.finished = True
        message = "; ".join(problems) if problems else "replay complete"
        self._stop = StopInfo(reason="end", gcc=self.gcc,
                              commit=self.current, message=message)

    def _require_live_forward(self) -> None:
        if self._machine_dead:
            raise ConfigurationError(
                "the replay diverged; only goto/rstep (which rebuild "
                "from a checkpoint) can move from here")

    # ------------------------------------------------------------------
    # Motion
    # ------------------------------------------------------------------

    def cont(self) -> StopInfo:
        """Run forward until a breakpoint fires or the replay ends."""
        if self.finished:
            return self.last_stop
        self._require_live_forward()
        self._target = None
        self._honor_breakpoints = True
        start_cycle = self._machine.engine.now
        stop = self._pump()
        self._trace_motion("continue", start_cycle, 0)
        return stop

    run = cont

    def step(self, count: int = 1) -> StopInfo:
        """Advance exactly ``count`` global commits (breakpoints still
        fire on the way)."""
        if count < 1:
            raise ConfigurationError("step count must be >= 1")
        if self.finished:
            return self.last_stop
        self._require_live_forward()
        self._target = self.gcc + count
        self._target_reason = "step"
        self._honor_breakpoints = True
        start_cycle = self._machine.engine.now
        stop = self._pump()
        self._trace_motion("step", start_cycle, 0)
        return stop

    def goto(self, target: int) -> StopInfo:
        """Land exactly on GCC = ``target``, forward or backward.

        Backward (or onto a dead/finished machine) restores the nearest
        checkpoint at or before the target and re-executes with
        breakpoints disabled; ``last_reexecuted`` records the re-run
        length.
        """
        if not 0 <= target <= self.total_commits:
            raise ConfigurationError(
                f"gcc {target} out of range [0, {self.total_commits}]")
        if target == self.gcc and not self._machine_dead:
            self.last_stop = StopInfo(reason="goto", gcc=target,
                                      commit=self.current)
            return self.last_stop
        start_cycle = self._machine.engine.now
        if target > self.gcc and not self._machine_dead \
                and not self.finished:
            self.last_reexecuted = 0
        else:
            checkpoint = self.checkpoints.at_or_before(target)
            self._rebuild(checkpoint)
            self.last_reexecuted = target - self._base
        if target == self.gcc:
            self.last_stop = StopInfo(reason="goto", gcc=target,
                                      commit=None)
        else:
            self._target = target
            self._target_reason = "goto"
            self._honor_breakpoints = False
            stop = self._pump()
            self._honor_breakpoints = True
            if stop is not None and stop.reason == "goto" \
                    and stop.gcc != target:
                raise ConfigurationError(
                    f"goto overshot: asked for gcc {target}, landed "
                    f"on {stop.gcc}")
        self._trace_motion(f"goto {target}", start_cycle,
                           self.last_reexecuted)
        return self.last_stop

    def rstep(self, count: int = 1) -> StopInfo:
        """Step backward: land exactly ``count`` commits before the
        current GCC."""
        if count < 1:
            raise ConfigurationError("rstep count must be >= 1")
        return self.goto(max(0, self.gcc - count))

    def _trace_motion(self, what: str, start_cycle: float,
                      reexecuted: int) -> None:
        if not self.tracer.enabled:
            return
        now = self._machine.engine.now
        self.tracer.span(
            "debugger", what, start_cycle,
            max(0.0, now - start_cycle), category="debug",
            gcc=self.gcc, reexecuted=reexecuted)

    # ------------------------------------------------------------------
    # State inspection (committed view at the paused boundary)
    # ------------------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Committed memory word at the current GCC."""
        return self._machine.memory.read(address)

    def memory_view(self) -> dict[int, int]:
        """All nonzero committed memory words."""
        return self._machine.memory.nonzero_words()

    def thread_state(self, proc: int):
        """Processor ``proc``'s committed architectural state."""
        processor = self._machine.processors[proc]
        if processor.outstanding:
            return processor.outstanding[0].start_state
        return processor.spec_state

    def thread_summary(self) -> list[dict]:
        """Per-processor committed state, REPL-friendly."""
        rows = []
        for processor in self._machine.processors:
            state = self.thread_state(processor.proc_id)
            rows.append({
                "proc": processor.proc_id,
                "committed_chunks": processor.committed_count,
                "op_index": state.op_index,
                "accumulator": state.accumulator,
                "in_handler": state.in_handler,
                "finished": state.finished,
                "speculative_chunks": len(processor.outstanding),
            })
        return rows

    def log_cursors(self) -> dict:
        """Absolute input-log consumption at the current boundary."""
        return self._machine.replay_source.cursors()

    def state_fingerprint(self) -> tuple:
        """Hashable digest of the committed state (memory + threads),
        used by tests to compare debugger state against a straight-line
        replay paused at the same GCC."""
        memory = tuple(sorted(
            (a, v) for a, v in self.memory_view().items() if v))
        threads = tuple(
            self.thread_state(p.proc_id).architectural_key()
            for p in self._machine.processors)
        return memory, threads
