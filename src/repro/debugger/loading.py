"""Loading recordings into the debugger from any artifact on disk.

Two formats reach the debugger: the CLI's raw ``.dlrn`` container
(``repro record -o app.dlrn``) and the runner's JSON artifact documents
(content-addressed cache entries / report payloads, where a record
artifact carries the ``.dlrn`` blob base64-encoded under
``payload_codec: "dlrn"``).  The sniffing is structural, not
extension-based: JSON artifacts start with ``{``, the binary container
starts with its magic.
"""

from __future__ import annotations

import json

from repro.core.recorder import Recording
from repro.core.serialization import load_recording
from repro.errors import ReproError
from repro.runner.jobs import recording_from_artifact


def load_debug_target(path: str, segment: int | None = None):
    """A ``(recording, start_checkpoint)`` pair from any debugger
    artifact.

    Plain recordings return ``(recording, None)``.  A stitched
    :class:`~repro.guard.degrade.SegmentedRecording` returns the
    selected segment (default: the first) together with its boundary
    checkpoint, so the controller replays the segment from the correct
    mid-program state.
    """
    with open(path, "rb") as handle:
        head = handle.read(8)
    if head == b"DLRNSEG1":
        from repro.guard.degrade import load_segmented

        with open(path, "rb") as handle:
            segmented = load_segmented(handle.read())
        index = 0 if segment is None else segment
        if not 0 <= index < len(segmented.segments):
            raise ReproError(
                f"{path} has {len(segmented.segments)} segments; "
                f"--segment {index} is out of range")
        seg = segmented.segments[index]
        return seg.recording, seg.start_checkpoint
    if segment is not None:
        raise ReproError(
            f"{path} is not a segmented recording; --segment only "
            f"applies to stitched artifacts")
    return load_recording_artifact(path), None


def load_recording_artifact(path: str) -> Recording:
    """A :class:`Recording` from a ``.dlrn`` file or a runner record
    artifact (JSON document)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob:
        raise ReproError(f"{path} is empty")
    if blob[:8] == b"DLRNSEG1":
        raise ReproError(
            f"{path} is a stitched segmented recording; load it via "
            f"load_debug_target (repro debug --segment N)")
    if blob.lstrip()[:1] == b"{":
        try:
            artifact = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ReproError(
                f"{path} looks like JSON but does not parse: {error}")
        return _from_artifact_doc(artifact, path)
    return load_recording(blob)


def _from_artifact_doc(artifact: dict, path: str) -> Recording:
    if not isinstance(artifact, dict):
        raise ReproError(
            f"{path}: expected an artifact object, got "
            f"{type(artifact).__name__}")
    # Cache envelopes wrap the artifact under "artifact".
    if "payload_codec" not in artifact and \
            isinstance(artifact.get("artifact"), dict):
        artifact = artifact["artifact"]
    codec = artifact.get("payload_codec")
    if codec != "dlrn":
        raise ReproError(
            f"{path} is not a record artifact (payload_codec "
            f"{codec!r}; the debugger replays recordings, so pass the "
            f"record artifact or a .dlrn file)")
    return recording_from_artifact(artifact)
